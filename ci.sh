#!/usr/bin/env bash
# Tier-1 CI for the workspace: build, tests, formatting, lints.
# fmt/clippy are skipped with a warning when the toolchain component is
# not installed (offline/minimal environments); build and tests always
# gate.
set -uo pipefail

cd "$(dirname "$0")"
failed=0

step() {
    echo
    echo "==> $*"
    if ! "$@"; then
        echo "FAILED: $*"
        failed=1
    fi
}

step cargo build --workspace --release
step cargo test --workspace -q

if cargo fmt --version >/dev/null 2>&1; then
    step cargo fmt --all -- --check
else
    echo "WARNING: rustfmt not installed; skipping cargo fmt --check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    step cargo clippy --workspace --all-targets -- -D warnings
else
    echo "WARNING: clippy not installed; skipping cargo clippy"
fi

if [ "$failed" -ne 0 ]; then
    echo
    echo "CI failed"
    exit 1
fi
echo
echo "CI passed"
