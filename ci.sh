#!/usr/bin/env bash
# Tier-1 CI for the workspace: build, tests, formatting, lints.
# fmt/clippy are skipped with a warning when the toolchain component is
# not installed (offline/minimal environments); build and tests always
# gate.
set -uo pipefail

cd "$(dirname "$0")"
failed=0

step() {
    echo
    echo "==> $*"
    if ! "$@"; then
        echo "FAILED: $*"
        failed=1
    fi
}

step cargo build --workspace --release
step cargo test --workspace -q

# Sanitizers. The loom model tests exercise the runtime's concurrent
# structures (ready queue, pending table) and the telemetry SPSC span
# ring under the loom scheduler when the real crate is vendored; under
# the stub they still run as plain threaded tests. Miri is optional
# tooling: warn-skip when absent.
loom_test() {
    RUSTFLAGS="--cfg loom" cargo test -q -p runtime -p obs --lib loom_model
}
step loom_test

if cargo miri --version >/dev/null 2>&1; then
    step cargo miri test -p desim -p ca-stencil
    # hard-fail: the analyze crate's rect algebra is pure pointer-free
    # code and must be UB-clean whenever miri is available
    step cargo miri test -p analyze
else
    echo "WARNING: miri not installed; skipping cargo miri test (desim, ca-stencil, analyze)"
fi

# Bench regression gate: diagnose the reference stencil configuration and
# diff against the committed baseline within tolerance bands. Warn-skip
# when no baseline has been committed yet (bootstrap with
# `stencil-doctor --baseline`).
if [ -f BENCH_stencil.json ]; then
    step ./target/release/stencil-doctor --check
else
    echo "WARNING: BENCH_stencil.json not found; skipping stencil-doctor --check"
fi

# Dispatch-cost regression gate: the work-stealing executor's per-task
# overhead on the chain/fan/steal-storm scenarios must stay within the
# committed baseline's noise band. Warn-skip when no baseline has been
# committed yet (bootstrap with `runtime-overhead --baseline`).
if [ -f BENCH_runtime_overhead.json ]; then
    step ./target/release/runtime-overhead --check
else
    echo "WARNING: BENCH_runtime_overhead.json not found; skipping runtime-overhead --check"
fi

# Causal-profiler gate: the what-if replay's predictions for the
# validated scenarios (scaled kernel cost, scaled network, slowed
# injection) must agree with actual simulator re-runs within the
# committed agreement band, and the deterministic scalars must match the
# baseline. Warn-skip when no baseline has been committed yet (bootstrap
# with `stencil-whatif --baseline`).
if [ -f BENCH_whatif.json ]; then
    step ./target/release/stencil-whatif --check
else
    echo "WARNING: BENCH_whatif.json not found; skipping stencil-whatif --check"
fi

# Communication-observatory gate: the per-peer comm matrix built from
# traced message spans must carry exactly the per-edge message and byte
# counts `analyze` derives statically, for every scheme (base/ca/pa2/dtd).
comm_matrix_identity_gate() {
    cargo test --release -q -p integration --test observability \
        comm_matrix_matches_static_edge_accounting
}
step comm_matrix_identity_gate

# Scheduler portfolio gate: every portfolio scheduler must complete every
# scheme (base/ca/pa2/dtd) deadlock-free and within the static bound on a
# small sweep, and the committed baseline must be intact under the
# default policy. Warn-skip mirrors the doctor gate above.
if [ -f ./target/release/stencil-tournament ]; then
    step ./target/release/stencil-tournament --check
else
    echo "WARNING: stencil-tournament not built; skipping stencil-tournament --check"
fi

# Region-dataflow gate: the halo-coverage proof and dead-transfer
# accounting must pass for all four schemes (base/ca/pa2/dtd) in
# steady-state mode, and the deliberately halo-shrunk CA build must make
# the proof FAIL — a mutation test that the coverage check has teeth.
step ./target/release/stencil-lint --n 128 --tile 32 --iters 9 --steps 4 --grid 2 \
    --dataflow --steady-state --check
lint_mutation_gate() {
    if ./target/release/stencil-lint --n 128 --tile 32 --iters 9 --steps 4 --grid 2 \
        --mutate-ca --check >/dev/null 2>&1; then
        echo "mutation NOT caught: shrunk CA halo passed the coverage proof"
        return 1
    fi
    echo "mutation caught: shrunk CA halo fails the coverage proof"
}
step lint_mutation_gate

# Telemetry smoke: one frame of the reference workload with streaming
# telemetry on; exits nonzero if the tracer overruns its 2 % self-overhead
# budget, drops spans, or publishes no live samples.
step ./target/release/stencil-top --once

# Docs gate: every public item is documented (the workspace denies
# missing_docs) and rustdoc itself must be warning-clean — broken
# intra-doc links are errors, not noise. First-party crates only; the
# vendored stubs are exempt.
docs_clean() {
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
        -p obs -p desim -p machine -p netsim -p runtime -p analyze \
        -p insight -p ca-stencil -p spmv -p bench
}
step docs_clean

if cargo fmt --version >/dev/null 2>&1; then
    step cargo fmt --all -- --check
else
    echo "WARNING: rustfmt not installed; skipping cargo fmt --check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    step cargo clippy --workspace --all-targets -- -D warnings
else
    echo "WARNING: clippy not installed; skipping cargo clippy"
fi

if [ "$failed" -ne 0 ]; then
    echo
    echo "CI failed"
    exit 1
fi
echo
echo "CI passed"
