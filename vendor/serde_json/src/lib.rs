//! Minimal offline stand-in for `serde_json`: render and parse the
//! vendored [`serde::Value`] data model as JSON text.
//!
//! Covers the API surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`], and [`Value`] — with the same
//! observable behavior as the real crate for the types involved
//! (integers round-trip exactly; non-finite floats render as `null`).

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Object(pairs) => write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
            write_string(out, &pairs[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &pairs[i].1, indent, level + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(v) if v.is_finite() => {
            // `{:?}` is Rust's shortest round-trip float form, which is
            // valid JSON for all finite values.
            out.push_str(&format!("{v:?}"));
        }
        Number::F(_) => out.push_str("null"), // NaN/inf have no JSON form
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        let num = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I(i)
            } else {
                Number::F(
                    text.parse::<f64>()
                        .map_err(|e| Error(format!("bad number `{text}`: {e}")))?,
                )
            }
        } else {
            Number::F(
                text.parse::<f64>()
                    .map_err(|e| Error(format!("bad number `{text}`: {e}")))?,
            )
        };
        Ok(Value::Num(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Num(Number::U(1))),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_indented_and_parses() {
        let v = vec![1u32, 2, 3];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  1"));
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_and_negatives() {
        let text = to_string(&vec![-1.5f64, 2.0]).unwrap();
        assert_eq!(text, "[-1.5,2.0]");
        let back: Vec<f64> = from_str("[-1.5, 2e1, -7]").unwrap();
        assert_eq!(back, vec![-1.5, 20.0, -7.0]);
    }

    #[test]
    fn nan_renders_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn big_u64_round_trips_exactly() {
        let big = u64::MAX - 3;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,2] trailing").is_err());
    }
}
