//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the two facilities this workspace uses, with crossbeam's
//! semantics:
//!
//! * [`channel`] — unbounded MPMC channels whose `Receiver` is cloneable
//!   (std's `mpsc` receiver is not), with `recv_timeout` and disconnect
//!   detection;
//! * [`thread::scope`] — scoped threads that *catch* panics in spawned
//!   workers and surface them as an `Err` from `scope` (std's scope
//!   resumes the unwind instead, which would change the panic messages
//!   the executors' tests assert on).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] on disconnect.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty.
        Empty,
        /// All senders gone and queue drained.
        Disconnected,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, State<T>> {
        chan.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.0);
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.0).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.0);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.0);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Dequeue, blocking until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.0);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.0);
            if let Some(msg) = st.queue.pop_front() {
                Ok(msg)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued messages right now.
        pub fn len(&self) -> usize {
            lock(&self.0).queue.len()
        }

        /// True when nothing is queued right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.0).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.0).receivers -= 1;
        }
    }
}

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type PanicList = Arc<Mutex<Vec<Box<dyn Any + Send + 'static>>>>;

    /// Handle for spawning scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panics: PanicList,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            Scope {
                inner: self.inner,
                panics: Arc::clone(&self.panics),
            }
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; a panic inside it is recorded and reported by
        /// [`scope`]'s return value instead of aborting the process.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            let panics = Arc::clone(&self.panics);
            self.inner.spawn(move || {
                let me = Scope {
                    inner,
                    panics: Arc::clone(&panics),
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&me))) {
                    panics
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(payload);
                }
            });
        }
    }

    /// Run `f` with a scope handle; joins every spawned thread before
    /// returning. Returns `Err` with the first panic payload if any
    /// spawned thread panicked (crossbeam's contract).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panics: PanicList = Arc::new(Mutex::new(Vec::new()));
        let result = {
            let panics = Arc::clone(&panics);
            std::thread::scope(move |s| {
                let scope = Scope { inner: s, panics };
                f(&scope)
            })
        };
        let mut collected = std::mem::take(&mut *panics.lock().unwrap_or_else(|e| e.into_inner()));
        match collected.is_empty() {
            true => Ok(result),
            false => Err(collected.remove(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mpmc_channel_fans_out() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let mut got = Vec::new();
        loop {
            match rx2.recv_timeout(Duration::from_millis(10)) {
                Ok(v) => got.push(v),
                Err(channel::RecvTimeoutError::Disconnected) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn timeout_when_no_sender_sends() {
        let (_tx, rx) = channel::unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_joins_and_returns_ok() {
        let mut data = [0u64; 8];
        thread::scope(|s| {
            for chunk in data.chunks_mut(2) {
                s.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn scope_reports_worker_panic_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn threads_share_channel_under_scope() {
        let (tx, rx) = channel::unbounded::<u64>();
        let total: u64 = (0..1000).sum();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let sum = std::sync::Mutex::new(0u64);
        thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let sum = &sum;
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv_timeout(Duration::from_millis(20)) {
                        *sum.lock().unwrap() += v;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(*sum.lock().unwrap(), total);
    }
}
