//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`collection::vec`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Generation is driven by a deterministic
//! xorshift generator, so failures reproduce run to run. There is no
//! shrinking — the failing inputs are reported as generated.

/// Deterministic generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed construction: every test run sees the same cases.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x853C49E6748FEA9B,
        }
    }

    /// Next raw draw (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw in `[0, bound)`; `bound` 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128 + 1).max(1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
);

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// Vectors of `element`-generated values with a length drawn from
    /// `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start).max(1) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Define property tests. Each `fn name(pat in strategy, ...) { ... }`
/// becomes a `#[test]` that checks the body against `cases` generated
/// inputs (optionally set with a leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("property failed on case {case}: {msg}");
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure rejects the case with a
/// message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l, r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (2usize..=4).generate(&mut rng);
            assert!((2..=4).contains(&w));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::deterministic();
        let s = crate::collection::vec((0u64..100, 1u64..50), 1..20);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                assert!(a < 100 && (1..50).contains(&b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0u32..10, 0u32..10), c in 0u32..10) {
            prop_assert!(a < 10 && b < 10, "bad draw {a} {b}");
            prop_assert_eq!(c / 10, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_defaults_to_256_cases(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
