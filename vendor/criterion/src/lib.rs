//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — benchmark
//! groups, throughput annotation, `bench_with_input`, `Bencher::iter` —
//! with a simple mean-of-samples timer printed to stdout. No statistics,
//! plots, or baselines; the point is that `cargo bench` compiles and
//! produces readable numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a group (reported, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = self.samples as u64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `routine` against a fixed `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters_done: 0,
        };
        routine(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters_done: 0,
        };
        routine(&mut b);
        self.report(&id.label, &b);
        self
    }

    fn report(&self, label: &str, b: &Bencher) {
        let per_iter = if b.iters_done == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters_done as u32
        };
        let rate = match (self.throughput, per_iter.as_secs_f64()) {
            (Some(Throughput::Elements(n)), s) if s > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / s / 1e6)
            }
            (Some(Throughput::Bytes(n)), s) if s > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / s / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{:<40} {:>12.3?}/iter{}",
            self.name, label, per_iter, rate
        );
        let _ = &self.criterion; // group lifetime ties reports to the runner
    }

    /// End the group (reports are emitted eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark runner entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("standalone");
        group.bench_function(name, routine);
        group.finish();
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench harness `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(64));
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_timing_run() {
        benches();
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }
}
