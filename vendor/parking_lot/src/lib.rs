//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's API shape: `lock()`
//! returns the guard directly (no poisoning — a poisoned std lock is
//! recovered transparently), and `new` is `const`.

use std::sync::{self, TryLockError};

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type matching `parking_lot::MutexGuard`.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `const`/`static` contexts).
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (we hold `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose methods never return poison errors.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard types matching parking_lot's.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock (usable in `const`/`static` contexts).
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: Mutex<u64> = Mutex::new(0);

    #[test]
    fn const_static_mutex_works() {
        *GLOBAL.lock() += 1;
        assert!(*GLOBAL.lock() >= 1);
    }

    #[test]
    fn lock_recovers_after_panic_in_holder() {
        let m = std::sync::Arc::new(Mutex::new(5u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
