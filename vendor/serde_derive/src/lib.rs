//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Implemented directly on `proc_macro` token trees (the offline build has
//! no `syn`/`quote`). Supports exactly the shapes this workspace derives
//! on: structs with named fields, tuple structs, unit structs, and enums
//! of unit variants — all non-generic. Anything else is a compile error
//! naming the unsupported construct.
//!
//! One field attribute is honored: `#[serde(default)]` on a named field
//! makes `Deserialize` substitute `Default::default()` when the field is
//! missing (reads as `Null`) — enough for the workspace's
//! schema-evolution needs (new telemetry fields reading old JSONL
//! exports). All other `#[serde(...)]` contents are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct field, plus whether `#[serde(default)]` marks it.
struct NamedField {
    name: String,
    default: bool,
}

enum Shape {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
    UnitEnum(Vec<String>),
}

/// Parse the derive input down to (type name, shape).
fn parse(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip attributes and visibility before the struct/enum keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                i += 1;
                break id.to_string();
            }
            other => panic!("serde_derive: unexpected token before item keyword: {other:?}"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in does not support generic type `{name}`");
        }
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::Unit,
        ("struct", None) => Shape::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(&name, g.stream()))
        }
        (_, other) => panic!("serde_derive: unsupported {kind} body for `{name}`: {other:?}"),
    };
    (name, shape)
}

/// True when the attribute group (the `[...]` after `#`) is
/// `serde(default)`.
fn is_serde_default(group: &TokenTree) -> bool {
    let TokenTree::Group(g) = group else {
        return false;
    };
    let mut inner = g.stream().into_iter();
    match (inner.next(), inner.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    let mut next_default = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // field attribute: remember a `#[serde(default)]` marker
                // for the field that follows
                if tokens.get(i + 1).is_some_and(is_serde_default) {
                    next_default = true;
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(NamedField {
                    name: id.to_string(),
                    default: std::mem::take(&mut next_default),
                });
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!("serde_derive: expected `:` after field, found {other:?}"),
                }
                // Skip the type: everything up to a comma at angle depth 0.
                let mut depth = 0i32;
                while let Some(t) = tokens.get(i) {
                    if let TokenTree::Punct(p) = t {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive: unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    count - usize::from(trailing_comma)
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(name: &str, body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                // Skip an explicit discriminant (`= <literal expr>`).
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '=' {
                        i += 1;
                        while let Some(t) = tokens.get(i) {
                            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                                break;
                            }
                            i += 1;
                        }
                    }
                }
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(other) => panic!(
                        "serde_derive stand-in supports only unit variants; \
                         `{name}::{}` has payload {other:?}",
                        variants.last().unwrap()
                    ),
                }
            }
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let (name, default) = (&f.name, f.default);
                    if default {
                        // Missing fields read as Null: substitute the
                        // type's Default instead of failing.
                        format!(
                            "{name}: if ::std::matches!(v.field(\"{name}\"), \
                                 ::serde::Value::Null) {{ \
                                 ::std::default::Default::default() \
                             }} else {{ \
                                 ::serde::Deserialize::deserialize(v.field(\"{name}\"))? \
                             }},"
                        )
                    } else {
                        format!("{name}: ::serde::Deserialize::deserialize(v.field(\"{name}\"))?,")
                    }
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&a[{i}])?,"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| \
                     ::serde::DeError::expected(\"array\", v))?;\n\
                 if a.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"expected {n} elements, found {{}}\", a.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                                  ::std::result::Result::Ok({name}::{v}),"
                    )
                })
                .collect();
            format!(
                "match v.as_str() {{ {arms} _ => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"variant of {name}\", v)) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
