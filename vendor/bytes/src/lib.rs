//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer backed by an
//! `Arc<Vec<u8>>` — clones share the allocation, which is the property
//! the message-passing layers rely on.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy the contents out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.0.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0.as_slice() == other.0.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_len() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_shares_allocation() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert_eq!(b.as_ref().as_ptr(), c.as_ref().as_ptr());
    }
}
