//! Minimal offline stand-in for the `rand` crate: a deterministic
//! xorshift64* generator behind a small `Rng` trait. Only the surface
//! used by this workspace's tests/benches is provided.

/// Random number source.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of type `T` (see [`Uniform`] impls).
    fn gen<T: Uniform>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Uniform value in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        range.start + self.next_u64() % span.max(1)
    }
}

/// Types constructible uniformly from a raw 64-bit draw.
pub trait Uniform {
    fn from_u64(raw: u64) -> Self;
}

impl Uniform for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Uniform for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Uniform for f64 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Uniform for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// xorshift64* generator: fast, deterministic, good enough for tests.
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seeded construction (seed 0 is remapped to a fixed constant).
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A process-local generator seeded from the address of a stack local —
/// deterministic enough for tests, varied enough across runs.
pub fn thread_rng() -> StdRng {
    let marker = 0u8;
    StdRng::seed_from_u64(&marker as *const u8 as u64 | 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
