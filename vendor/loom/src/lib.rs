//! Offline stand-in for the `loom` model checker.
//!
//! The real `loom` crate re-executes a [`model`] closure under every
//! schedulable interleaving of its `loom::thread` threads, checking the
//! C11 memory model. This stub preserves the API shape — tests written
//! against it compile and run unchanged against real loom — but executes
//! the closure **once**, with `std` threads and `std` sync primitives, so
//! it degrades to a plain (deterministic-API, OS-scheduled) concurrency
//! smoke test. Swap the `loom` entry in the workspace `Cargo.toml` for a
//! registry version to get exhaustive interleaving coverage.

#![deny(missing_docs)]

/// Run `f` under the model checker. The stub runs it exactly once.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    f();
}

/// `loom::thread` — thread spawning that the checker can schedule.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// `loom::sync` — checked versions of the std sync primitives.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// `loom::sync::atomic` — checked atomics.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32, AtomicU64,
            AtomicUsize, Ordering,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_the_closure() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        super::model(|| {
            RAN.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(RAN.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn threads_and_mutexes_compose() {
        super::model(|| {
            let v = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let v = Arc::clone(&v);
                    super::thread::spawn(move || *v.lock().unwrap() += 1)
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*v.lock().unwrap(), 2);
        });
    }
}
