//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to a crate
//! registry, so the workspace vendors the small slice of serde it actually
//! uses: `#[derive(Serialize)]` / `#[derive(Deserialize)]` on plain structs
//! and unit enums, rendered through a JSON-shaped [`Value`] data model.
//!
//! This is intentionally **not** the real serde: the traits here serialize
//! into an owned [`Value`] tree rather than driving a visitor. All code in
//! the workspace goes through `serde_json::{to_string, to_string_pretty,
//! from_str}` or the derives, which behave identically to the real crates
//! for the types used here. Restoring the registry versions in the
//! workspace `Cargo.toml` requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON number, kept in its native representation so integers round-trip
/// exactly (nanosecond timestamps exceed `f64` precision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as an `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as a `u64` when it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as an `i64` when it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::F(_) => None,
        }
    }
}

/// A JSON value tree. Objects preserve insertion order so serialized
/// structs read in declaration order, like real `serde_json` does for
/// structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup; missing fields read as `Null` so optional
    /// fields deserialize to `None`.
    pub fn field(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Render `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// A "wanted X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {found:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        // The JSON data model here tops out at u64; wider values fall
        // back to the closest double (matches what readers can hold).
        match u64::try_from(*self) {
            Ok(v) => Value::Num(Number::U(v)),
            Err(_) => Value::Num(Number::F(*self as f64)),
        }
    }
}

impl Serialize for i128 {
    fn serialize(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => v.serialize(),
            Err(_) => Value::Num(Number::F(*self as f64)),
        }
    }
}

impl Deserialize for u128 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .map(u128::from)
            .ok_or_else(|| DeError::expected("unsigned integer", v))
    }
}

impl Deserialize for i128 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_i64()
            .map(i128::from)
            .ok_or_else(|| DeError::expected("integer", v))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            Value::Null => Ok(f64::NAN), // non-finite floats serialize as null
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                if a.len() != $len {
                    return Err(DeError(format!(
                        "expected array of length {}, found {}", $len, a.len()
                    )));
                }
                Ok(($($t::deserialize(&a[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1, 0 A)
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        let v: Vec<f64> = Deserialize::deserialize(&vec![1.5, 2.5].serialize()).unwrap();
        assert_eq!(v, vec![1.5, 2.5]);
        let t: (u32, f64) = Deserialize::deserialize(&(3u32, 0.5f64).serialize()).unwrap();
        assert_eq!(t, (3, 0.5));
    }

    #[test]
    fn option_maps_null() {
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::deserialize(&5u32.serialize()).unwrap(),
            Some(5)
        );
        assert_eq!(None::<u32>.serialize(), Value::Null);
    }

    #[test]
    fn big_integers_keep_precision() {
        let big = u64::MAX - 1;
        assert_eq!(u64::deserialize(&big.serialize()).unwrap(), big);
    }

    #[test]
    fn field_lookup_defaults_to_null() {
        let v = Value::Object(vec![("a".into(), 1u32.serialize())]);
        assert_eq!(v.field("a").as_u64(), Some(1));
        assert_eq!(*v.field("missing"), Value::Null);
    }
}
