//! The runtime's generic communication-avoiding framework (the paper's
//! proposed future work) driving a workload the stencil crates know
//! nothing about: a 9-point cellular kernel. The user supplies only the
//! shape — tiles, placement, costs, whether diagonals are read — and
//! sweeps the step size; the runtime generates and schedules the
//! redundant tasks.
//!
//! ```text
//! cargo run --release -p examples-app --bin generic_halo
//! ```

use machine::MachineProfile;
use runtime::{build_halo_program, run, HaloSpec, RunConfig};

fn main() {
    let profile = MachineProfile::nacl();
    println!("generic CA framework: 16x16 tiles of a 9-point kernel over 4 nodes");
    println!(
        "{:>6} {:>12} {:>14} {:>14}",
        "s", "time (ms)", "remote msgs", "avg msg KB"
    );
    for steps in [1usize, 2, 5, 10, 20] {
        let spec = HaloSpec {
            tiles_x: 16,
            tiles_y: 16,
            iterations: 60,
            steps,
            node_of: HaloSpec::block_placement(16, 16, 2, 2),
            task_cost: 60e-6, // a fast, tuned kernel: communication matters
            redundant_cell_cost: 0.4e-9,
            tile_edge: 256,
            cell_bytes: 8,
            corners_every_iteration: true, // 9-point: diagonals read each step
        };
        let report = run(
            &build_halo_program(spec),
            &RunConfig::simulated(profile.clone(), 4),
        );
        println!(
            "{:>6} {:>12.2} {:>14} {:>14.1}",
            steps,
            report.makespan * 1e3,
            report.remote_messages(),
            report.remote_bytes() as f64 / report.remote_messages().max(1) as f64 / 1024.0,
        );
    }
    println!("\nlarger steps trade redundant work for fewer, bigger messages;");
    println!("the optimum is interior — the runtime found it without any");
    println!("stencil-specific code (compare crates/core, which hand-writes");
    println!("the same dataflow for the paper's 5-point Jacobi).");
}
