//! Quickstart: build a small 2D Jacobi program, run it three ways
//! (sequential reference, real threads, simulated cluster) and confirm
//! they agree bit for bit.
//!
//! ```text
//! cargo run --release -p examples-app --bin quickstart
//! ```

use ca_stencil::{build_base, build_ca, jacobi_reference, max_abs_diff, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};

fn main() {
    let n = 64;
    let iterations = 20;
    let problem = Problem::scrambled(n, 2024);
    let cfg =
        StencilConfig::new(problem.clone(), 8, iterations, ProcessGrid::new(2, 2)).with_steps(4);

    println!("problem: {n}x{n} grid, {iterations} Jacobi iterations, 8x8 tiles, 2x2 nodes");

    // 1. Sequential ground truth.
    let reference = jacobi_reference(&problem, iterations);

    // 2. Base scheme on the real shared-memory executor (actual threads).
    let base = build_base(&cfg, true);
    let report = run(&base.program, &RunConfig::shared_memory(4));
    let base_field = base.store.expect("built with data").gather();
    println!(
        "real executor:      {} tasks in {:.2} ms -> max |diff| = {:e}",
        report.tasks_executed,
        report.makespan * 1e3,
        max_abs_diff(&base_field, &reference)
    );

    // 3. CA scheme on the simulated 4-node cluster, bodies executing.
    let ca = build_ca(&cfg, true);
    let sim = run(
        &ca.program,
        &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
    );
    let ca_field = ca.store.expect("built with data").gather();
    println!(
        "simulated cluster:  {} tasks, {} remote messages, virtual time {:.3} ms -> max |diff| = {:e}",
        sim.tasks_executed,
        sim.remote_messages(),
        sim.makespan * 1e3,
        max_abs_diff(&ca_field, &reference)
    );

    assert_eq!(max_abs_diff(&base_field, &reference), 0.0);
    assert_eq!(max_abs_diff(&ca_field, &reference), 0.0);
    println!("all three executions agree bitwise ✓");
}
