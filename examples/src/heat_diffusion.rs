//! Heat diffusion on a square plate: the paper's motivating PDE scenario.
//! The north edge is held at 100°; Jacobi iteration relaxes the interior
//! towards steady state. Runs on the real shared-memory executor — an
//! actual parallel solver on this machine — and prints the vertical
//! temperature profile as it converges.
//!
//! ```text
//! cargo run --release -p examples-app --bin heat_diffusion
//! ```

use ca_stencil::{build_base, StencilConfig};
use examples_app::{heat_plate, row_mean};
use netsim::ProcessGrid;
use runtime::{run, RunConfig};

fn main() {
    let n = 128;
    let problem = heat_plate(n, 100.0);
    let threads = std::thread::available_parallelism()
        .map_or(4, |c| c.get())
        .min(8);

    println!("heat plate {n}x{n}, north edge at 100 degrees, {threads} threads");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12}",
        "iters", "row 1", "row n/4", "row n-2", "wall ms"
    );

    for iterations in [100u32, 500, 2000] {
        let cfg = StencilConfig::new(problem.clone(), 16, iterations, ProcessGrid::new(1, 1));
        let build = build_base(&cfg, true);
        let report = run(&build.program, &RunConfig::shared_memory(threads));
        let field = build.store.expect("carries data").gather();
        println!(
            "{:>10} {:>10.2} {:>10.3} {:>10.4} {:>12.1}",
            iterations,
            row_mean(&field, n, 1),
            row_mean(&field, n, n / 4),
            row_mean(&field, n, n - 2),
            report.makespan * 1e3,
        );
    }
    println!("heat spreads from the hot edge; longer runs approach the steady state");
}
