//! Shared helpers for the example binaries.

#![deny(missing_docs)]

use ca_stencil::Problem;
use std::sync::Arc;

/// A heat-plate problem: the north edge held at `hot` degrees, the other
/// three edges at zero, interior starting cold. Jacobi iteration relaxes
/// towards the steady-state temperature field.
pub fn heat_plate(n: usize, hot: f64) -> Problem {
    let mut p = Problem::laplace(n);
    let ni = n as i64;
    p.init = Arc::new(|_, _| 0.0);
    p.bc = Arc::new(
        move |r, c| {
            if r < 0 && c >= 0 && c < ni {
                hot
            } else {
                0.0
            }
        },
    );
    p
}

/// Mean of a row of an `n × n` field.
pub fn row_mean(field: &[f64], n: usize, row: usize) -> f64 {
    field[row * n..(row + 1) * n].iter().sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_stencil::jacobi_reference;

    #[test]
    fn heat_plate_warms_from_the_north() {
        let p = heat_plate(16, 100.0);
        let f = jacobi_reference(&p, 200);
        let top = row_mean(&f, 16, 0);
        let bottom = row_mean(&f, 16, 15);
        assert!(top > 50.0, "top = {top}");
        assert!(bottom < top / 4.0, "bottom = {bottom}");
    }
}
