//! The PETSc-style baseline end to end: assemble the 5-point update as a
//! CSR matrix, run the row-partitioned distributed Jacobi (with the ghost
//! exchange checked), compare numerics against the stencil reference, and
//! print the performance model's strong-scaling prediction.
//!
//! ```text
//! cargo run --release -p examples-app --bin spmv_solver
//! ```

use ca_stencil::{jacobi_reference, max_abs_diff, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use spmv::{run_distributed, stencil_matrix, PetscModel};

fn main() {
    let n = 96;
    let iterations = 30;
    let problem = Problem::scrambled(n, 11);

    let (a, _) = stencil_matrix(&problem);
    println!(
        "matrix: {} rows, {} nonzeros ({:.2} per row), 64-bit indices",
        a.rows,
        a.nnz(),
        a.avg_nnz_per_row()
    );

    let ranks = 12; // one rank per core, as the paper runs PETSc
    let (x, stats) = run_distributed(&problem, ranks, iterations);
    let reference = jacobi_reference(&problem, iterations);
    let diff = max_abs_diff(&x, &reference);
    println!(
        "{ranks}-rank distributed Jacobi, {iterations} iterations: max |diff vs stencil reference| = {diff:e}"
    );
    assert!(diff < 1e-12);
    let msgs: u64 = stats.iter().map(|s| s.recv_messages).sum();
    println!("ghost exchange: {msgs} messages total (one grid row per neighbour per iteration)");

    // performance prediction at paper scale
    let profile = MachineProfile::nacl();
    let model = PetscModel::new(&profile);
    println!("\nPETSc model, NaCL, problem 23k, 100 iterations:");
    println!("{:>6} {:>12} {:>12}", "nodes", "time (s)", "GFLOP/s");
    for nodes in [1u32, 4, 16, 64] {
        let cfg = StencilConfig::new(Problem::laplace(23_040), 288, 100, ProcessGrid::new(1, 1))
            .with_profile(profile.clone());
        let pred = model.predict(&cfg, nodes);
        println!(
            "{:>6} {:>12.2} {:>12.1}",
            nodes, pred.total_time, pred.gflops
        );
    }
    println!("(the tiled dataflow stencil reaches roughly twice these rates — Figure 7)");
}
