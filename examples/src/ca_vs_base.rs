//! Base vs communication-avoiding, head to head on the simulated cluster:
//! first a numerical-equivalence check (bitwise), then a performance sweep
//! over the paper's kernel-adjustment ratio on 16 NaCL nodes showing where
//! communication avoidance pays.
//!
//! ```text
//! cargo run --release -p examples-app --bin ca_vs_base
//! ```

use ca_stencil::{build_base, build_ca, jacobi_reference, max_abs_diff, Problem, StencilConfig};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};

fn main() {
    // correctness at small scale, bodies executing
    let small =
        StencilConfig::new(Problem::scrambled(32, 7), 4, 9, ProcessGrid::new(2, 2)).with_steps(3);
    let base = build_base(&small, true);
    run(
        &base.program,
        &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
    );
    let ca = build_ca(&small, true);
    run(
        &ca.program,
        &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
    );
    let reference = jacobi_reference(&small.problem, 9);
    assert_eq!(max_abs_diff(&base.store.unwrap().gather(), &reference), 0.0);
    assert_eq!(max_abs_diff(&ca.store.unwrap().gather(), &reference), 0.0);
    println!("numerics: base == CA == sequential reference (bitwise) ✓\n");

    // performance at paper scale (reduced iterations), 16 NaCL nodes
    let profile = MachineProfile::nacl();
    println!("16 NaCL nodes, problem 23k, tile 288, s = 15, 20 iterations:");
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "ratio", "base GF/s", "CA GF/s", "CA gain", "base msgs", "CA msgs"
    );
    for ratio in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let cfg = StencilConfig::new(Problem::laplace(23_040), 288, 20, ProcessGrid::square(16))
            .with_steps(15)
            .with_ratio(ratio)
            .with_profile(profile.clone());
        let b = run(
            &build_base(&cfg, false).program,
            &RunConfig::simulated(profile.clone(), 16),
        );
        let c = run(
            &build_ca(&cfg, false).program,
            &RunConfig::simulated(profile.clone(), 16),
        );
        println!(
            "{:>7.1} {:>12.0} {:>12.0} {:>9.1}% {:>12} {:>12}",
            ratio,
            cfg.gflops(b.makespan),
            cfg.gflops(c.makespan),
            100.0 * (b.makespan / c.makespan - 1.0),
            b.remote_messages(),
            c.remote_messages(),
        );
    }
    println!("\nCA trades fewer (bigger) messages for redundant halo work; it wins when");
    println!("the kernel is fast enough to expose the communication bound.");
}
