//! Seeded-bug suite: hand-built programs, each broken in exactly one way,
//! prove every diagnostic kind fires with the right witness — plus clean
//! fixtures locking in the accounting and critical-path numbers.

use super::*;
use runtime::{FlowData, OutputDep, Params, Rect, TaskClass, TaskGraph, TaskKey, WriteRegion};
use std::collections::HashMap;
use std::sync::Arc;

/// Explicit single-class DAG over `params[0]`, with optional per-task
/// placement, write regions, and redundant-flop declarations.
#[derive(Default)]
struct TestDag {
    edges: HashMap<i32, Vec<(i32, usize)>>,
    indeg: HashMap<i32, usize>,
    node: HashMap<i32, u32>,
    writes: HashMap<i32, WriteRegion>,
    redundant: HashMap<i32, u64>,
    cost: f64,
    bytes: usize,
}

impl TestDag {
    /// DAG from (producer, consumer, slot) edges with cost 1.0 / 8-byte
    /// flows; in-degrees derived from the edges (consistent by default).
    fn new(edges: &[(i32, i32, usize)]) -> Self {
        let mut dag = TestDag {
            cost: 1.0,
            bytes: 8,
            ..TestDag::default()
        };
        for &(from, to, slot) in edges {
            dag.edges.entry(from).or_default().push((to, slot));
            *dag.indeg.entry(to).or_default() += 1;
        }
        dag
    }
}

impl TaskClass for TestDag {
    fn name(&self) -> &str {
        "t"
    }
    fn node_of(&self, p: Params) -> u32 {
        *self.node.get(&p[0]).unwrap_or(&0)
    }
    fn activation_count(&self, p: Params) -> usize {
        *self.indeg.get(&p[0]).unwrap_or(&0)
    }
    fn num_output_flows(&self, p: Params) -> usize {
        self.edges.get(&p[0]).map_or(0, Vec::len)
    }
    fn outputs(&self, p: Params) -> Vec<OutputDep> {
        self.edges
            .get(&p[0])
            .map(|v| {
                v.iter()
                    .enumerate()
                    .map(|(flow, &(c, slot))| OutputDep {
                        flow,
                        consumer: TaskKey::new(0, [c, 0, 0, 0]),
                        slot,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
    fn execute(&self, p: Params, _inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
        (0..self.num_output_flows(p))
            .map(|_| FlowData::sized(self.bytes))
            .collect()
    }
    fn output_bytes(&self, _p: Params, _flow: usize) -> usize {
        self.bytes
    }
    fn cost(&self, _p: Params) -> f64 {
        self.cost
    }
    fn write_region(&self, p: Params) -> Option<WriteRegion> {
        self.writes.get(&p[0]).copied()
    }
    fn redundant_flops(&self, p: Params) -> u64 {
        *self.redundant.get(&p[0]).unwrap_or(&0)
    }
}

fn program_of(dag: TestDag, roots: &[i32], total: u64) -> Program {
    let mut g = TaskGraph::new();
    g.add_class(Arc::new(dag));
    Program {
        graph: Arc::new(g),
        roots: roots
            .iter()
            .map(|&i| TaskKey::new(0, [i, 0, 0, 0]))
            .collect(),
        total_tasks: total,
    }
}

#[test]
fn clean_diamond_is_clean() {
    let p = program_of(
        TestDag::new(&[(0, 1, 0), (0, 2, 0), (1, 3, 0), (2, 3, 1)]),
        &[0],
        4,
    );
    let a = assert_clean(&p);
    assert_eq!((a.tasks, a.edges), (4, 4));
    assert!(a.is_clean());
    assert_eq!(a.report(), "clean");
    let path = a.path.expect("acyclic");
    // longest chain 0 -> 1 -> 3 at unit cost
    assert_eq!(path.critical_path, 3.0);
    // all on node 0, 1 lane: work bound 4.0 dominates
    assert_eq!(path.makespan_lower_bound, 4.0);
}

#[test]
fn two_cycle_deadlock_fires_with_minimal_witness() {
    // 0 -> 1 -> 2 -> 1: shortest cycle is 1 <-> 2
    let p = program_of(TestDag::new(&[(0, 1, 0), (1, 2, 0), (2, 1, 1)]), &[0], 3);
    let a = analyze_program(&p, &AnalyzeConfig::new());
    let cycle = a
        .diagnostics
        .iter()
        .find_map(|d| match d {
            Diagnostic::Deadlock { cycle } => Some(cycle.clone()),
            _ => None,
        })
        .expect("deadlock diagnostic must fire");
    assert_eq!(cycle.len(), 2, "minimal witness, got {cycle:?}");
    assert!(cycle.contains(&"t(1,0,0,0)".to_string()), "{cycle:?}");
    assert!(cycle.contains(&"t(2,0,0,0)".to_string()), "{cycle:?}");
    assert!(a.path.is_none(), "no critical path on a cyclic graph");
}

#[test]
fn wrong_activation_count_fires_structural() {
    let mut dag = TestDag::new(&[(0, 1, 0)]);
    dag.indeg.insert(1, 2); // declares 2 inputs, only 1 flow targets it
    let a = analyze_program(&program_of(dag, &[0], 2), &AnalyzeConfig::new());
    assert!(
        a.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::Structural(runtime::StructuralFault::IndegreeMismatch {
                declared: 2,
                actual: 1,
                ..
            })
        )),
        "{}",
        a.report()
    );
}

#[test]
fn overlapping_unordered_writes_race() {
    // fork: 1 and 2 both write space 5, overlapping rects, no path between
    let mut dag = TestDag::new(&[(0, 1, 0), (0, 2, 0)]);
    dag.writes.insert(
        1,
        WriteRegion {
            space: 5,
            rect: Rect::new(0, 0, 4, 4),
        },
    );
    dag.writes.insert(
        2,
        WriteRegion {
            space: 5,
            rect: Rect::new(2, 2, 4, 4),
        },
    );
    let p = program_of(dag, &[0], 3);
    let a = analyze_program(&p, &AnalyzeConfig::new());
    match &a.diagnostics[..] {
        [Diagnostic::WriteRace {
            first,
            second,
            space: 5,
        }] => {
            assert_eq!(first, "t(1,0,0,0)");
            assert_eq!(second, "t(2,0,0,0)");
        }
        other => panic!("expected exactly one write race, got {other:?}"),
    }
    // the race pass can be opted out for bench-scale graphs
    let quiet = analyze_program(&p, &AnalyzeConfig::new().without_races());
    assert!(quiet.is_clean());
}

#[test]
fn ordered_overlapping_writes_do_not_race() {
    // chain: same overlapping writes as above, but 1 -> 2 orders them
    let mut dag = TestDag::new(&[(0, 1, 0), (1, 2, 0)]);
    dag.writes.insert(
        1,
        WriteRegion {
            space: 5,
            rect: Rect::new(0, 0, 4, 4),
        },
    );
    dag.writes.insert(
        2,
        WriteRegion {
            space: 5,
            rect: Rect::new(2, 2, 4, 4),
        },
    );
    assert_clean(&program_of(dag, &[0], 3));
}

#[test]
fn distinct_spaces_do_not_race() {
    // fork again, same global rect, but each task writes its own space —
    // the CA halo-recompute pattern (private ghost rings)
    let mut dag = TestDag::new(&[(0, 1, 0), (0, 2, 0)]);
    for (task, space) in [(1, 5), (2, 6)] {
        dag.writes.insert(
            task,
            WriteRegion {
                space,
                rect: Rect::new(0, 0, 4, 4),
            },
        );
    }
    assert_clean(&program_of(dag, &[0], 3));
}

#[test]
fn comm_accounting_splits_local_and_cross() {
    // 0 on node 0 feeds 1 (node 0, local) and 2, 3 (node 1, cross)
    let mut dag = TestDag::new(&[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
    dag.bytes = 100;
    dag.node.insert(2, 1);
    dag.node.insert(3, 1);
    let a = assert_clean(&program_of(dag, &[0], 4));
    assert_eq!(a.comm.cross_messages, 2);
    assert_eq!(a.comm.cross_bytes, 200);
    assert_eq!(a.comm.local_messages, 1);
    assert_eq!(a.comm.local_bytes, 100);
    assert_eq!(a.comm.total_messages(), 3);

    let expected = a.expected_counters();
    assert_eq!(expected.get(obs::names::TASKS_EXECUTED), Some(4));
    assert_eq!(expected.get(obs::names::MESSAGES_SENT), Some(2));
    assert_eq!(expected.get(obs::names::BYTES_SENT), Some(200));
    assert_eq!(expected.get(obs::names::REDUNDANT_FLOPS), Some(0));
}

#[test]
fn lanes_tighten_the_work_bound() {
    // root feeding 4 children: chain length 2, node work 5
    let dag = TestDag::new(&[(0, 1, 0), (0, 2, 0), (0, 3, 0), (0, 4, 0)]);
    let p = program_of(dag, &[0], 5);
    let one_lane = analyze_program(&p, &AnalyzeConfig::new()).path.unwrap();
    assert_eq!(one_lane.critical_path, 2.0);
    assert_eq!(one_lane.node_work, vec![5.0]);
    assert_eq!(one_lane.makespan_lower_bound, 5.0);
    let four_lanes = analyze_program(&p, &AnalyzeConfig::new().with_lanes(4))
        .path
        .unwrap();
    // 5.0 work / 4 lanes = 1.25 < chain 2.0: the chain now binds
    assert_eq!(four_lanes.makespan_lower_bound, 2.0);
    assert_eq!(four_lanes.lanes, 4);
}

#[test]
fn redundant_flops_summed_over_tasks() {
    let mut dag = TestDag::new(&[(0, 1, 0), (1, 2, 0)]);
    dag.redundant.insert(1, 10);
    dag.redundant.insert(2, 5);
    let a = assert_clean(&program_of(dag, &[0], 3));
    assert_eq!(a.flops.redundant, 15);
    assert_eq!(
        a.expected_counters().get(obs::names::REDUNDANT_FLOPS),
        Some(15)
    );
}

#[test]
fn truncation_skips_ordering_passes() {
    let edges: Vec<(i32, i32, usize)> = (0..50).map(|i| (i, i + 1, 0)).collect();
    let p = program_of(TestDag::new(&edges), &[0], 51);
    let a = analyze_program(&p, &AnalyzeConfig::new().with_task_limit(5));
    assert!(a.diagnostics.iter().any(|d| matches!(
        d,
        Diagnostic::Structural(runtime::StructuralFault::Truncated { limit: 5 })
    )));
    assert!(a.path.is_none(), "truncated DAG has no sound critical path");
    assert_eq!(a.tasks, 5);
}

#[test]
#[should_panic(expected = "failed static analysis")]
fn assert_clean_panics_with_report() {
    let mut dag = TestDag::new(&[(0, 1, 0)]);
    dag.indeg.insert(1, 3);
    assert_clean(&program_of(dag, &[0], 2));
}
