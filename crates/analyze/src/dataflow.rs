//! Region-dataflow analysis: halo-coverage proofs, dead-transfer
//! detection, and steady-state (periodic) verification.
//!
//! The pass interprets the footprint declarations of
//! [`runtime::TaskClass`] — [`write_region`](runtime::TaskClass::write_region),
//! [`read_region`](runtime::TaskClass::read_region),
//! [`delivered_region`](runtime::TaskClass::delivered_region),
//! [`pinned_region`](runtime::TaskClass::pinned_region) — over the
//! unfolded DAG with the exact rectangle algebra of [`crate::rectset`].
//!
//! **Coverage proof.** Tasks are swept in *layer* order (longest-path
//! depth from the roots). Per address space the pass accumulates the set
//! of valid cells: entering task `i`, `valid = state[space] ∪
//! deliveries(i) ∪ pinned(i)`; the check is `read(i) ⊆ valid`, and the
//! witness on failure is the largest uncovered rectangle. Afterwards
//! `state[space] ∪= deliveries(i) ∪ write(i)`. Accumulation (rather than
//! only the immediate predecessor's write) is what lets PA2's exchange
//! steps legitimately read band cells last refreshed several phases
//! earlier. The sweep is sound when tasks sharing a space are totally
//! ordered by the DAG — exactly what the write-race pass certifies for
//! the stencil's tile-private chains — because then layer order is
//! consistent with every same-space dependence chain.
//!
//! **Dead transfers.** An edge's delivered region is dead where no read
//! footprint of the destination space ever touches it ("no downstream
//! read", approximated time-insensitively: reads repeat every iteration
//! in these schemes, so the union over all layers equals the union over
//! future layers). Dead bytes are pro-rated by area against the edge's
//! wire bytes. Edges whose producer declares no delivered region, and
//! spaces with no declared reads at all, are exempt.
//!
//! **Steady state.** Stencil DAGs repeat after a prologue: the pass
//! fingerprints each layer's *in-structure* (classes, footprints,
//! in-edges with relative producer depth — never out-edges, so the final
//! layers fingerprint identically to mid-stream ones), detects the
//! smallest period `P`, sweeps prologue + one period, and certifies by
//! comparing the per-space valid states entering layer `a` and layer
//! `a+P` (semantic rectangle-set equality). Monotone accumulation makes
//! the entering states converge, so on mismatch the pass advances `a` by
//! `P` and sweeps one more period; once certified, every later layer's
//! verdict and dead-byte total provably repeats the congruent swept
//! layer, and the expensive rectangle sweep cost drops from O(layers) to
//! O(prologue + period).

use crate::diag::Diagnostic;
use crate::rectset::RectSet;
use crate::task_name;
use runtime::{ReadRegion, UnfoldedDag};
use std::collections::HashMap;

/// How much of the DAG the rectangle sweep covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataflowMode {
    /// Sweep every layer of the unfolded DAG.
    Full,
    /// Detect the iteration period and sweep only prologue + one period,
    /// certifying that the rest repeats. Falls back to a full sweep when
    /// no period is found or the fixpoint never certifies.
    SteadyState,
}

/// What the region-dataflow pass established.
#[derive(Debug, Clone)]
pub struct DataflowReport {
    /// The mode the pass ran in.
    pub mode: DataflowMode,
    /// Number of layers (longest-path depths) in the DAG.
    pub layers: usize,
    /// Task instances actually visited by the rectangle sweep. Equal to
    /// the region-declaring task count in [`DataflowMode::Full`]; the
    /// point of [`DataflowMode::SteadyState`] is that this stays at
    /// O(prologue + period) layers' worth.
    pub analyzed_tasks: usize,
    /// Swept task instances whose declared read footprint was
    /// coverage-checked.
    pub checked_reads: usize,
    /// Uncovered-read diagnostics emitted (from swept layers only; in
    /// steady state, congruent unswept layers repeat these verdicts).
    pub uncovered: usize,
    /// The certified iteration period, when steady-state verification
    /// succeeded.
    pub period: Option<usize>,
    /// First certified-periodic layer (prologue length) when steady-state
    /// verification succeeded.
    pub prologue: usize,
    /// Total delivered bytes no downstream read touches (dead transfers),
    /// across all edges — extrapolated exactly in steady-state mode.
    pub dead_bytes: u64,
    /// The cross-node portion of [`dead_bytes`](Self::dead_bytes): bytes
    /// that actually crossed the wire for nothing.
    pub dead_cross_bytes: u64,
    /// Number of edges carrying at least one dead cell.
    pub dead_edges: usize,
}

/// 64-bit FNV-1a. Deterministic across runs and platforms, unlike
/// `DefaultHasher` — layer fingerprints must be reproducible.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_region(h: &mut Fnv, region: &Option<ReadRegion>) {
    match region {
        None => h.u64(0),
        Some(r) => {
            h.u64(1);
            h.u64(r.space);
            h.u64(r.rects.len() as u64);
            for rect in &r.rects {
                h.i64(rect.row);
                h.i64(rect.col);
                h.u64(rect.rows as u64);
                h.u64(rect.cols as u64);
            }
        }
    }
}

/// Footprints of one task instance, fetched once.
struct TaskInfo {
    write: Option<runtime::WriteRegion>,
    read: Option<ReadRegion>,
    pinned: Option<ReadRegion>,
    kind: u32,
}

/// Per-layer dead-transfer totals, the unit of steady-state
/// extrapolation (an edge is attributed to its *consumer's* layer so the
/// totals are in-structure, like the fingerprints).
#[derive(Debug, Clone, Copy, Default)]
struct LayerDead {
    bytes: u64,
    cross: u64,
    edges: usize,
}

struct Pass<'a> {
    dag: &'a UnfoldedDag,
    layer: Vec<usize>,
    layer_tasks: Vec<Vec<usize>>,
    infos: Vec<TaskInfo>,
    /// In-edge indices (into `dag.edges`) per consumer.
    in_edges: Vec<Vec<u32>>,
    /// Delivered region per edge, parallel to `dag.edges`.
    delivered: Vec<Option<ReadRegion>>,
    /// Union of every declared read footprint, per space.
    space_reads: HashMap<u64, RectSet>,
    /// Accumulated valid cells per space (the sweep's running state).
    state: HashMap<u64, RectSet>,
    diagnostics: Vec<Diagnostic>,
    layer_dead: Vec<LayerDead>,
    analyzed: usize,
    checked_reads: usize,
}

impl<'a> Pass<'a> {
    fn new(dag: &'a UnfoldedDag, topo: &[usize]) -> Self {
        // Longest-path depth from the roots; every edge strictly
        // increases it, so a layer sweep respects all dependences.
        let adj = dag.out_adjacency();
        let mut layer = vec![0usize; dag.len()];
        for &i in topo {
            for &ei in &adj[i] {
                let e = &dag.edges[ei as usize];
                layer[e.consumer] = layer[e.consumer].max(layer[i] + 1);
            }
        }
        let depth = layer.iter().max().map_or(0, |&m| m + 1);
        let mut layer_tasks = vec![Vec::new(); depth];
        for i in 0..dag.len() {
            layer_tasks[layer[i]].push(i);
        }

        let infos: Vec<TaskInfo> = dag
            .tasks
            .iter()
            .map(|key| {
                let class = dag.graph.class(key.class);
                TaskInfo {
                    write: class.write_region(key.params),
                    read: class.read_region(key.params),
                    pinned: class.pinned_region(key.params),
                    kind: class.kind(key.params),
                }
            })
            .collect();

        let mut in_edges = vec![Vec::new(); dag.len()];
        let mut delivered = Vec::with_capacity(dag.edges.len());
        for (ei, e) in dag.edges.iter().enumerate() {
            in_edges[e.consumer].push(ei as u32);
            let key = dag.tasks[e.producer];
            delivered.push(
                dag.graph
                    .class(key.class)
                    .delivered_region(key.params, e.flow),
            );
        }

        let mut space_reads: HashMap<u64, RectSet> = HashMap::new();
        for info in &infos {
            if let Some(r) = &info.read {
                let set = space_reads.entry(r.space).or_default();
                for &rect in &r.rects {
                    set.insert(rect);
                }
            }
        }

        Pass {
            dag,
            layer,
            infos,
            in_edges,
            delivered,
            space_reads,
            state: HashMap::new(),
            diagnostics: Vec::new(),
            layer_dead: vec![LayerDead::default(); depth],
            analyzed: 0,
            checked_reads: 0,
            layer_tasks,
        }
    }

    fn depth(&self) -> usize {
        self.layer_tasks.len()
    }

    /// Rectangle-sweep one layer: coverage checks, state accumulation,
    /// and dead-transfer accounting for the edges arriving here.
    fn sweep_layer(&mut self, l: usize) {
        let tasks = std::mem::take(&mut self.layer_tasks[l]);
        for &i in &tasks {
            let deliveries: Vec<u32> = self.in_edges[i]
                .iter()
                .copied()
                .filter(|&ei| self.delivered[ei as usize].is_some())
                .collect();
            let info = &self.infos[i];
            if info.read.is_none() && info.write.is_none() && deliveries.is_empty() {
                continue; // no region facts: exempt from the pass
            }
            self.analyzed += 1;

            if let Some(read) = &info.read {
                self.checked_reads += 1;
                let mut valid = self.state.get(&read.space).cloned().unwrap_or_default();
                if let Some(p) = &info.pinned {
                    if p.space == read.space {
                        for &r in &p.rects {
                            valid.insert(r);
                        }
                    }
                }
                for &ei in &deliveries {
                    let d = self.delivered[ei as usize].as_ref().unwrap();
                    if d.space == read.space {
                        for &r in &d.rects {
                            valid.insert(r);
                        }
                    }
                }
                let mut uncovered = RectSet::from_rects(read.rects.iter().copied());
                uncovered.subtract(&valid);
                if let Some(witness) = uncovered.largest() {
                    self.diagnostics.push(Diagnostic::UncoveredRead {
                        task: task_name(self.dag, i),
                        kind: info.kind,
                        space: read.space,
                        cells: uncovered.area(),
                        witness,
                    });
                }
            }

            // Accumulate: delivered cells and the task's own write become
            // valid for everything later in this space's chain.
            for &ei in &deliveries {
                let d = self.delivered[ei as usize].clone().unwrap();
                let set = self.state.entry(d.space).or_default();
                for rect in d.rects {
                    set.insert(rect);
                }
            }
            if let Some(w) = &self.infos[i].write {
                self.state.entry(w.space).or_default().insert(w.rect);
            }

            // Dead transfers on the in-edges, attributed to this layer.
            for &ei in &deliveries {
                let d = self.delivered[ei as usize].as_ref().unwrap();
                let Some(reads) = self.space_reads.get(&d.space) else {
                    continue; // space declares no reads at all: unknown
                };
                let mut dead = RectSet::from_rects(d.rects.iter().copied());
                let delivered_area = dead.area();
                if delivered_area == 0 {
                    continue;
                }
                dead.subtract(reads);
                if !dead.is_empty() {
                    let e = &self.dag.edges[ei as usize];
                    let bytes = e.bytes as u64 * dead.area() / delivered_area;
                    let ld = &mut self.layer_dead[l];
                    ld.bytes += bytes;
                    ld.edges += 1;
                    if self.dag.node_of(e.producer) != self.dag.node_of(e.consumer) {
                        ld.cross += bytes;
                    }
                }
            }
        }
        self.layer_tasks[l] = tasks;
    }

    /// Deterministic per-layer structure fingerprint. In-structure only:
    /// each task hashes its class, kind, footprints, and in-edges (with
    /// producer depth *relative* to the task) — never its out-edges — so
    /// the last layers of the DAG fingerprint identically to mid-stream
    /// ones and no epilogue special-case is needed.
    fn fingerprints(&self) -> Vec<u64> {
        (0..self.depth())
            .map(|l| {
                let mut task_hashes: Vec<u64> = self.layer_tasks[l]
                    .iter()
                    .map(|&i| self.task_fingerprint(i))
                    .collect();
                task_hashes.sort_unstable();
                let mut h = Fnv::new();
                h.u64(task_hashes.len() as u64);
                for th in task_hashes {
                    h.u64(th);
                }
                h.finish()
            })
            .collect()
    }

    fn task_fingerprint(&self, i: usize) -> u64 {
        let key = self.dag.tasks[i];
        let info = &self.infos[i];
        let mut h = Fnv::new();
        h.u64(key.class as u64);
        h.u64(info.kind as u64);
        match &info.write {
            None => h.u64(0),
            Some(w) => {
                h.u64(1);
                h.u64(w.space);
                h.i64(w.rect.row);
                h.i64(w.rect.col);
                h.u64(w.rect.rows as u64);
                h.u64(w.rect.cols as u64);
            }
        }
        hash_region(&mut h, &info.read);
        hash_region(&mut h, &info.pinned);
        let mut edge_hashes: Vec<u64> = self.in_edges[i]
            .iter()
            .map(|&ei| {
                let e = &self.dag.edges[ei as usize];
                let pk = self.dag.tasks[e.producer];
                let mut eh = Fnv::new();
                eh.u64((self.layer[i] - self.layer[e.producer]) as u64);
                eh.u64(pk.class as u64);
                eh.u64(self.infos[e.producer].kind as u64);
                eh.u64(e.slot as u64);
                eh.u64(e.bytes as u64);
                eh.u64(u64::from(
                    self.dag.node_of(e.producer) != self.dag.node_of(e.consumer),
                ));
                hash_region(&mut eh, &self.delivered[ei as usize]);
                eh.finish()
            })
            .collect();
        edge_hashes.sort_unstable();
        h.u64(edge_hashes.len() as u64);
        for eh in edge_hashes {
            h.u64(eh);
        }
        h.finish()
    }

    fn state_snapshot(&self) -> HashMap<u64, RectSet> {
        self.state.clone()
    }
}

fn states_equal(a: &HashMap<u64, RectSet>, b: &HashMap<u64, RectSet>) -> bool {
    let empty = RectSet::new();
    a.keys().chain(b.keys()).all(|k| {
        a.get(k)
            .unwrap_or(&empty)
            .same_cells(b.get(k).unwrap_or(&empty))
    })
}

/// Smallest `(prologue, period)` such that every layer fingerprint from
/// `prologue` on repeats with the period, with at least one full period
/// of evidence. `None` when the layering shows no repetition.
fn detect_period(fps: &[u64]) -> Option<(usize, usize)> {
    if fps.len() < 2 {
        return None;
    }
    let m = fps.len() - 1;
    for p in 1..=(fps.len() / 2) {
        let mut a = m - p + 1;
        for l in (0..=m - p).rev() {
            if fps[l] == fps[l + p] {
                a = l;
            } else {
                break;
            }
        }
        if a + p <= m {
            return Some((a, p));
        }
    }
    None
}

/// Run the pass over an acyclic, untruncated DAG. Returns the
/// uncovered-read diagnostics and the report.
pub(crate) fn run(
    dag: &UnfoldedDag,
    topo: &[usize],
    mode: DataflowMode,
) -> (Vec<Diagnostic>, DataflowReport) {
    let mut pass = Pass::new(dag, topo);
    let depth = pass.depth();
    let mut report = DataflowReport {
        mode,
        layers: depth,
        analyzed_tasks: 0,
        checked_reads: 0,
        uncovered: 0,
        period: None,
        prologue: 0,
        dead_bytes: 0,
        dead_cross_bytes: 0,
        dead_edges: 0,
    };
    if depth == 0 {
        return (Vec::new(), report);
    }

    let mut swept = 0usize; // next layer to sweep
    let sweep_until = |pass: &mut Pass, end: usize, swept: &mut usize| {
        while *swept < end {
            pass.sweep_layer(*swept);
            *swept += 1;
        }
    };

    if mode == DataflowMode::SteadyState {
        if let Some((a0, p)) = detect_period(&pass.fingerprints()) {
            let m = depth - 1;
            let mut a = a0;
            sweep_until(&mut pass, a, &mut swept);
            let mut entry = pass.state_snapshot();
            while a + p <= m + 1 {
                sweep_until(&mut pass, a + p, &mut swept);
                let now = pass.state_snapshot();
                if states_equal(&entry, &now) {
                    // Certified: layers >= a+p repeat the congruent layer
                    // in [a, a+p) — extrapolate their dead totals exactly.
                    for l in (a + p)..=m {
                        let c = a + (l - a) % p;
                        let ld = pass.layer_dead[c];
                        report.dead_bytes += ld.bytes;
                        report.dead_cross_bytes += ld.cross;
                        report.dead_edges += ld.edges;
                    }
                    report.period = Some(p);
                    report.prologue = a;
                    break;
                }
                entry = now;
                a += p;
            }
        }
    }
    if report.period.is_none() {
        // Full mode, no period found, or the fixpoint never certified
        // within the DAG: sweep whatever remains.
        sweep_until(&mut pass, depth, &mut swept);
    }

    for ld in &pass.layer_dead[..swept] {
        report.dead_bytes += ld.bytes;
        report.dead_cross_bytes += ld.cross;
        report.dead_edges += ld.edges;
    }
    report.analyzed_tasks = pass.analyzed;
    report.checked_reads = pass.checked_reads;
    report.uncovered = pass.diagnostics.len();
    (pass.diagnostics, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_order_sensitive() {
        let mut a = Fnv::new();
        a.u64(1);
        a.u64(2);
        let mut b = Fnv::new();
        b.u64(1);
        b.u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.u64(2);
        c.u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn detect_period_finds_smallest() {
        // prologue [9], then period-2 tail
        let fps = [9, 1, 2, 1, 2, 1, 2];
        assert_eq!(detect_period(&fps), Some((1, 2)));
        // pure period 1 after one odd layer
        let fps = [7, 3, 3, 3];
        assert_eq!(detect_period(&fps), Some((1, 1)));
        // no repetition
        assert_eq!(detect_period(&[1, 2, 3, 4]), None);
        assert_eq!(detect_period(&[5]), None);
    }

    #[test]
    fn detect_period_needs_a_full_period_of_evidence() {
        // fps[2]==fps[3] would suggest p=1 at a=2, but a+p <= m must
        // hold: here m=3, a=2, 2+1=3 <= 3 — accepted.
        assert_eq!(detect_period(&[1, 2, 3, 3]), Some((2, 1)));
        // Only the last layer "repeats" nothing before it: rejected.
        assert_eq!(detect_period(&[1, 2]), None);
    }
}
