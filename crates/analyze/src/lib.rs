//! Static task-graph verifier for [`runtime`] programs.
//!
//! The executors discover the DAG dynamically and can only tell you a run
//! hung *after* it hung. This crate unfolds the parameterized task graph
//! once ([`runtime::UnfoldedDag`]) and proves properties about every
//! schedule before any run:
//!
//! * **Structural consistency** — the checks the retired
//!   `runtime::validate` pass performed (activation counts, slot wiring,
//!   task totals), reported as [`Diagnostic::Structural`].
//! * **Deadlock freedom** — a dependence cycle means the tasks on it can
//!   never fire; [`Diagnostic::Deadlock`] carries a shortest cycle as a
//!   witness.
//! * **Write-race freedom** — two DAG-unordered tasks writing
//!   intersecting rectangles of one address space
//!   ([`runtime::WriteRegion`]) make the final state schedule-dependent;
//!   [`Diagnostic::WriteRace`] names the pair.
//! * **Communication volume** — every cross-node edge is exactly one
//!   runtime message, so [`CommStats`] predicts the dynamic
//!   `obs::names::MESSAGES_SENT`/`BYTES_SENT` counters exactly
//!   ([`Analysis::expected_counters`] packages the prediction for
//!   [`obs::MetricsSnapshot::verify`]).
//! * **Critical path** — the longest cost-weighted chain and the
//!   busiest-node work bound give a makespan no schedule can beat
//!   ([`PathStats`]); the simulated executor's reported makespan must
//!   never be below it.
//! * **Rank export** — per-task upward/downward ranks and critical-path
//!   membership ([`task_ranks`]), the static quantities
//!   `runtime::scheduler`'s list schedulers order dispatch by, exported
//!   as analysis data so scheduler tables can be cross-checked.
//!
//! ```
//! # use analyze::{analyze_program, AnalyzeConfig};
//! # let program = analyze::doctest_program();
//! let analysis = analyze_program(&program, &AnalyzeConfig::new());
//! assert!(analysis.is_clean(), "{}", analysis.report());
//! ```

#![deny(missing_docs)]

mod comm;
pub mod dataflow;
mod deadlock;
mod diag;
mod path;
mod race;
mod ranks;
pub mod rectset;

pub use comm::{peer_matrix, verify_comm_matrix, CommStats, FlopStats, PeerComm};
pub use dataflow::{DataflowMode, DataflowReport};
pub use diag::Diagnostic;
pub use path::PathStats;
pub use ranks::{task_ranks, TaskRanks};
pub use rectset::RectSet;

use obs::ExpectedCounters;
use runtime::{Program, StructuralFault, UnfoldedDag};

/// Knobs for one analysis run.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    lanes: u32,
    task_limit: usize,
    races: bool,
    dataflow: Option<DataflowMode>,
}

impl AnalyzeConfig {
    /// Defaults: one worker lane per node, the runtime's default task
    /// limit, the race pass enabled, and the region-dataflow pass off.
    pub fn new() -> Self {
        AnalyzeConfig {
            lanes: 1,
            task_limit: runtime::unfold::DEFAULT_TASK_LIMIT,
            races: true,
            dataflow: None,
        }
    }

    /// Worker lanes per node, used by the makespan lower bound (match the
    /// machine profile's compute threads).
    pub fn with_lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes;
        self
    }

    /// Cap on enumerated tasks; exceeding it truncates the analysis with
    /// a [`StructuralFault::Truncated`] diagnostic.
    pub fn with_task_limit(mut self, limit: usize) -> Self {
        self.task_limit = limit;
        self
    }

    /// Disable the write-race pass (the analyzer's only super-linear
    /// pass) for bench-scale programs.
    pub fn without_races(mut self) -> Self {
        self.races = false;
        self
    }

    /// Enable the region-dataflow pass (halo-coverage proof, dead
    /// transfers, steady-state verification) in the given mode. Off by
    /// default: it only makes sense for programs declaring read/delivered
    /// footprints, and [`assert_clean`] deliberately keeps the seed
    /// behavior.
    pub fn with_dataflow(mut self, mode: DataflowMode) -> Self {
        self.dataflow = Some(mode);
        self
    }
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything one analysis run established about a program.
#[derive(Debug)]
pub struct Analysis {
    /// Number of tasks enumerated.
    pub tasks: usize,
    /// Number of dependence edges enumerated.
    pub edges: usize,
    /// Defects found; empty means the program is clean.
    pub diagnostics: Vec<Diagnostic>,
    /// Static message/byte volume by edge class.
    pub comm: CommStats,
    /// Static useful/redundant flop totals.
    pub flops: FlopStats,
    /// Critical-path statistics; `None` when the DAG was cyclic or
    /// truncated (no topological order to sweep).
    pub path: Option<PathStats>,
    /// Region-dataflow results; `None` unless enabled via
    /// [`AnalyzeConfig::with_dataflow`] (and the DAG was acyclic and
    /// untruncated, like the other ordering-sensitive passes).
    pub dataflow: Option<DataflowReport>,
}

impl Analysis {
    /// True when no diagnostic fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable report: one line per diagnostic (capped at 20),
    /// or "clean".
    pub fn report(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        let lines: Vec<String> = self
            .diagnostics
            .iter()
            .take(20)
            .map(|d| format!("  {d}"))
            .collect();
        format!(
            "{} diagnostic(s):\n{}",
            self.diagnostics.len(),
            lines.join("\n")
        )
    }

    /// The counter values a dynamic run of the same program must observe,
    /// for [`obs::MetricsSnapshot::verify`]: tasks executed, cross-node
    /// messages and bytes, and redundant flops.
    pub fn expected_counters(&self) -> ExpectedCounters {
        ExpectedCounters::new()
            .expect(obs::names::TASKS_EXECUTED, self.tasks as u64)
            .expect(obs::names::MESSAGES_SENT, self.comm.cross_messages)
            .expect(obs::names::BYTES_SENT, self.comm.cross_bytes)
            .expect(obs::names::REDUNDANT_FLOPS, self.flops.redundant)
    }
}

/// Enumerate `program`'s DAG under `config`'s task limit — the same
/// enumeration [`analyze_program`] starts from, exposed so callers that
/// need the graph itself (e.g. the `insight` crate joining trace spans to
/// task instances) can unfold once and share it with [`analyze_dag`].
pub fn unfold(program: &Program, config: &AnalyzeConfig) -> UnfoldedDag {
    UnfoldedDag::enumerate_with_limit(program, config.task_limit)
}

/// Run every static pass over `program`.
pub fn analyze_program(program: &Program, config: &AnalyzeConfig) -> Analysis {
    analyze_dag(&unfold(program, config), config)
}

/// Run every static pass over an already-enumerated DAG.
pub fn analyze_dag(dag: &UnfoldedDag, config: &AnalyzeConfig) -> Analysis {
    let mut diagnostics: Vec<Diagnostic> = dag
        .faults
        .iter()
        .cloned()
        .map(Diagnostic::Structural)
        .collect();
    let truncated = dag
        .faults
        .iter()
        .any(|f| matches!(f, StructuralFault::Truncated { .. }));

    // A truncated DAG has partial edges: ordering-sensitive passes would
    // report phantom cycles/races, so they are skipped (the Truncated
    // diagnostic already marks the analysis unsound).
    let topo = if truncated { None } else { dag.topo_order() };
    if !truncated && topo.is_none() {
        diagnostics.push(Diagnostic::Deadlock {
            cycle: deadlock::find_cycle(dag),
        });
    }
    if config.races {
        if let Some(topo) = &topo {
            diagnostics.extend(race::find_races(dag, topo));
        }
    }
    let mut dataflow_report = None;
    if let Some(mode) = config.dataflow {
        if let Some(topo) = &topo {
            let (dx, report) = dataflow::run(dag, topo, mode);
            diagnostics.extend(dx);
            dataflow_report = Some(report);
        }
    }

    Analysis {
        tasks: dag.len(),
        edges: dag.edges.len(),
        diagnostics,
        comm: comm::account_comm(dag),
        flops: comm::account_flops(dag),
        path: topo.map(|t| path::critical_path(dag, &t, config.lanes)),
        dataflow: dataflow_report,
    }
}

/// Analyze with default config and panic with the report on any
/// diagnostic. Drop-in successor of the retired `runtime::assert_valid`;
/// returns the [`Analysis`] for further checks.
pub fn assert_clean(program: &Program) -> Analysis {
    let analysis = analyze_program(program, &AnalyzeConfig::new());
    assert!(
        analysis.is_clean(),
        "program failed static analysis: {}",
        analysis.report()
    );
    analysis
}

/// "class(p0,p1,p2,p3)" — the human-readable task name used in witnesses.
pub(crate) fn task_name(dag: &UnfoldedDag, i: usize) -> String {
    let key = dag.tasks[i];
    let p = key.params;
    format!(
        "{}({},{},{},{})",
        dag.graph.class(key.class).name(),
        p[0],
        p[1],
        p[2],
        p[3]
    )
}

/// A tiny known-clean program for the crate-level doctest. Hidden from
/// docs; not part of the API.
#[doc(hidden)]
pub fn doctest_program() -> Program {
    use std::sync::Arc;
    let mut g = runtime::TaskGraph::new();
    struct Chain;
    impl runtime::TaskClass for Chain {
        fn name(&self) -> &str {
            "chain"
        }
        // `runtime`'s NodeId is an alias for u32, so no netsim dependency
        // is needed to implement the trait here.
        fn node_of(&self, _p: runtime::Params) -> u32 {
            0
        }
        fn activation_count(&self, p: runtime::Params) -> usize {
            usize::from(p[0] > 0)
        }
        fn num_output_flows(&self, p: runtime::Params) -> usize {
            usize::from(p[0] < 2)
        }
        fn outputs(&self, p: runtime::Params) -> Vec<runtime::OutputDep> {
            if p[0] < 2 {
                vec![runtime::OutputDep {
                    flow: 0,
                    consumer: runtime::TaskKey::new(0, [p[0] + 1, 0, 0, 0]),
                    slot: 0,
                }]
            } else {
                Vec::new()
            }
        }
        fn execute(
            &self,
            _p: runtime::Params,
            _inputs: &mut [Option<runtime::FlowData>],
        ) -> Vec<runtime::FlowData> {
            vec![runtime::FlowData::sized(8)]
        }
        fn output_bytes(&self, _p: runtime::Params, _flow: usize) -> usize {
            8
        }
        fn cost(&self, _p: runtime::Params) -> f64 {
            1e-6
        }
    }
    g.add_class(Arc::new(Chain));
    Program {
        graph: Arc::new(g),
        roots: vec![runtime::TaskKey::new(0, [0, 0, 0, 0])],
        total_tasks: 3,
    }
}

#[cfg(test)]
mod tests;
