//! Static write-race detection over declared write regions.
//!
//! Two tasks race when they write intersecting rectangles of the same
//! address space ([`runtime::WriteRegion`]) and the DAG contains a path
//! between them in neither direction. Tasks are grouped by space —
//! distinct spaces never alias — and within a group ordered by a fixed
//! topological order, so for any candidate pair the earlier task is the
//! only possible ancestor: one forward reachability query decides the
//! pair.

use crate::{diag::Diagnostic, task_name};
use runtime::{Rect, UnfoldedDag};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// Find all write races. `topo` must be a topological order of `dag`.
pub(crate) fn find_races(dag: &UnfoldedDag, topo: &[usize]) -> Vec<Diagnostic> {
    let mut rank = vec![0usize; dag.len()];
    for (r, &i) in topo.iter().enumerate() {
        rank[i] = r;
    }

    // Group writers by space; BTreeMap for deterministic report order.
    let mut groups: BTreeMap<u64, Vec<(usize, Rect)>> = BTreeMap::new();
    for (i, &key) in dag.tasks.iter().enumerate() {
        if let Some(w) = dag.graph.class(key.class).write_region(key.params) {
            groups.entry(w.space).or_default().push((i, w.rect));
        }
    }

    let adj = dag.out_adjacency();
    let mut diags = Vec::new();
    for (space, mut members) in groups {
        members.sort_by_key(|&(i, _)| rank[i]);
        for (ai, &(a, ra)) in members.iter().enumerate() {
            // Reachability from `a` is computed lazily, once, only when
            // some later member overlaps it.
            let mut reach: Option<HashSet<usize>> = None;
            for &(b, rb) in &members[ai + 1..] {
                if !ra.intersects(&rb) {
                    continue;
                }
                let reach = reach.get_or_insert_with(|| forward_reachable(dag, &adj, a));
                if !reach.contains(&b) {
                    diags.push(Diagnostic::WriteRace {
                        first: task_name(dag, a),
                        second: task_name(dag, b),
                        space,
                    });
                }
            }
        }
    }
    diags
}

/// Every task reachable from `start` along dependence edges.
fn forward_reachable(dag: &UnfoldedDag, adj: &[Vec<u32>], start: usize) -> HashSet<usize> {
    let mut seen = HashSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some(i) = queue.pop_front() {
        for &ei in &adj[i] {
            let c = dag.edges[ei as usize].consumer;
            if seen.insert(c) {
                queue.push_back(c);
            }
        }
    }
    seen
}
