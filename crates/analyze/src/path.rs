//! Critical-path analysis and the makespan lower bound.
//!
//! With per-task service times from [`runtime::TaskClass::cost`], the
//! longest cost-weighted dependence chain bounds the makespan from below
//! no matter how many workers run — and so does the busiest node's total
//! work divided by its worker lanes, since owner-computes placement pins
//! every task to its node. The simulated executor's service times are
//! exactly `cost` and communication only ever delays tasks, so a
//! simulated `RunReport.makespan` can never beat
//! [`PathStats::makespan_lower_bound`].

use runtime::UnfoldedDag;

/// Critical-path statistics of one unfolded DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Length (seconds) of the longest cost-weighted dependence chain.
    pub critical_path: f64,
    /// Total task cost placed on each node, indexed by `NodeId`.
    pub node_work: Vec<f64>,
    /// Worker lanes per node assumed for the work bound.
    pub lanes: u32,
    /// `max(critical_path, max(node_work) / lanes)` — no schedule on this
    /// machine shape can finish faster.
    pub makespan_lower_bound: f64,
}

/// Longest-path DP over a topological order (`topo` must order `dag`).
pub(crate) fn critical_path(dag: &UnfoldedDag, topo: &[usize], lanes: u32) -> PathStats {
    let adj = dag.out_adjacency();
    // dist[i] accumulates max-over-predecessors before i is visited, so a
    // single forward sweep adding the task's own cost suffices.
    let mut dist = vec![0.0f64; dag.len()];
    let mut node_work: Vec<f64> = Vec::new();
    let mut critical = 0.0f64;
    for &i in topo {
        let node = dag.node_of(i) as usize;
        if node >= node_work.len() {
            node_work.resize(node + 1, 0.0);
        }
        let cost = dag.cost_of(i);
        node_work[node] += cost;
        dist[i] += cost;
        critical = critical.max(dist[i]);
        for &ei in &adj[i] {
            let c = dag.edges[ei as usize].consumer;
            if dist[i] > dist[c] {
                dist[c] = dist[i];
            }
        }
    }
    let lanes = lanes.max(1);
    let busiest = node_work.iter().copied().fold(0.0f64, f64::max);
    PathStats {
        critical_path: critical,
        node_work,
        lanes,
        makespan_lower_bound: critical.max(busiest / lanes as f64),
    }
}
