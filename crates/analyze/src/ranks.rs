//! Static per-task rank export for schedulers.
//!
//! The list schedulers in [`runtime::scheduler`] order ready tasks by
//! static ranks over the unfolded DAG; this module exports the same
//! quantities as analysis data, so tools (and tests) can cross-check a
//! scheduler's table against the verifier's independent sweep:
//!
//! * **upward rank** (bottom level): the longest cost-weighted chain from
//!   a task through its successors, *including* its own cost —
//!   communication-free, so it equals `runtime::HeftScheduler`'s rank
//!   when no machine profile is bound;
//! * **downward rank** (top level): the longest cost-weighted chain from
//!   any root *up to but excluding* the task;
//! * **critical flags**: tasks whose `upward + downward` reaches the
//!   DAG's critical path — the chain every schedule is bound by
//!   ([`crate::PathStats::critical_path`] equals the maximum of that sum).

use runtime::UnfoldedDag;

/// Static ranks of every task in one unfolded DAG, indexed like
/// `dag.tasks`.
#[derive(Debug, Clone)]
pub struct TaskRanks {
    /// Upward rank (bottom level), seconds, own cost included.
    pub upward: Vec<f64>,
    /// Downward rank (top level), seconds, own cost excluded.
    pub downward: Vec<f64>,
    /// True for tasks on a critical path (`upward + downward` reaches the
    /// DAG's critical-path length, within 1 ppb relative tolerance).
    pub critical: Vec<bool>,
}

impl TaskRanks {
    /// Length of the critical path: the maximum `upward + downward`
    /// (equivalently, the maximum upward rank of any root).
    pub fn critical_path(&self) -> f64 {
        self.upward
            .iter()
            .zip(&self.downward)
            .map(|(u, d)| u + d)
            .fold(0.0, f64::max)
    }

    /// Number of tasks flagged critical.
    pub fn critical_tasks(&self) -> usize {
        self.critical.iter().filter(|&&c| c).count()
    }
}

/// Compute upward/downward ranks and critical flags for `dag`; `None`
/// when the graph is cyclic (no topological order exists — the deadlock
/// pass will name the cycle).
pub fn task_ranks(dag: &UnfoldedDag) -> Option<TaskRanks> {
    let topo = dag.topo_order()?;
    let adj = dag.out_adjacency();
    let n = dag.len();

    let mut upward = vec![0.0f64; n];
    for &i in topo.iter().rev() {
        let mut tail = 0.0f64;
        for &ei in &adj[i] {
            tail = tail.max(upward[dag.edges[ei as usize].consumer]);
        }
        upward[i] = dag.cost_of(i) + tail;
    }

    let mut downward = vec![0.0f64; n];
    for &i in &topo {
        let reach = downward[i] + dag.cost_of(i);
        for &ei in &adj[i] {
            let c = dag.edges[ei as usize].consumer;
            if reach > downward[c] {
                downward[c] = reach;
            }
        }
    }

    let cp = upward
        .iter()
        .zip(&downward)
        .map(|(u, d)| u + d)
        .fold(0.0, f64::max);
    let tol = cp * 1e-9;
    let critical = upward
        .iter()
        .zip(&downward)
        .map(|(u, d)| u + d >= cp - tol)
        .collect();

    Some(TaskRanks {
        upward,
        downward,
        critical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{unfold, AnalyzeConfig};
    use runtime::dtd::DtdBuilder;
    use runtime::scheduler::{HeftScheduler, SchedContext, Scheduler};
    use runtime::UnfoldedDag;

    /// root(1ms) -> {a(3ms), b(1ms)} -> sink(1ms): critical path through
    /// `a` is 5 ms.
    fn diamond() -> runtime::Program {
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 1e-3, &[]);
        let a = b.insert(0, 3e-3, &[root]);
        let bb = b.insert(0, 1e-3, &[root]);
        let _sink = b.insert(0, 1e-3, &[a, bb]);
        b.build()
    }

    #[test]
    fn ranks_match_hand_computation() {
        let p = diamond();
        let dag = UnfoldedDag::enumerate(&p);
        let r = task_ranks(&dag).expect("acyclic");
        // dag.tasks order follows BFS from the root: root, a, b, sink.
        assert!((r.upward[0] - 5e-3).abs() < 1e-12, "root {}", r.upward[0]);
        assert!((r.upward[3] - 1e-3).abs() < 1e-12, "sink {}", r.upward[3]);
        assert!((r.downward[0]).abs() < 1e-12);
        assert!((r.downward[3] - 4e-3).abs() < 1e-12, "{}", r.downward[3]);
        assert!((r.critical_path() - 5e-3).abs() < 1e-12);
        // root, a, sink are critical; b (upward 2ms, downward 1ms) is not.
        assert_eq!(r.critical, vec![true, true, false, true]);
        assert_eq!(r.critical_tasks(), 3);
    }

    #[test]
    fn critical_path_agrees_with_path_stats() {
        let p = diamond();
        let analysis = crate::analyze_program(&p, &AnalyzeConfig::new());
        let dag = unfold(&p, &AnalyzeConfig::new());
        let r = task_ranks(&dag).unwrap();
        let path = analysis.path.expect("acyclic");
        assert!((r.critical_path() - path.critical_path).abs() < 1e-12);
    }

    #[test]
    fn heft_without_profile_equals_upward_rank() {
        // The scheduler's integer rank table must be exactly the
        // verifier's upward ranks scaled to nanoseconds: two independent
        // implementations of the same recurrence.
        let p = diamond();
        let dag = unfold(&p, &AnalyzeConfig::new());
        let r = task_ranks(&dag).unwrap();
        let sel = HeftScheduler.instance(&SchedContext {
            program: &p,
            profile: None,
            nodes: 1,
            lanes: 1,
        });
        for (i, &key) in dag.tasks.iter().enumerate() {
            assert_eq!(
                sel.rank(key),
                (r.upward[i] * 1e9).round() as i64,
                "task {i} ({key:?})"
            );
        }
    }
}
