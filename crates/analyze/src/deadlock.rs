//! Cycle detection with a minimal witness.
//!
//! [`runtime::UnfoldedDag::topo_order`] already answers *whether* the DAG
//! is cyclic; this pass answers *where*. Kahn's algorithm leaves exactly
//! the cyclic core (tasks on or downstream-and-upstream of a cycle)
//! unordered, so we BFS inside that core from a few start tasks and keep
//! the shortest cycle found — a witness small enough to read.

use crate::task_name;
use runtime::UnfoldedDag;
use std::collections::{HashSet, VecDeque};

/// How many core tasks to try as BFS starts: enough that a short cycle
/// through any of the first few core members is found, bounded so a huge
/// cyclic core does not turn diagnosis quadratic.
const MAX_STARTS: usize = 16;

/// Find a shortest dependence cycle through the cyclic core, as task
/// names in dependence order. Call only when `topo_order()` returned
/// `None`; returns an empty vector if (impossibly) no cycle is found.
pub(crate) fn find_cycle(dag: &UnfoldedDag) -> Vec<String> {
    // Re-run Kahn to identify the core: tasks never drained.
    let mut indeg = dag.in_degrees();
    let adj = dag.out_adjacency();
    let mut queue: VecDeque<usize> = (0..dag.len()).filter(|&i| indeg[i] == 0).collect();
    let mut drained = vec![false; dag.len()];
    while let Some(i) = queue.pop_front() {
        drained[i] = true;
        for &ei in &adj[i] {
            let c = dag.edges[ei as usize].consumer;
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push_back(c);
            }
        }
    }
    let core: HashSet<usize> = (0..dag.len()).filter(|&i| !drained[i]).collect();

    let mut best: Option<Vec<usize>> = None;
    for &start in core.iter().take(MAX_STARTS) {
        if let Some(cycle) = shortest_cycle_through(dag, &adj, &core, start) {
            if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                best = Some(cycle);
            }
        }
    }
    best.unwrap_or_default()
        .into_iter()
        .map(|i| task_name(dag, i))
        .collect()
}

/// BFS from `start` restricted to `core`; the first edge closing back on
/// `start` yields a shortest cycle through it.
fn shortest_cycle_through(
    dag: &UnfoldedDag,
    adj: &[Vec<u32>],
    core: &HashSet<usize>,
    start: usize,
) -> Option<Vec<usize>> {
    let mut parent: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut queue = VecDeque::from([start]);
    while let Some(i) = queue.pop_front() {
        for &ei in &adj[i] {
            let c = dag.edges[ei as usize].consumer;
            if c == start {
                // unwind: start -> ... -> i, cycle closes i -> start
                let mut path = vec![i];
                let mut cur = i;
                while cur != start {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if core.contains(&c) && !parent.contains_key(&c) && c != start {
                parent.insert(c, i);
                queue.push_back(c);
            }
        }
    }
    None
}
