//! Static communication-volume and flop accounting.
//!
//! Each enumerated edge whose producer and consumer live on different
//! nodes is exactly one runtime message of `bytes` payload — the same
//! rule all three executors implement — so these sums predict the
//! dynamic `obs::names::MESSAGES_SENT` / `BYTES_SENT` counters exactly.

use runtime::UnfoldedDag;
use std::collections::BTreeMap;

/// Message and byte volume by edge class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Edges crossing a node boundary (one runtime message each).
    pub cross_messages: u64,
    /// Payload bytes crossing node boundaries.
    pub cross_bytes: u64,
    /// Edges delivered node-locally (no message).
    pub local_messages: u64,
    /// Payload bytes moved node-locally.
    pub local_bytes: u64,
}

impl CommStats {
    /// Total edges, local and cross.
    pub fn total_messages(&self) -> u64 {
        self.cross_messages + self.local_messages
    }
}

/// Static work accounting over every enumerated task.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlopStats {
    /// Useful floating-point work ([`runtime::TaskClass::flops`]).
    pub total: f64,
    /// Redundant work beyond the nominal algorithm
    /// ([`runtime::TaskClass::redundant_flops`]); matches the dynamic
    /// `obs::names::REDUNDANT_FLOPS` counter exactly.
    pub redundant: u64,
}

/// Static message and byte volume of one directed node pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerComm {
    /// Cross-node edges from `src` to `dst` (one runtime message each).
    pub messages: u64,
    /// Payload bytes those edges carry.
    pub bytes: u64,
}

/// Exact static communication matrix: for every directed `(src, dst)`
/// node pair, the number of cross-node edges and their payload bytes.
/// Because every cross-node edge is exactly one runtime message, a traced
/// run's `obs::CommMatrix` must match this map *identically* — same peer
/// set, same message counts, same byte totals — whenever no message spans
/// were dropped. [`verify_comm_matrix`] performs that comparison.
pub fn peer_matrix(dag: &UnfoldedDag) -> BTreeMap<(u32, u32), PeerComm> {
    let mut peers: BTreeMap<(u32, u32), PeerComm> = BTreeMap::new();
    for e in &dag.edges {
        let src = dag.node_of(e.producer);
        let dst = dag.node_of(e.consumer);
        if src != dst {
            let p = peers.entry((src, dst)).or_default();
            p.messages += 1;
            p.bytes += e.bytes as u64;
        }
    }
    peers
}

/// Check a traced run's dynamic communication matrix against the static
/// [`peer_matrix`] prediction: every directed peer pair must appear in
/// both with identical message counts and byte totals. Returns the first
/// discrepancy as an error string. A matrix with dropped message spans
/// can only be a lower bound, so it is rejected outright — re-run with a
/// larger ring instead of weakening the identity.
pub fn verify_comm_matrix(
    expected: &BTreeMap<(u32, u32), PeerComm>,
    observed: &obs::CommMatrix,
) -> Result<(), String> {
    if observed.dropped > 0 {
        return Err(format!(
            "{} message spans dropped: the observed matrix is a lower bound, not comparable",
            observed.dropped
        ));
    }
    for (&(src, dst), flow) in &observed.peers {
        let Some(exp) = expected.get(&(src, dst)) else {
            return Err(format!(
                "observed {} messages {src}->{dst}, but no static edge crosses that pair",
                flow.messages
            ));
        };
        if flow.messages != exp.messages || flow.bytes != exp.bytes {
            return Err(format!(
                "peer {src}->{dst}: observed {} msgs / {} bytes, static accounting says {} / {}",
                flow.messages, flow.bytes, exp.messages, exp.bytes
            ));
        }
    }
    for (&(src, dst), exp) in expected {
        if !observed.peers.contains_key(&(src, dst)) {
            return Err(format!(
                "static accounting expects {} msgs {src}->{dst}, none observed",
                exp.messages
            ));
        }
    }
    Ok(())
}

pub(crate) fn account_comm(dag: &UnfoldedDag) -> CommStats {
    let mut stats = CommStats::default();
    for e in &dag.edges {
        if dag.node_of(e.producer) == dag.node_of(e.consumer) {
            stats.local_messages += 1;
            stats.local_bytes += e.bytes as u64;
        } else {
            stats.cross_messages += 1;
            stats.cross_bytes += e.bytes as u64;
        }
    }
    stats
}

pub(crate) fn account_flops(dag: &UnfoldedDag) -> FlopStats {
    let mut stats = FlopStats::default();
    for &key in &dag.tasks {
        let class = dag.graph.class(key.class);
        stats.total += class.flops(key.params);
        stats.redundant += class.redundant_flops(key.params);
    }
    stats
}
