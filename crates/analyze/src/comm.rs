//! Static communication-volume and flop accounting.
//!
//! Each enumerated edge whose producer and consumer live on different
//! nodes is exactly one runtime message of `bytes` payload — the same
//! rule all three executors implement — so these sums predict the
//! dynamic `obs::names::MESSAGES_SENT` / `BYTES_SENT` counters exactly.

use runtime::UnfoldedDag;

/// Message and byte volume by edge class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Edges crossing a node boundary (one runtime message each).
    pub cross_messages: u64,
    /// Payload bytes crossing node boundaries.
    pub cross_bytes: u64,
    /// Edges delivered node-locally (no message).
    pub local_messages: u64,
    /// Payload bytes moved node-locally.
    pub local_bytes: u64,
}

impl CommStats {
    /// Total edges, local and cross.
    pub fn total_messages(&self) -> u64 {
        self.cross_messages + self.local_messages
    }
}

/// Static work accounting over every enumerated task.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlopStats {
    /// Useful floating-point work ([`runtime::TaskClass::flops`]).
    pub total: f64,
    /// Redundant work beyond the nominal algorithm
    /// ([`runtime::TaskClass::redundant_flops`]); matches the dynamic
    /// `obs::names::REDUNDANT_FLOPS` counter exactly.
    pub redundant: u64,
}

pub(crate) fn account_comm(dag: &UnfoldedDag) -> CommStats {
    let mut stats = CommStats::default();
    for e in &dag.edges {
        if dag.node_of(e.producer) == dag.node_of(e.consumer) {
            stats.local_messages += 1;
            stats.local_bytes += e.bytes as u64;
        } else {
            stats.cross_messages += 1;
            stats.cross_bytes += e.bytes as u64;
        }
    }
    stats
}

pub(crate) fn account_flops(dag: &UnfoldedDag) -> FlopStats {
    let mut stats = FlopStats::default();
    for &key in &dag.tasks {
        let class = dag.graph.class(key.class);
        stats.total += class.flops(key.params);
        stats.redundant += class.redundant_flops(key.params);
    }
    stats
}
