//! The analyzer's diagnostic vocabulary.

use runtime::{Rect, StructuralFault};

/// One defect found by static analysis. Every variant carries a concrete
/// witness naming the offending task(s), so a report is actionable
/// without re-running the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// A structural inconsistency found while unfolding the DAG (wrong
    /// activation count, slot collision, dangling flow, wrong task total,
    /// or enumeration truncation) — see [`StructuralFault`].
    Structural(StructuralFault),
    /// The unfolded DAG contains a dependence cycle: none of the listed
    /// tasks can ever fire, deadlocking the run. The witness is a
    /// shortest cycle through the cyclic core, in dependence order
    /// (each task feeds the next, the last feeds the first).
    Deadlock {
        /// Task names along the cycle.
        cycle: Vec<String>,
    },
    /// Two tasks write intersecting rectangles of the same address space
    /// but the DAG orders them neither way, so their execution order —
    /// and the final memory state — depends on the schedule.
    WriteRace {
        /// The topologically earlier task (no path to `second`).
        first: String,
        /// The unordered later task.
        second: String,
        /// The shared address space id.
        space: u64,
    },
    /// A task's declared read footprint contains cells that no prior
    /// write in its space, no in-edge's delivered region, and no pinned
    /// (time-invariant) region accounts for: the task would consume
    /// uninitialized or stale memory. Found by the region-dataflow pass
    /// ([`crate::dataflow`]).
    UncoveredRead {
        /// The reading task.
        task: String,
        /// The task's trace kind (see the scheme's kind constants).
        kind: u32,
        /// The address space the read lives in.
        space: u64,
        /// Total uncovered cells across the read footprint.
        cells: u64,
        /// The largest uncovered rectangle, as a concrete witness.
        witness: Rect,
    },
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Diagnostic::Structural(fault) => write!(f, "structural: {fault}"),
            Diagnostic::Deadlock { cycle } => {
                write!(f, "deadlock: dependence cycle {}", cycle.join(" -> "))
            }
            Diagnostic::WriteRace {
                first,
                second,
                space,
            } => write!(
                f,
                "write race: {first} and {second} write overlapping regions of space {space} unordered"
            ),
            Diagnostic::UncoveredRead {
                task,
                kind,
                space,
                cells,
                witness,
            } => write!(
                f,
                "uncovered read: {task} (kind {kind}) reads {cells} cell(s) of space {space} \
                 never written, delivered, or pinned before use; e.g. rows {}..{} x cols {}..{}",
                witness.row,
                witness.row + witness.rows as i64,
                witness.col,
                witness.col + witness.cols as i64,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let d = Diagnostic::Deadlock {
            cycle: vec!["a(1)".into(), "b(2)".into()],
        };
        assert_eq!(d.to_string(), "deadlock: dependence cycle a(1) -> b(2)");
        let r = Diagnostic::WriteRace {
            first: "u(0)".into(),
            second: "u(1)".into(),
            space: 7,
        };
        assert!(r.to_string().contains("space 7"));
        let s = Diagnostic::Structural(StructuralFault::TotalMismatch {
            declared: 4,
            reachable: 3,
        });
        assert!(s.to_string().starts_with("structural:"));
        let u = Diagnostic::UncoveredRead {
            task: "ca(0,1,4,0)".into(),
            kind: 1,
            space: 4,
            cells: 96,
            witness: Rect::new(-3, -1, 1, 34),
        };
        let text = u.to_string();
        assert!(text.contains("96 cell(s) of space 4"), "{text}");
        assert!(text.contains("rows -3..-2 x cols -1..33"), "{text}");
    }
}
