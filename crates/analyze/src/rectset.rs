//! Disjoint rectangle-set algebra over tile-index rectangles.
//!
//! The region-dataflow pass ([`crate::dataflow`]) reasons about which
//! cells of an address space are valid at each point of the unfolded DAG.
//! Cell sets are unions of axis-aligned [`Rect`]s; this module keeps them
//! as a vector of **pairwise-disjoint** rectangles so that area is a sum
//! and subtraction is per-rectangle guillotine splitting (a rectangle
//! minus a rectangle is at most four rectangles: the bands above and
//! below the intersection at full width, plus the left/right remnants of
//! the middle band).
//!
//! All operations are exact; none of them normalizes adjacent fragments
//! back into bigger rectangles, so two sets covering the same cells may
//! differ representationally — use [`RectSet::same_cells`] for semantic
//! comparison (as the steady-state certificate does), never `==`.

use runtime::Rect;

/// A set of cells represented as pairwise-disjoint rectangles.
#[derive(Debug, Clone, Default)]
pub struct RectSet {
    rects: Vec<Rect>,
}

/// Pieces of `a` not covered by `b` — at most four rectangles.
fn rect_subtract(a: Rect, b: Rect) -> Vec<Rect> {
    if !a.intersects(&b) {
        return if a.area() == 0 { Vec::new() } else { vec![a] };
    }
    let a_r1 = a.row + a.rows as i64;
    let a_c1 = a.col + a.cols as i64;
    // Intersection bounds, clipped to `a`.
    let ir0 = a.row.max(b.row);
    let ir1 = a_r1.min(b.row + b.rows as i64);
    let ic0 = a.col.max(b.col);
    let ic1 = a_c1.min(b.col + b.cols as i64);
    let mut out = Vec::with_capacity(4);
    if ir0 > a.row {
        out.push(Rect::new(a.row, a.col, (ir0 - a.row) as u32, a.cols));
    }
    if a_r1 > ir1 {
        out.push(Rect::new(ir1, a.col, (a_r1 - ir1) as u32, a.cols));
    }
    let mid_rows = (ir1 - ir0) as u32;
    if ic0 > a.col {
        out.push(Rect::new(ir0, a.col, mid_rows, (ic0 - a.col) as u32));
    }
    if a_c1 > ic1 {
        out.push(Rect::new(ir0, ic1, mid_rows, (a_c1 - ic1) as u32));
    }
    out
}

impl RectSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set holding the cells of one rectangle.
    pub fn from_rect(r: Rect) -> Self {
        let mut s = Self::new();
        s.insert(r);
        s
    }

    /// A set holding the union of the given rectangles (they may overlap).
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        let mut s = Self::new();
        for r in rects {
            s.insert(r);
        }
        s
    }

    /// Add the cells of `r`. Overlap with existing cells is fine; only the
    /// uncovered pieces are stored, preserving disjointness.
    pub fn insert(&mut self, r: Rect) {
        if r.area() == 0 {
            return;
        }
        let mut fresh = vec![r];
        for have in &self.rects {
            if fresh.is_empty() {
                return;
            }
            fresh = fresh
                .into_iter()
                .flat_map(|piece| rect_subtract(piece, *have))
                .collect();
        }
        self.rects.extend(fresh);
    }

    /// Add every cell of `other`.
    pub fn union_with(&mut self, other: &RectSet) {
        for &r in &other.rects {
            self.insert(r);
        }
    }

    /// Remove the cells of `r`.
    pub fn subtract_rect(&mut self, r: &Rect) {
        if r.area() == 0 {
            return;
        }
        self.rects = self
            .rects
            .drain(..)
            .flat_map(|have| rect_subtract(have, *r))
            .collect();
    }

    /// Remove every cell of `other`.
    pub fn subtract(&mut self, other: &RectSet) {
        for r in &other.rects {
            self.subtract_rect(r);
        }
    }

    /// `self \ other` as a new set, leaving `self` untouched.
    pub fn difference(&self, other: &RectSet) -> RectSet {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// Number of cells covered. Exact because fragments are disjoint.
    pub fn area(&self) -> u64 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// True when no cells are covered.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// True when every cell of `r` is in the set.
    pub fn covers(&self, r: &Rect) -> bool {
        let mut probe = RectSet::from_rect(*r);
        probe.subtract(self);
        probe.is_empty()
    }

    /// The largest-area stored fragment — the witness rectangle reported
    /// for uncovered reads. `None` when empty.
    pub fn largest(&self) -> Option<Rect> {
        self.rects.iter().copied().max_by_key(Rect::area)
    }

    /// Semantic equality: both sets cover exactly the same cells, however
    /// they are fragmented.
    pub fn same_cells(&self, other: &RectSet) -> bool {
        self.difference(other).is_empty() && other.difference(self).is_empty()
    }

    /// The stored disjoint fragments (representation-dependent order).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(row: i64, col: i64, rows: u32, cols: u32) -> Rect {
        Rect::new(row, col, rows, cols)
    }

    #[test]
    fn insert_merges_overlap_without_double_count() {
        let mut s = RectSet::new();
        s.insert(r(0, 0, 4, 4));
        s.insert(r(2, 2, 4, 4)); // overlaps 2x2
        assert_eq!(s.area(), 16 + 16 - 4);
        s.insert(r(0, 0, 6, 6)); // superset of both
        assert_eq!(s.area(), 36);
    }

    #[test]
    fn subtract_hole_splits_into_four() {
        let mut s = RectSet::from_rect(r(0, 0, 10, 10));
        s.subtract_rect(&r(3, 3, 4, 4));
        assert_eq!(s.area(), 100 - 16);
        assert!(!s.covers(&r(3, 3, 1, 1)));
        assert!(s.covers(&r(0, 0, 3, 10)));
        assert!(s.covers(&r(7, 0, 3, 10)));
    }

    #[test]
    fn subtract_disjoint_is_identity() {
        let mut s = RectSet::from_rect(r(0, 0, 4, 4));
        s.subtract_rect(&r(10, 10, 4, 4));
        assert_eq!(s.area(), 16);
        assert!(s.covers(&r(0, 0, 4, 4)));
    }

    #[test]
    fn covers_negative_coordinates() {
        // Ghost rings sit at negative indices; the algebra must not care.
        let s = RectSet::from_rect(r(-1, -1, 6, 6));
        assert!(s.covers(&r(-1, -1, 1, 6)));
        assert!(!s.covers(&r(-2, 0, 1, 1)));
    }

    #[test]
    fn same_cells_ignores_fragmentation() {
        let a = RectSet::from_rect(r(0, 0, 2, 4));
        let b = RectSet::from_rects([r(0, 0, 2, 2), r(0, 2, 2, 2)]);
        assert!(a.same_cells(&b));
        let c = RectSet::from_rects([r(0, 0, 2, 2), r(0, 2, 1, 2)]);
        assert!(!a.same_cells(&c));
    }

    #[test]
    fn largest_returns_biggest_fragment() {
        let mut s = RectSet::new();
        s.insert(r(0, 0, 1, 1));
        s.insert(r(5, 5, 3, 4));
        assert_eq!(s.largest(), Some(r(5, 5, 3, 4)));
        assert_eq!(RectSet::new().largest(), None);
    }

    #[test]
    fn empty_rects_are_ignored() {
        let mut s = RectSet::new();
        s.insert(r(0, 0, 0, 5));
        assert!(s.is_empty());
        s.insert(r(0, 0, 2, 2));
        s.subtract_rect(&r(1, 1, 0, 0));
        assert_eq!(s.area(), 4);
    }
}
