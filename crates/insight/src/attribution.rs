//! Per-scheduler attribution: score one diagnosed run for the
//! scheme × scheduler tournament.
//!
//! A [`SchedulerScore`] condenses a [`crate::RunDiagnosis`] into the
//! judged quantities the `stencil-tournament` bench compares across
//! scheduling policies on one scheme:
//!
//! * **makespan** and its ratio to `analyze`'s static lower bound — how
//!   much of the theoretically available speed the schedule realized;
//! * **daylight** — the inter-task wait along the *realized* critical
//!   path ([`crate::RealizedPath::wait_ns`]): time where the chain that
//!   actually determined the makespan sat waiting rather than computing.
//!   A better dispatch order shrinks daylight without touching any task
//!   cost, which is exactly the lever a scheduler controls;
//! * **occupancy** — mean worker-lane busy fraction (the paper's Fig-10
//!   CPU-occupancy axis).

use crate::RunDiagnosis;
use serde::Serialize;

/// The judged quantities of one (scheme, scheduler) tournament cell.
#[derive(Debug, Clone, Serialize)]
pub struct SchedulerScore {
    /// Stable scheduler name (from `runtime::RunReport::scheduler`).
    pub scheduler: String,
    /// Achieved makespan, seconds.
    pub makespan_s: f64,
    /// `makespan / makespan_lower_bound` — 1.0 is unbeatable.
    pub bound_ratio: f64,
    /// Inter-task wait on the realized critical path, seconds.
    pub daylight_s: f64,
    /// Fraction of the realized critical path spent waiting.
    pub daylight_fraction: f64,
    /// Mean worker-lane occupancy over the run.
    pub occupancy: f64,
}

impl SchedulerScore {
    /// Score a diagnosed run against the scheme's static makespan lower
    /// bound (`analyze::PathStats::makespan_lower_bound`, seconds).
    pub fn from_diagnosis(scheduler: &str, diag: &RunDiagnosis, bound_s: f64) -> Self {
        let makespan_s = diag.achieved_s();
        let (daylight_s, daylight_fraction) = diag
            .critical_path
            .as_ref()
            .map(|p| (p.wait_ns as f64 / 1e9, p.wait_fraction()))
            .unwrap_or((0.0, 0.0));
        SchedulerScore {
            scheduler: scheduler.to_string(),
            makespan_s,
            bound_ratio: if bound_s > 0.0 {
                makespan_s / bound_s
            } else {
                f64::INFINITY
            },
            daylight_s,
            daylight_fraction,
            occupancy: diag.occupancy(),
        }
    }

    /// True when this score strictly improves on `other` in makespan or
    /// occupancy — the tournament's victory condition (a policy that only
    /// reshuffles ties changes neither).
    pub fn beats(&self, other: &SchedulerScore) -> bool {
        self.makespan_s < other.makespan_s || self.occupancy > other.occupancy
    }
}
