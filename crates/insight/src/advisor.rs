//! Step-size advisor: turn measured wait fractions into a concrete `s`
//! recommendation.
//!
//! The paper's central trade (Table 1): raising the communication-
//! avoiding step size `s` cuts message count per timestep window by `1/s`
//! but grows redundant ghost-region flops by `O(s)`. The right `s` is
//! where neither side dominates. This advisor reads the two measured
//! symptoms — the comm-wait fraction from idle-gap attribution and the
//! redundant-flop fraction from the counters — and moves `s` toward the
//! cheaper side, one doubling/halving at a time.

/// What to do with the step size, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepAdvice {
    /// The step size the run used.
    pub current_s: u32,
    /// The recommended step size (equal to `current_s` when balanced).
    pub recommended_s: u32,
    /// Human-readable justification.
    pub reason: String,
}

impl StepAdvice {
    /// True when the advisor recommends keeping the current step size.
    pub fn keep(&self) -> bool {
        self.recommended_s == self.current_s
    }
}

/// Fractions below this are noise: neither doubling nor halving `s`
/// would move the makespan measurably.
const MATERIAL: f64 = 0.05;

/// Dominance margin: only move `s` when one symptom is at least twice
/// the other, so the advisor does not oscillate around the optimum.
const DOMINANCE: f64 = 2.0;

/// Recommend a step size given the run's measured symptoms.
///
/// * `current_s` — the step size the diagnosed run used (`s ≥ 1`);
/// * `max_s` — the largest admissible step (typically the iteration
///   count, or a halo-depth limit);
/// * `comm_wait_fraction` — share of worker lane-time classified
///   [`GapCause::CommWait`](crate::GapCause::CommWait);
/// * `redundant_fraction` — redundant flops over total flops
///   (`redundant / (useful + redundant)`), from the
///   `obs::names::REDUNDANT_FLOPS` counter or
///   [`analyze::FlopStats`].
pub fn advise_step(
    current_s: u32,
    max_s: u32,
    comm_wait_fraction: f64,
    redundant_fraction: f64,
) -> StepAdvice {
    let current_s = current_s.max(1);
    let max_s = max_s.max(1);
    let cw = comm_wait_fraction.max(0.0);
    let rf = redundant_fraction.max(0.0);
    let pct = |x: f64| format!("{:.1}%", x * 100.0);

    if cw > MATERIAL && cw >= DOMINANCE * rf {
        let target = (current_s * 2).min(max_s);
        if target > current_s {
            return StepAdvice {
                current_s,
                recommended_s: target,
                reason: format!(
                    "comm-wait {} dominates redundant work {}: raise s to {} to halve message rounds",
                    pct(cw), pct(rf), target
                ),
            };
        }
        return StepAdvice {
            current_s,
            recommended_s: current_s,
            reason: format!(
                "comm-wait {} dominates but s={} is already at the admissible maximum",
                pct(cw),
                current_s
            ),
        };
    }
    if rf > MATERIAL && rf >= DOMINANCE * cw {
        let target = (current_s / 2).max(1);
        if target < current_s {
            return StepAdvice {
                current_s,
                recommended_s: target,
                reason: format!(
                    "redundant work {} dominates comm-wait {}: lower s to {} to shrink ghost regions",
                    pct(rf), pct(cw), target
                ),
            };
        }
        return StepAdvice {
            current_s,
            recommended_s: current_s,
            reason: format!(
                "redundant work {} dominates but s=1 has no ghost region to shrink",
                pct(rf)
            ),
        };
    }
    StepAdvice {
        current_s,
        recommended_s: current_s,
        reason: format!(
            "comm-wait {} and redundant work {} are balanced: keep s={}",
            pct(cw),
            pct(rf),
            current_s
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_bound_runs_double_s() {
        let a = advise_step(2, 16, 0.30, 0.02);
        assert_eq!(a.recommended_s, 4);
        assert!(a.reason.contains("comm-wait"));
    }

    #[test]
    fn flop_bound_runs_halve_s() {
        let a = advise_step(8, 16, 0.01, 0.25);
        assert_eq!(a.recommended_s, 4);
        assert!(a.reason.contains("redundant"));
    }

    #[test]
    fn balanced_runs_keep_s() {
        let a = advise_step(4, 16, 0.10, 0.09);
        assert!(a.keep());
        // Both symptoms below the noise floor also keeps s.
        assert!(advise_step(4, 16, 0.01, 0.002).keep());
    }

    #[test]
    fn recommendations_respect_bounds() {
        // Comm-bound but already at max_s.
        let a = advise_step(16, 16, 0.5, 0.0);
        assert!(a.keep());
        assert!(a.reason.contains("maximum"));
        // Flop-bound but already at s=1.
        let b = advise_step(1, 16, 0.0, 0.5);
        assert!(b.keep());
        // Degenerate inputs clamp instead of panicking.
        let c = advise_step(0, 0, -1.0, -1.0);
        assert_eq!(c.recommended_s, 1);
    }
}
