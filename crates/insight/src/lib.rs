//! Trace-driven performance diagnosis for stencil runs.
//!
//! The paper's Figure 10 makes its communication-avoiding argument
//! *through observability*: the CA schedule wins by raising CPU occupancy
//! even though its median kernel is slower. This crate turns that style
//! of argument into an automated report. Given a drained [`obs::Trace`]
//! (whose task spans carry `TaskKey::instance_id` stamps) and the
//! statically unfolded task graph ([`runtime::UnfoldedDag`], shared with
//! the `analyze` crate via [`analyze::unfold`]), [`diagnose`] produces a
//! [`RunDiagnosis`]:
//!
//! * **Idle-gap attribution** ([`gaps`]) — every worker-lane gap is
//!   classified as comm-wait, dependency-wait, or starvation by joining
//!   the span that ended the gap back to its predecessors in the DAG;
//! * **Realized critical path** ([`critpath`]) — the longest chain of
//!   spans actually walked by the run, with a per-kind time breakdown,
//!   to compare against `analyze`'s static makespan lower bound;
//! * **Duration histograms** — log-bucketed p50/p90/p99 per kind per
//!   node ([`obs::LogHistogram`]), reproducing the median-kernel-vs-
//!   occupancy story as a first-class report;
//! * **Step-size advice** ([`advisor`]) — a recommended `s` from the
//!   measured comm-wait fraction and redundant-flop counters;
//! * **Regression baselines** ([`baseline`]) — key scalars per scheme,
//!   written and checked with tolerance bands by the `stencil-doctor`
//!   bench binary;
//! * **Scheduler attribution** ([`attribution`]) — a per-policy score
//!   (makespan vs static bound, realized-critical-path "daylight",
//!   occupancy) judging the `stencil-tournament` scheme × scheduler
//!   sweep;
//! * **Starvation split** ([`starvation`]) — live-sample counters from
//!   the work-stealing executors divide starved lane-time into
//!   no-work-anywhere (steal sweeps failed) vs dispatch lag (ready work
//!   sat undelivered);
//! * **Comm-wait link attribution** ([`commwait`]) — comm-wait gaps
//!   aggregated per directed `(src, dst)` link and rendered against the
//!   traffic the traced [`obs::CommMatrix`] saw cross it;
//! * **Causal what-if** ([`whatif`]) — a discrete-event replay of the
//!   realized DAG under perturbed costs (Coz-style virtual speedup),
//!   predicting the makespan effect of faster kernels, a faster fabric,
//!   or a slower injection rate; validated against actual simulator
//!   re-runs by the `stencil-whatif` bench binary.

#![deny(missing_docs)]

pub mod advisor;
pub mod attribution;
pub mod baseline;
pub mod commwait;
pub mod critpath;
pub mod gaps;
pub mod starvation;
pub mod whatif;

#[cfg(test)]
mod tests;

pub use advisor::{advise_step, StepAdvice};
pub use attribution::SchedulerScore;
pub use baseline::{Baseline, SchemeBaseline, Tolerance};
pub use commwait::{CommWaitMap, PeerStall};
pub use critpath::RealizedPath;
pub use gaps::{ClassifiedGap, GapCause, GapTotals};
pub use starvation::{split_starvation, StarvationSplit};
pub use whatif::{Perturbation, Prediction, RankedScenario, WhatIf};

use obs::{DurationSummary, LogHistogram, Trace};
use runtime::UnfoldedDag;
use std::collections::{BTreeMap, HashMap};

/// Internal join of a trace onto an unfolded DAG: `span_of_task[i]` is the
/// index into `trace.spans` of the span recorded for DAG task `i`, and
/// `preds[i]` lists `i`'s predecessor task indices.
pub(crate) struct Join {
    pub span_of_task: Vec<Option<usize>>,
    pub preds: Vec<Vec<usize>>,
    pub joined_spans: usize,
    pub unmatched_task_spans: usize,
}

pub(crate) fn join(trace: &Trace, dag: &UnfoldedDag) -> Join {
    let id_index: HashMap<u64, usize> = dag
        .tasks
        .iter()
        .enumerate()
        .map(|(i, k)| (k.instance_id(), i))
        .collect();
    let mut span_of_task = vec![None; dag.len()];
    let mut joined = 0usize;
    let mut unmatched = 0usize;
    for (si, s) in trace.spans.iter().enumerate() {
        if s.kind == obs::KIND_COMM {
            continue;
        }
        match s.task_instance().and_then(|id| id_index.get(&id)) {
            Some(&ti) => {
                span_of_task[ti] = Some(si);
                joined += 1;
            }
            None => unmatched += 1,
        }
    }
    let mut preds = vec![Vec::new(); dag.len()];
    for e in &dag.edges {
        preds[e.consumer].push(e.producer);
    }
    Join {
        span_of_task,
        preds,
        joined_spans: joined,
        unmatched_task_spans: unmatched,
    }
}

/// Per-kind duration statistics on one node.
#[derive(Debug, Clone)]
pub struct NodeKindSummary {
    /// Node rank.
    pub node: u32,
    /// Trace kind tag.
    pub kind: u32,
    /// Registered kind name (or `comm`/`kindN` fallback).
    pub name: String,
    /// p50/p90/p99 digest of the span durations.
    pub summary: DurationSummary,
}

/// Per-kind duration statistics across all nodes.
#[derive(Debug, Clone)]
pub struct KindSummary {
    /// Trace kind tag.
    pub kind: u32,
    /// Registered kind name (or `comm`/`kindN` fallback).
    pub name: String,
    /// p50/p90/p99 digest of the span durations.
    pub summary: DurationSummary,
}

/// Everything [`diagnose`] established about one run.
#[derive(Debug)]
pub struct RunDiagnosis {
    /// Latest span end — the trace's makespan, nanoseconds.
    pub horizon_ns: u64,
    /// Worker lanes per node assumed for gap extraction.
    pub lanes: u32,
    /// Task spans successfully joined to DAG task instances.
    pub joined_spans: usize,
    /// Task spans carrying no (or an unknown) instance id.
    pub unmatched_spans: usize,
    /// Every classified worker-lane gap.
    pub gaps: Vec<ClassifiedGap>,
    /// Busy/wait totals over all worker lanes.
    pub totals: GapTotals,
    /// The realized critical path; `None` when no span joined to the DAG.
    pub critical_path: Option<RealizedPath>,
    /// Duration digests per `(node, kind)`, ordered by node then kind.
    pub per_node_kinds: Vec<NodeKindSummary>,
    /// Duration digests per kind across nodes, ordered by kind.
    pub per_kind: Vec<KindSummary>,
    /// Spans the tracer dropped on ring overflow instead of recording.
    /// Any nonzero value means the trace under-reports busy time and
    /// every conclusion below is a lower bound on activity.
    pub dropped_events: u64,
}

impl RunDiagnosis {
    /// The achieved makespan in seconds (the trace horizon).
    pub fn achieved_s(&self) -> f64 {
        self.horizon_ns as f64 / 1e9
    }

    /// Mean worker-lane occupancy over all nodes in the trace.
    pub fn occupancy(&self) -> f64 {
        self.totals.occupancy()
    }

    /// The cross-node digest for `kind`, when any span of it was seen.
    pub fn kind_summary(&self, kind: u32) -> Option<&KindSummary> {
        self.per_kind.iter().find(|k| k.kind == kind)
    }

    /// Render the diagnosis as a terminal report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let pct = |x: f64| format!("{:5.1} %", x * 100.0);
        out.push_str(&format!(
            "makespan {:.6} s · occupancy {} over {} lanes/node\n",
            self.achieved_s(),
            pct(self.occupancy()),
            self.lanes
        ));
        out.push_str(&format!(
            "worker time: busy {} · comm-wait {} · dependency-wait {} · starvation {}\n",
            pct(self.totals.busy_fraction()),
            pct(self.totals.comm_wait_fraction()),
            pct(self.totals.dependency_wait_fraction()),
            pct(self.totals.starvation_fraction()),
        ));
        out.push_str(&format!(
            "spans joined to task graph: {} ({} unmatched)\n",
            self.joined_spans, self.unmatched_spans
        ));
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "WARNING: {} spans dropped on tracer ring overflow — busy time is under-reported\n",
                self.dropped_events
            ));
        }
        out.push_str("per-kind durations (all nodes):\n");
        for k in &self.per_kind {
            let s = &k.summary;
            out.push_str(&format!(
                "  {:>10}  n={:<7} p50 {:.3} ms · p90 {:.3} ms · p99 {:.3} ms · max {:.3} ms\n",
                k.name,
                s.count,
                s.p50_ns as f64 / 1e6,
                s.p90_ns as f64 / 1e6,
                s.p99_ns as f64 / 1e6,
                s.max_ns as f64 / 1e6,
            ));
        }
        if let Some(cp) = &self.critical_path {
            out.push_str(&format!(
                "realized critical path: {} tasks, busy {:.6} s, inter-task wait {:.6} s\n",
                cp.tasks,
                cp.busy_ns as f64 / 1e9,
                cp.wait_ns as f64 / 1e9
            ));
            for (kind, ns) in &cp.per_kind_busy_ns {
                let name = cp
                    .kind_names
                    .get(kind)
                    .cloned()
                    .unwrap_or_else(|| format!("kind{kind}"));
                out.push_str(&format!("    {:>10}: {:.6} s\n", name, *ns as f64 / 1e9));
            }
        } else {
            out.push_str("realized critical path: no spans joined to the task graph\n");
        }
        out
    }
}

/// Diagnose a run: join `trace`'s task spans onto `dag`, classify every
/// worker-lane idle gap, extract the realized critical path, and digest
/// span durations per kind per node. `lanes` is the worker-lane count per
/// node (the machine profile's compute threads); spans on lanes at or
/// above it (the comm lane) inform classification but are not themselves
/// attributed. Degenerate inputs (empty trace, spans with no ids) degrade
/// gracefully rather than panic.
pub fn diagnose(trace: &Trace, dag: &UnfoldedDag, lanes: u32) -> RunDiagnosis {
    let lanes = lanes.max(1);
    let horizon_ns = trace.horizon_ns();
    let joined = join(trace, dag);
    let gaps = gaps::classify(trace, dag, &joined, lanes, horizon_ns);
    let totals = gaps::totals(trace, &gaps, lanes, horizon_ns);
    let critical_path = critpath::extract(trace, &joined, horizon_ns);

    let mut per_node: BTreeMap<(u32, u32), LogHistogram> = BTreeMap::new();
    let mut per_kind: BTreeMap<u32, LogHistogram> = BTreeMap::new();
    for s in &trace.spans {
        per_node
            .entry((s.node, s.kind))
            .or_default()
            .record(s.duration_ns());
        per_kind.entry(s.kind).or_default().record(s.duration_ns());
    }
    let name_of = |kind: u32| obs::chrome::kind_name(trace, kind);
    let per_node_kinds = per_node
        .into_iter()
        .map(|((node, kind), h)| NodeKindSummary {
            node,
            kind,
            name: name_of(kind),
            summary: h.summary(),
        })
        .collect();
    let per_kind = per_kind
        .into_iter()
        .map(|(kind, h)| KindSummary {
            kind,
            name: name_of(kind),
            summary: h.summary(),
        })
        .collect();

    RunDiagnosis {
        horizon_ns,
        lanes,
        joined_spans: joined.joined_spans,
        unmatched_spans: joined.unmatched_task_spans,
        gaps,
        totals,
        critical_path,
        per_node_kinds,
        per_kind,
        dropped_events: trace.dropped,
    }
}
