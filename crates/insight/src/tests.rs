//! Unit tests for the diagnosis engine over hand-built traces, where
//! every gap's ground-truth cause is known by construction.

use crate::{diagnose, GapCause};
use obs::{SpanRecord, Trace, KIND_COMM};
use runtime::{FlowData, OutputDep, Params, Program, TaskClass, TaskGraph, TaskKey, UnfoldedDag};
use std::sync::Arc;

/// Two tasks `a(0) → b(1)`; `b` runs on `node_b` so the same class
/// exercises both the local and the cross-node classification rules.
struct Pair {
    node_b: u32,
}

impl TaskClass for Pair {
    fn name(&self) -> &str {
        "pair"
    }
    fn node_of(&self, p: Params) -> u32 {
        if p[0] == 0 {
            0
        } else {
            self.node_b
        }
    }
    fn activation_count(&self, p: Params) -> usize {
        usize::from(p[0] > 0)
    }
    fn num_output_flows(&self, p: Params) -> usize {
        usize::from(p[0] == 0)
    }
    fn outputs(&self, p: Params) -> Vec<OutputDep> {
        if p[0] == 0 {
            vec![OutputDep {
                flow: 0,
                consumer: TaskKey::new(0, [1, 0, 0, 0]),
                slot: 0,
            }]
        } else {
            Vec::new()
        }
    }
    fn execute(&self, p: Params, _inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
        if p[0] == 0 {
            vec![FlowData::sized(8)]
        } else {
            Vec::new()
        }
    }
    fn output_bytes(&self, _p: Params, _flow: usize) -> usize {
        8
    }
    fn cost(&self, _p: Params) -> f64 {
        1e-6
    }
}

fn pair_dag(node_b: u32) -> UnfoldedDag {
    let mut g = TaskGraph::new();
    g.add_class(Arc::new(Pair { node_b }));
    let program = Program {
        graph: Arc::new(g),
        roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
        total_tasks: 2,
    };
    let dag = UnfoldedDag::enumerate(&program);
    assert!(dag.faults.is_empty());
    assert_eq!(dag.len(), 2);
    dag
}

fn key(p0: i32) -> TaskKey {
    TaskKey::new(0, [p0, 0, 0, 0])
}

fn span(node: u32, lane: u32, task: u64, start_ns: u64, end_ns: u64) -> SpanRecord {
    SpanRecord {
        node,
        lane,
        kind: 0,
        start_ns,
        end_ns,
        task,
    }
}

fn comm_span(node: u32, lane: u32, start_ns: u64, end_ns: u64) -> SpanRecord {
    SpanRecord {
        node,
        lane,
        kind: KIND_COMM,
        start_ns,
        end_ns,
        task: SpanRecord::NO_TASK,
    }
}

#[test]
fn empty_trace_degrades_gracefully() {
    let dag = pair_dag(1);
    let d = diagnose(&Trace::default(), &dag, 4);
    assert_eq!(d.horizon_ns, 0);
    assert!(d.gaps.is_empty());
    assert!(d.critical_path.is_none());
    assert_eq!(d.joined_spans, 0);
    assert_eq!(d.occupancy(), 0.0);
    // The report renders without panicking on the degenerate case.
    assert!(d.render().contains("no spans joined"));
}

#[test]
fn single_task_trace_has_no_gaps_and_a_one_task_path() {
    let dag = pair_dag(1);
    let trace = Trace {
        spans: vec![span(0, 0, key(0).instance_id(), 0, 100)],
        ..Trace::default()
    };
    let d = diagnose(&trace, &dag, 1);
    assert_eq!(d.horizon_ns, 100);
    assert_eq!(d.joined_spans, 1);
    assert!(d.gaps.is_empty(), "{:?}", d.gaps);
    let cp = d.critical_path.as_ref().expect("one joined span");
    assert_eq!(cp.tasks, 1);
    assert_eq!(cp.busy_ns, 100);
    assert_eq!(cp.wait_ns, 0);
    assert!((d.occupancy() - 1.0).abs() < 1e-12);
}

#[test]
fn dropped_spans_surface_in_diagnosis_and_report() {
    let dag = pair_dag(1);
    let clean = Trace {
        spans: vec![span(0, 0, key(0).instance_id(), 0, 100)],
        ..Trace::default()
    };
    let d = diagnose(&clean, &dag, 1);
    assert_eq!(d.dropped_events, 0);
    assert!(!d.render().contains("WARNING"));

    let truncated = Trace {
        dropped: 7,
        ..clean
    };
    let d = diagnose(&truncated, &dag, 1);
    assert_eq!(d.dropped_events, 7);
    let report = d.render();
    assert!(report.contains("WARNING: 7 spans dropped"), "{report}");
}

#[test]
fn cross_node_producer_makes_the_gap_comm_wait() {
    let dag = pair_dag(1);
    // a on node 0 finishes at 1000; b on node 1 only starts at 3000 —
    // node 1's lane idled from 0 to 3000 waiting for a's message.
    let trace = Trace {
        spans: vec![
            span(0, 0, key(0).instance_id(), 0, 1000),
            span(1, 0, key(1).instance_id(), 3000, 4000),
        ],
        ..Trace::default()
    };
    let d = diagnose(&trace, &dag, 1);
    let g = d
        .gaps
        .iter()
        .find(|g| g.node == 1 && g.end_ns == 3000)
        .expect("gap before b");
    assert_eq!(g.start_ns, 0);
    assert_eq!(g.cause, GapCause::CommWait);
    assert_eq!(d.totals.comm_wait_ns, 3000);
    // Node 0's lane drains after a: a trailing starvation gap, not
    // comm-wait.
    let t = d
        .gaps
        .iter()
        .find(|g| g.node == 0 && g.start_ns == 1000)
        .expect("trailing gap on node 0");
    assert_eq!(t.cause, GapCause::Starvation);
}

#[test]
fn overlapping_local_producer_makes_the_gap_dependency_wait() {
    let dag = pair_dag(0); // both tasks on node 0
                           // Lane 1 idles from 0 to 1500 while a still runs on lane 0 until
                           // 1000 — a dependency wait, with slack after a's end attributed to
                           // the same gap.
    let trace = Trace {
        spans: vec![
            span(0, 0, key(0).instance_id(), 0, 1000),
            span(0, 1, key(1).instance_id(), 1500, 2500),
        ],
        ..Trace::default()
    };
    let d = diagnose(&trace, &dag, 2);
    let g = d
        .gaps
        .iter()
        .find(|g| g.lane == 1 && g.end_ns == 1500)
        .expect("gap before b");
    assert_eq!(g.cause, GapCause::DependencyWait);
    assert_eq!(d.totals.comm_wait_ns, 0);
}

#[test]
fn local_producer_long_done_means_starvation() {
    let dag = pair_dag(0);
    // a ended at 1000 on the same lane; b only started at 2000. Nothing
    // in the trace explains the 1000 ns hole: scheduler starvation.
    let trace = Trace {
        spans: vec![
            span(0, 0, key(0).instance_id(), 0, 1000),
            span(0, 0, key(1).instance_id(), 2000, 3000),
        ],
        ..Trace::default()
    };
    let d = diagnose(&trace, &dag, 1);
    let g = d
        .gaps
        .iter()
        .find(|g| g.start_ns == 1000 && g.end_ns == 2000)
        .expect("hole between a and b");
    assert_eq!(g.cause, GapCause::Starvation);
}

#[test]
fn unjoined_span_falls_back_to_comm_overlap() {
    let dag = pair_dag(1);
    // The span ending the gap carries no task id; a comm span overlaps
    // the gap, so the wait is attributed to communication.
    let trace = Trace {
        spans: vec![
            span(0, 0, SpanRecord::NO_TASK, 2000, 3000),
            comm_span(0, 1, 500, 1500),
        ],
        ..Trace::default()
    };
    let d = diagnose(&trace, &dag, 1);
    assert_eq!(d.joined_spans, 0);
    assert_eq!(d.unmatched_spans, 1);
    let g = d
        .gaps
        .iter()
        .find(|g| g.end_ns == 2000)
        .expect("leading gap");
    assert_eq!(g.cause, GapCause::CommWait);
    // Without the comm span the same gap reads as starvation.
    let bare = Trace {
        spans: vec![span(0, 0, SpanRecord::NO_TASK, 2000, 3000)],
        ..Trace::default()
    };
    let d2 = diagnose(&bare, &dag, 1);
    let g2 = d2
        .gaps
        .iter()
        .find(|g| g.end_ns == 2000)
        .expect("leading gap");
    assert_eq!(g2.cause, GapCause::Starvation);
}

#[test]
fn realized_path_walks_the_chain_and_measures_daylight() {
    // The analyze doctest program is a 3-task chain on node 0.
    let program = analyze::doctest_program();
    let dag = UnfoldedDag::enumerate(&program);
    assert_eq!(dag.len(), 3);
    let id = |p0: i32| TaskKey::new(0, [p0, 0, 0, 0]).instance_id();
    let trace = Trace {
        spans: vec![
            span(0, 0, id(0), 0, 100),
            span(0, 0, id(1), 150, 300),
            span(0, 0, id(2), 300, 450),
        ],
        ..Trace::default()
    };
    let d = diagnose(&trace, &dag, 1);
    let cp = d.critical_path.expect("chain joined");
    assert_eq!(cp.tasks, 3);
    assert_eq!(cp.busy_ns, 100 + 150 + 150);
    assert_eq!(cp.wait_ns, 50);
    assert_eq!(cp.start_ns, 0);
    assert_eq!(cp.end_ns, 450);
    assert_eq!(cp.task_indices.len(), 3);
    // Chain order is root → sink.
    let first = dag.tasks[cp.task_indices[0]];
    let last = dag.tasks[cp.task_indices[2]];
    assert_eq!(first.params[0], 0);
    assert_eq!(last.params[0], 2);
    assert!((cp.wait_fraction() - 50.0 / 450.0).abs() < 1e-12);
}

#[test]
fn kind_digests_split_by_node_and_use_registered_names() {
    let dag = pair_dag(1);
    let mut trace = Trace {
        spans: vec![
            span(0, 0, key(0).instance_id(), 0, 1000),
            span(1, 0, key(1).instance_id(), 1000, 3000),
            comm_span(1, 1, 500, 900),
        ],
        ..Trace::default()
    };
    trace.kinds.insert(0, "pair".to_string());
    let d = diagnose(&trace, &dag, 1);
    let pair = d.kind_summary(0).expect("task kind digest");
    assert_eq!(pair.name, "pair");
    assert_eq!(pair.summary.count, 2);
    let comm = d.kind_summary(KIND_COMM).expect("comm digest");
    assert_eq!(comm.name, "comm");
    assert_eq!(comm.summary.count, 1);
    // Per-node split: node 0 saw one 1000 ns span of kind 0.
    let n0 = d
        .per_node_kinds
        .iter()
        .find(|k| k.node == 0 && k.kind == 0)
        .expect("node 0 digest");
    assert_eq!(n0.summary.count, 1);
    assert_eq!(n0.summary.max_ns, 1000);
}

#[test]
fn comm_wait_gaps_name_the_stalling_link() {
    let dag = pair_dag(1);
    // a on node 0 ends at 1000; b on node 1 starts at 3000: node 1's
    // lane waited on node 0 — the (0, 1) link stalled it.
    let trace = Trace {
        spans: vec![
            span(0, 0, key(0).instance_id(), 0, 1000),
            span(1, 0, key(1).instance_id(), 3000, 4000),
        ],
        ..Trace::default()
    };
    let d = diagnose(&trace, &dag, 1);
    let g = d
        .gaps
        .iter()
        .find(|g| g.node == 1 && g.cause == GapCause::CommWait)
        .expect("comm-wait gap");
    assert_eq!(g.waiting_on, Some(0));
    let map = crate::CommWaitMap::from_gaps(&d.gaps);
    assert_eq!(map.peers[&(0, 1)].stall_ns, 3000);
    assert_eq!(map.unattributed_ns, 0);
    assert_eq!(map.worst_link().unwrap().0, (0, 1));
    // Joined rendering against a traced matrix names the same link.
    let matrix = obs::CommMatrix::from_msgs(
        &[obs::MsgSpan {
            src: 0,
            dst: 1,
            kind: 0,
            bytes: 8,
            enqueue_ns: 1000,
            inject_ns: 1000,
            deliver_ns: 3000,
        }],
        0,
    );
    let text = map.render(Some(&matrix));
    assert!(text.contains("0 -> 1"), "{text}");
    assert!(text.contains('8'), "bytes column present: {text}");
}

mod whatif_replay {
    use super::*;
    use crate::{Perturbation, WhatIf};
    use machine::MachineProfile;

    /// Hand-built trace for the local pair: a then b, 1000 ns each.
    fn local_pair() -> (UnfoldedDag, Trace) {
        let dag = pair_dag(0);
        let trace = Trace {
            spans: vec![
                span(0, 0, key(0).instance_id(), 0, 1000),
                span(0, 0, key(1).instance_id(), 1000, 2000),
            ],
            ..Trace::default()
        };
        (dag, trace)
    }

    #[test]
    fn local_chain_replays_to_the_sum_of_durations() {
        let (dag, trace) = local_pair();
        let w = WhatIf::new(&trace, &dag, &MachineProfile::nacl(), 1);
        let base = w.baseline();
        assert!(
            (base.makespan_s - 2e-6).abs() < 1e-12,
            "{}",
            base.makespan_s
        );
        // A unity perturbation is exactly the identity.
        assert_eq!(
            w.replay(&[Perturbation::TaskKind {
                kind: 0,
                factor: 1.0
            }]),
            base
        );
        // Halving every kind-0 duration halves the chain.
        let fast = w.replay(&[Perturbation::TaskKind {
            kind: 0,
            factor: 0.5,
        }]);
        assert!(
            (fast.makespan_s - 1e-6).abs() < 1e-12,
            "{}",
            fast.makespan_s
        );
    }

    #[test]
    fn cross_node_replay_charges_the_comm_pipeline() {
        let dag = pair_dag(1);
        let trace = Trace {
            spans: vec![
                span(0, 0, key(0).instance_id(), 0, 1000),
                span(1, 0, key(1).instance_id(), 90_000, 91_000),
            ],
            ..Trace::default()
        };
        let p = MachineProfile::nacl();
        let w = WhatIf::new(&trace, &dag, &p, 2);
        let base = w.baseline();
        // a (1 µs) + send processing + wire + recv processing + b (1 µs):
        // both msg_cost charges dominate on NaCL (40 µs each).
        let net = netsim::NetworkModel::from_profile(&p);
        let expected = 1e-6 + p.runtime_msg_cost + net.transfer_time(8) + p.runtime_msg_cost + 1e-6;
        assert!(
            (base.makespan_s - expected).abs() < 2e-9,
            "replay {} vs pipeline {}",
            base.makespan_s,
            expected
        );
        // Slowing node 0's injection rate stretches the makespan by the
        // extra processing time; node 1's rate change also lands (recv).
        let slow = w.replay(&[Perturbation::Injection {
            node: 0,
            factor: 0.5,
        }]);
        assert!(
            (slow.makespan_s - (expected + p.runtime_msg_cost)).abs() < 2e-9,
            "{}",
            slow.makespan_s
        );
        // Scaling up bandwidth cannot hurt; scaling latency up must hurt.
        let fat = w.replay(&[Perturbation::Link {
            bandwidth: 10.0,
            latency: 1.0,
        }]);
        assert!(fat.makespan_s <= base.makespan_s + 1e-12);
        let laggy = w.replay(&[Perturbation::Link {
            bandwidth: 1.0,
            latency: 10.0,
        }]);
        assert!(laggy.makespan_s > base.makespan_s);
    }

    #[test]
    fn rank_orders_scenarios_by_predicted_speedup() {
        let (dag, trace) = local_pair();
        let w = WhatIf::new(&trace, &dag, &MachineProfile::nacl(), 1);
        let ranked = w.rank(&[
            ("nothing".into(), vec![]),
            (
                "fast kernels".into(),
                vec![Perturbation::TaskKind {
                    kind: 0,
                    factor: 0.5,
                }],
            ),
            (
                "fat network".into(),
                vec![Perturbation::Link {
                    bandwidth: 2.0,
                    latency: 1.0,
                }],
            ),
        ]);
        // The chain is compute-bound and node-local: kernels win, the
        // network is off the critical path entirely.
        assert_eq!(ranked[0].label, "fast kernels");
        assert!(
            (ranked[0].speedup - 2.0).abs() < 1e-9,
            "{}",
            ranked[0].speedup
        );
        assert!((ranked[1].speedup - 1.0).abs() < 1e-12);
        assert!((ranked[2].speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_replay_tracks_a_real_simulated_run() {
        // A 4-node ring of dependent stages, actually run on the
        // simulator; the replay of its drained trace must land within a
        // few percent of the reported makespan.
        use runtime::dtd::DtdBuilder;
        let mut b = DtdBuilder::new();
        let mut prev = b.insert(0, 5e-5, &[]);
        for i in 1..24 {
            prev = b.insert(i % 4, 5e-5, &[prev]);
        }
        let program = b.build();
        let profile = MachineProfile::nacl();
        let cfg = runtime::RunConfig::simulated(profile.clone(), 4).with_trace();
        let r = runtime::run(&program, &cfg);
        let trace = r.trace.expect("traced run");
        let dag = UnfoldedDag::enumerate(&program);
        let w = WhatIf::new(&trace, &dag, &profile, 4);
        let base = w.baseline();
        let rel = (base.makespan_s - r.makespan).abs() / r.makespan;
        assert!(
            rel < 0.02,
            "replay {} vs simulated {} ({:.1} % off)",
            base.makespan_s,
            r.makespan,
            rel * 100.0
        );
    }
}
