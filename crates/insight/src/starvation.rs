//! Splitting starvation with live counters: was there really no work,
//! or did ready work sit undelivered while lanes idled?
//!
//! The trace-driven gap attribution in [`crate::gaps`] can say a lane
//! was starved — no recorded producer explains the idle interval — but
//! it cannot say *why*: the run may genuinely have had nothing runnable
//! (ramp-up, drain, dependency chains elsewhere), or the scheduler may
//! have had ready tasks it failed to hand out fast enough (dispatch
//! lag). The work-stealing executors expose exactly the signal needed
//! to tell these apart: every full steal sweep that finds every peer
//! deque *and* the overflow injector empty bumps the node's cumulative
//! `steal_fails` counter ([`obs::LiveSample::steal_fails`]).
//!
//! [`split_starvation`] walks a run's sample history window by window
//! and splits each window's idle lane-time three ways:
//!
//! * **no-work** — the ready queue was empty at the window's end and
//!   steal sweeps failed during it: workers actively searched and the
//!   node truly had nothing to run;
//! * **dispatch-lag** — ready tasks existed at sample time while lanes
//!   idled: work was available but not yet delivered to a lane (queue
//!   handoff latency, a thin moment in the steal fan-out, or rank-mode
//!   lock contention);
//! * **unattributed** — idle time in windows with neither signal
//!   (simulator samples, which never steal, land here, as does idle
//!   time racing the sampler's instantaneous reads).

use obs::LiveSample;
use std::collections::BTreeMap;

/// Idle lane-time from a run's live-sample history, split by whether
/// work was actually available. Built by [`split_starvation`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StarvationSplit {
    /// Sample windows inspected (across all nodes).
    pub windows: usize,
    /// Idle lane-time, nanoseconds, in windows where steal sweeps came
    /// back empty-handed and no ready task was queued: truly nothing to
    /// run on the node.
    pub no_work_ns: u64,
    /// Idle lane-time, nanoseconds, in windows where ready tasks were
    /// queued while lanes sat idle: work existed but had not reached a
    /// lane.
    pub dispatch_lag_ns: u64,
    /// Idle lane-time with neither signal (no failed steals, no queued
    /// work observed) — includes all simulator samples.
    pub unattributed_ns: u64,
}

impl StarvationSplit {
    /// Total idle lane-time the split covers, nanoseconds.
    pub fn idle_ns(&self) -> u64 {
        self.no_work_ns + self.dispatch_lag_ns + self.unattributed_ns
    }

    /// Fraction of covered idle time that was truly work-free (0 when
    /// no idle time was observed).
    pub fn no_work_fraction(&self) -> f64 {
        self.frac(self.no_work_ns)
    }

    /// Fraction of covered idle time with undelivered ready work.
    pub fn dispatch_lag_fraction(&self) -> f64 {
        self.frac(self.dispatch_lag_ns)
    }

    fn frac(&self, part: u64) -> f64 {
        let total = self.idle_ns();
        if total == 0 {
            0.0
        } else {
            part as f64 / total as f64
        }
    }

    /// One-line terminal rendering of the split.
    pub fn render(&self) -> String {
        format!(
            "starvation split over {} windows: no-work {:.1} % · dispatch-lag {:.1} % · unattributed {:.1} %",
            self.windows,
            100.0 * self.no_work_fraction(),
            100.0 * self.dispatch_lag_fraction(),
            100.0 * self.frac(self.unattributed_ns),
        )
    }
}

/// Split a run's idle lane-time using its live-sample history (pass
/// `Live::history()`). Samples are grouped per node and walked in
/// publication order; each window's idle time is
/// `window_ns × Σ(1 − lane_busy)` and is attributed by the window-end
/// gauges: `ready_depth > 0` → dispatch-lag; otherwise a positive
/// `steal_fails` delta against the node's previous sample → no-work;
/// otherwise unattributed. Returns the zero split on an empty history.
pub fn split_starvation(history: &[LiveSample]) -> StarvationSplit {
    let mut split = StarvationSplit::default();
    // steal_fails is cumulative per node: difference consecutive samples.
    let mut last_fails: BTreeMap<u32, u64> = BTreeMap::new();
    for s in history {
        split.windows += 1;
        // Track the cumulative steal-fail baseline even across degenerate
        // windows, so a later well-formed window differences correctly.
        let prev = last_fails.insert(s.node, s.steal_fails).unwrap_or(0);
        let failed_sweeps = s.steal_fails.saturating_sub(prev);
        // A zero-length window covers no lane-time: nothing to attribute.
        if s.window_ns == 0 {
            continue;
        }
        // A sample with no per-lane data cannot be split by busy fraction.
        // Count one lane's worth of the window explicitly unattributed
        // rather than silently treating the node as fully busy, which
        // would skew the no-work/dispatch-lag fractions upward.
        if s.lane_busy.is_empty() {
            split.unattributed_ns += s.window_ns;
            continue;
        }
        let idle: f64 = s.lane_busy.iter().map(|b| (1.0 - b).clamp(0.0, 1.0)).sum();
        let idle_ns = (idle * s.window_ns as f64).round() as u64;
        if idle_ns == 0 {
            continue;
        }
        if s.ready_depth > 0 {
            split.dispatch_lag_ns += idle_ns;
        } else if failed_sweeps > 0 {
            split.no_work_ns += idle_ns;
        } else {
            split.unattributed_ns += idle_ns;
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: u32, t: u64, busy: Vec<f64>, ready: usize, fails: u64) -> LiveSample {
        LiveSample {
            t_ns: t,
            window_ns: 1_000,
            node,
            lane_busy: busy,
            ready_depth: ready,
            pending_tasks: 0,
            inflight_msgs: 0,
            inflight_bytes: 0,
            dropped_events: 0,
            steals: 0,
            steal_fails: fails,
            overflow_pushes: 0,
        }
    }

    #[test]
    fn empty_history_yields_the_zero_split() {
        let s = split_starvation(&[]);
        assert_eq!(s, StarvationSplit::default());
        assert_eq!(s.no_work_fraction(), 0.0);
    }

    #[test]
    fn ready_work_while_idle_is_dispatch_lag() {
        // Half a lane idle for one window with 3 tasks queued.
        let s = split_starvation(&[sample(0, 1_000, vec![0.5, 1.0], 3, 0)]);
        assert_eq!(s.dispatch_lag_ns, 500);
        assert_eq!(s.no_work_ns, 0);
        assert!((s.dispatch_lag_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failed_steals_with_an_empty_queue_are_no_work() {
        // First window establishes the cumulative baseline (fails=2,
        // delta 2 → no-work); second window has no new failures.
        let h = [
            sample(0, 1_000, vec![0.0], 0, 2),
            sample(0, 2_000, vec![0.0], 0, 2),
        ];
        let s = split_starvation(&h);
        assert_eq!(s.windows, 2);
        assert_eq!(s.no_work_ns, 1_000);
        assert_eq!(s.unattributed_ns, 1_000);
        assert_eq!(s.dispatch_lag_ns, 0);
    }

    #[test]
    fn steal_fail_deltas_are_tracked_per_node() {
        // Node 1's cumulative count must not bleed into node 0's delta.
        let h = [
            sample(0, 1_000, vec![0.0], 0, 0),
            sample(1, 1_000, vec![0.0], 0, 5),
            sample(0, 2_000, vec![0.0], 0, 0), // node 0: still no failures
        ];
        let s = split_starvation(&h);
        assert_eq!(s.no_work_ns, 1_000); // only node 1's window
        assert_eq!(s.unattributed_ns, 2_000);
    }

    #[test]
    fn zero_length_windows_attribute_nothing_but_keep_the_baseline() {
        // A zero-ns window with queued work must not book idle time, and
        // its cumulative steal_fails still advances the node's baseline:
        // the following window's delta is 0, not 5.
        let mut w0 = sample(0, 1_000, vec![0.0], 4, 5);
        w0.window_ns = 0;
        let h = [w0, sample(0, 2_000, vec![0.0], 0, 5)];
        let s = split_starvation(&h);
        assert_eq!(s.windows, 2);
        assert_eq!(s.dispatch_lag_ns, 0, "zero window books no lag");
        assert_eq!(s.no_work_ns, 0, "baseline consumed the 5 fails");
        assert_eq!(s.unattributed_ns, 1_000);
    }

    #[test]
    fn lane_less_samples_land_in_unattributed() {
        // A sample with no per-lane data can't be split by busy fraction;
        // it must surface as unattributed instead of reading as 100% busy
        // (which would skew the no-work/dispatch-lag fractions).
        let h = [
            sample(0, 1_000, vec![], 3, 0),
            sample(0, 2_000, vec![0.0], 2, 0),
        ];
        let s = split_starvation(&h);
        assert_eq!(s.unattributed_ns, 1_000);
        assert_eq!(s.dispatch_lag_ns, 1_000);
        assert!((s.dispatch_lag_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_busy_fractions_clamp() {
        // busy > 1 clamps to fully busy; busy < 0 clamps to fully idle.
        let s = split_starvation(&[sample(0, 1_000, vec![1.7, -0.3], 1, 0)]);
        assert_eq!(s.idle_ns(), 1_000);
        assert_eq!(s.dispatch_lag_ns, 1_000);
    }

    #[test]
    fn busy_lanes_contribute_nothing() {
        let s = split_starvation(&[sample(0, 1_000, vec![1.0, 1.0], 7, 9)]);
        assert_eq!(s.idle_ns(), 0);
        assert_eq!(s.windows, 1);
        assert!(s.render().contains("1 windows"));
    }
}
