//! Bench regression baselines: the scalars a stencil run must reproduce,
//! with tolerance-band comparison.
//!
//! `stencil-doctor --baseline` writes a [`Baseline`] (one
//! [`SchemeBaseline`] per scheduling scheme) to a committed JSON file;
//! `stencil-doctor --check` re-runs the same deterministic simulated
//! configuration and diffs against it. Deviations outside the
//! [`Tolerance`] bands — in *either* direction, so silent improvements
//! get re-baselined instead of rotting — fail the check. Counters
//! (messages, bytes, redundant flops) are exact: the simulated executor
//! is deterministic and `analyze` predicts them statically, so any drift
//! is a real behavior change.

use serde::{Number, Value};
use std::collections::BTreeMap;

/// The recorded scalars for one scheme (e.g. `base`, `ca_s4`).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeBaseline {
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Achieved useful GFLOP/s across the machine.
    pub gflops: f64,
    /// Mean worker-lane occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// Worker lane-time fraction classified comm-wait, in `[0, 1]`.
    pub comm_wait_fraction: f64,
    /// Median task-kernel duration, milliseconds.
    pub median_kernel_ms: f64,
    /// Cross-node messages sent (exact).
    pub messages: u64,
    /// Cross-node bytes sent (exact).
    pub bytes: u64,
    /// Redundant ghost-region flops (exact).
    pub redundant_flops: u64,
}

/// A committed set of per-scheme baselines for one bench configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Baseline {
    /// Human-readable description of the run configuration, compared
    /// verbatim so a baseline is never diffed against a different setup.
    pub config: String,
    /// Scheme name → recorded scalars.
    pub schemes: BTreeMap<String, SchemeBaseline>,
}

/// Allowed deviation bands for [`Baseline::compare`].
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative band for time-like scalars (makespan, GFLOP/s, median
    /// kernel).
    pub rel_time: f64,
    /// Absolute band for fraction-valued scalars (occupancy, comm-wait).
    pub abs_fraction: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rel_time: 0.02,
            abs_fraction: 0.02,
        }
    }
}

fn num(v: f64) -> Value {
    Value::Num(Number::F(v))
}

fn unum(v: u64) -> Value {
    Value::Num(Number::U(v))
}

impl SchemeBaseline {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("makespan_s".into(), num(self.makespan_s)),
            ("gflops".into(), num(self.gflops)),
            ("occupancy".into(), num(self.occupancy)),
            ("comm_wait_fraction".into(), num(self.comm_wait_fraction)),
            ("median_kernel_ms".into(), num(self.median_kernel_ms)),
            ("messages".into(), unum(self.messages)),
            ("bytes".into(), unum(self.bytes)),
            ("redundant_flops".into(), unum(self.redundant_flops)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let f = |name: &str| {
            v.field(name)
                .as_f64()
                .ok_or_else(|| format!("scheme field {name} missing or not a number"))
        };
        let u = |name: &str| {
            v.field(name)
                .as_u64()
                .ok_or_else(|| format!("scheme field {name} missing or not an integer"))
        };
        Ok(SchemeBaseline {
            makespan_s: f("makespan_s")?,
            gflops: f("gflops")?,
            occupancy: f("occupancy")?,
            comm_wait_fraction: f("comm_wait_fraction")?,
            median_kernel_ms: f("median_kernel_ms")?,
            messages: u("messages")?,
            bytes: u("bytes")?,
            redundant_flops: u("redundant_flops")?,
        })
    }
}

impl Baseline {
    /// Serialize to the committed pretty-printed JSON format.
    pub fn to_json(&self) -> String {
        let schemes = self
            .schemes
            .iter()
            .map(|(name, s)| (name.clone(), s.to_value()))
            .collect();
        let v = Value::Object(vec![
            ("config".into(), Value::Str(self.config.clone())),
            ("schemes".into(), Value::Object(schemes)),
        ]);
        let mut text = serde_json::to_string_pretty(&v).expect("baseline serialization");
        text.push('\n');
        text
    }

    /// Parse the committed JSON format back.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("baseline JSON: {e}"))?;
        let config = v
            .field("config")
            .as_str()
            .ok_or("baseline missing config string")?
            .to_string();
        let Value::Object(pairs) = v.field("schemes") else {
            return Err("baseline missing schemes object".into());
        };
        let mut schemes = BTreeMap::new();
        for (name, sv) in pairs {
            let s = SchemeBaseline::from_value(sv).map_err(|e| format!("scheme {name}: {e}"))?;
            schemes.insert(name.clone(), s);
        }
        Ok(Baseline { config, schemes })
    }

    /// Diff `current` against this committed baseline. Returns one line
    /// per violation; empty means the check passes.
    pub fn compare(&self, current: &Baseline, tol: &Tolerance) -> Vec<String> {
        let mut bad = Vec::new();
        if self.config != current.config {
            bad.push(format!(
                "config mismatch: baseline \"{}\" vs current \"{}\" (re-baseline after config changes)",
                self.config, current.config
            ));
            return bad;
        }
        for name in self.schemes.keys() {
            if !current.schemes.contains_key(name) {
                bad.push(format!(
                    "scheme {name} present in baseline but not in current run"
                ));
            }
        }
        for name in current.schemes.keys() {
            if !self.schemes.contains_key(name) {
                bad.push(format!(
                    "scheme {name} produced by current run but absent from baseline"
                ));
            }
        }
        for (name, base) in &self.schemes {
            let Some(cur) = current.schemes.get(name) else {
                continue;
            };
            let mut rel = |field: &str, b: f64, c: f64| {
                let band = tol.rel_time * b.abs().max(f64::MIN_POSITIVE);
                if (c - b).abs() > band {
                    bad.push(format!(
                        "{name}.{field}: {c:.6} deviates from baseline {b:.6} by more than {:.1}%",
                        tol.rel_time * 100.0
                    ));
                }
            };
            rel("makespan_s", base.makespan_s, cur.makespan_s);
            rel("gflops", base.gflops, cur.gflops);
            rel(
                "median_kernel_ms",
                base.median_kernel_ms,
                cur.median_kernel_ms,
            );
            let mut abs = |field: &str, b: f64, c: f64| {
                if (c - b).abs() > tol.abs_fraction {
                    bad.push(format!(
                        "{name}.{field}: {c:.4} deviates from baseline {b:.4} by more than {:.2}",
                        tol.abs_fraction
                    ));
                }
            };
            abs("occupancy", base.occupancy, cur.occupancy);
            abs(
                "comm_wait_fraction",
                base.comm_wait_fraction,
                cur.comm_wait_fraction,
            );
            let mut exact = |field: &str, b: u64, c: u64| {
                if b != c {
                    bad.push(format!(
                        "{name}.{field}: {c} != baseline {b} (exact counter; deterministic run)"
                    ));
                }
            };
            exact("messages", base.messages, cur.messages);
            exact("bytes", base.bytes, cur.bytes);
            exact("redundant_flops", base.redundant_flops, cur.redundant_flops);
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut schemes = BTreeMap::new();
        schemes.insert(
            "base".to_string(),
            SchemeBaseline {
                makespan_s: 1.25,
                gflops: 310.5,
                occupancy: 0.62,
                comm_wait_fraction: 0.21,
                median_kernel_ms: 136.0,
                messages: 1920,
                bytes: 7_864_320,
                redundant_flops: 0,
            },
        );
        schemes.insert(
            "ca_s4".to_string(),
            SchemeBaseline {
                makespan_s: 0.98,
                gflops: 396.1,
                occupancy: 0.81,
                comm_wait_fraction: 0.06,
                median_kernel_ms: 153.0,
                messages: 480,
                bytes: 9_830_400,
                redundant_flops: 123_456,
            },
        );
        Baseline {
            config: "n=4608 tile=288 grid=4x4 iters=10 steps=5 ratio=0.4".to_string(),
            schemes,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let b = sample();
        let text = b.to_json();
        let parsed = Baseline::from_json(&text).unwrap();
        assert_eq!(parsed, b);
        // And the rendered form is stable (committed-file hygiene).
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn identical_runs_pass() {
        let b = sample();
        assert!(b.compare(&sample(), &Tolerance::default()).is_empty());
    }

    #[test]
    fn small_drift_within_band_passes() {
        let b = sample();
        let mut cur = sample();
        let s = cur.schemes.get_mut("base").unwrap();
        s.makespan_s *= 1.015; // within 2% band
        s.occupancy += 0.01; // within 0.02 band
        assert!(b.compare(&cur, &Tolerance::default()).is_empty());
    }

    #[test]
    fn perturbation_beyond_tolerance_fails_both_directions() {
        let b = sample();
        let mut slow = sample();
        slow.schemes.get_mut("base").unwrap().makespan_s *= 1.10;
        let bad = b.compare(&slow, &Tolerance::default());
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("base.makespan_s"));

        let mut fast = sample();
        fast.schemes.get_mut("ca_s4").unwrap().makespan_s *= 0.90;
        assert!(!b.compare(&fast, &Tolerance::default()).is_empty());
    }

    #[test]
    fn counter_drift_is_exact_fail() {
        let b = sample();
        let mut cur = sample();
        cur.schemes.get_mut("ca_s4").unwrap().messages += 1;
        let bad = b.compare(&cur, &Tolerance::default());
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("ca_s4.messages"));
    }

    #[test]
    fn scheme_set_and_config_mismatches_fail() {
        let b = sample();
        let mut cur = sample();
        cur.schemes.remove("ca_s4");
        assert!(!b.compare(&cur, &Tolerance::default()).is_empty());

        let mut other = sample();
        other.config = "different".into();
        assert!(!b.compare(&other, &Tolerance::default()).is_empty());
    }
}
