//! Per-peer comm-wait attribution: *which link* stalled *which lane*.
//!
//! [`crate::gaps`] classifies worker-lane idle time and, for comm waits,
//! names the remote node the lane was waiting on
//! ([`crate::ClassifiedGap::waiting_on`]). This module aggregates those
//! gaps into a directed `(src, dst)` stall matrix — the demand-side
//! complement of the supply-side [`obs::CommMatrix`] built from traced
//! [`obs::MsgSpan`]s — and renders both side by side so a stalled link
//! can be read against the traffic that crossed it.

use crate::{ClassifiedGap, GapCause};
use obs::CommMatrix;
use std::collections::BTreeMap;

/// Stall time one directed link inflicted on the destination's workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStall {
    /// Comm-wait gaps attributed to this link.
    pub gaps: u64,
    /// Worker-lane nanoseconds those gaps cover.
    pub stall_ns: u64,
}

/// Comm-wait time aggregated per directed node pair.
#[derive(Debug, Clone, Default)]
pub struct CommWaitMap {
    /// `(src, dst)` → stall inflicted by messages from `src` on `dst`'s
    /// worker lanes. Ordered for stable rendering.
    pub peers: BTreeMap<(u32, u32), PeerStall>,
    /// Comm-wait nanoseconds whose remote producer could not be
    /// identified (unjoined spans, comm-overlap fallback): real network
    /// wait, unknown link.
    pub unattributed_ns: u64,
}

impl CommWaitMap {
    /// Aggregate the comm-wait gaps of a diagnosis (`RunDiagnosis::gaps`).
    pub fn from_gaps(gaps: &[ClassifiedGap]) -> Self {
        let mut map = CommWaitMap::default();
        for g in gaps {
            if g.cause != GapCause::CommWait {
                continue;
            }
            match g.waiting_on {
                Some(src) => {
                    let p = map.peers.entry((src, g.node)).or_default();
                    p.gaps += 1;
                    p.stall_ns += g.duration_ns();
                }
                None => map.unattributed_ns += g.duration_ns(),
            }
        }
        map
    }

    /// Total attributed stall time, nanoseconds.
    pub fn total_stall_ns(&self) -> u64 {
        self.peers.values().map(|p| p.stall_ns).sum()
    }

    /// The link inflicting the most stall, if any comm wait was seen.
    pub fn worst_link(&self) -> Option<((u32, u32), PeerStall)> {
        self.peers
            .iter()
            .max_by_key(|(_, p)| p.stall_ns)
            .map(|(&k, &p)| (k, p))
    }

    /// Terminal table: per-link stall, joined (when a traced matrix is
    /// given) with the traffic that crossed the link, so "this link
    /// stalled us 40 ms" reads next to "it carried 3 MB at p99 2 ms".
    pub fn render(&self, matrix: Option<&CommMatrix>) -> String {
        let mut out = String::new();
        if self.peers.is_empty() && self.unattributed_ns == 0 {
            out.push_str("comm-wait attribution: no comm-wait gaps\n");
            return out;
        }
        out.push_str("comm-wait attribution (per directed link):\n");
        out.push_str("  src -> dst      gaps     stall ms     msgs        bytes   p99 lat ms\n");
        let mut rows: Vec<_> = self.peers.iter().collect();
        rows.sort_by_key(|(_, p)| std::cmp::Reverse(p.stall_ns));
        for (&(src, dst), p) in rows {
            let (msgs, bytes, p99) = matrix
                .and_then(|m| m.peers.get(&(src, dst)))
                .map(|f| (f.messages, f.bytes, f.latency_summary().p99_ns))
                .unwrap_or((0, 0, 0));
            out.push_str(&format!(
                "  {:>3} -> {:<3} {:>9} {:>12.3} {:>8} {:>12} {:>12.3}\n",
                src,
                dst,
                p.gaps,
                p.stall_ns as f64 / 1e6,
                msgs,
                bytes,
                p99 as f64 / 1e6,
            ));
        }
        if self.unattributed_ns > 0 {
            out.push_str(&format!(
                "  (unknown link) {:>17.3} ms\n",
                self.unattributed_ns as f64 / 1e6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap(node: u32, dur: u64, cause: GapCause, waiting_on: Option<u32>) -> ClassifiedGap {
        ClassifiedGap {
            node,
            lane: 0,
            start_ns: 0,
            end_ns: dur,
            cause,
            waiting_on,
        }
    }

    #[test]
    fn aggregates_by_link_and_separates_unknown() {
        let gaps = [
            gap(1, 100, GapCause::CommWait, Some(0)),
            gap(1, 50, GapCause::CommWait, Some(0)),
            gap(0, 30, GapCause::CommWait, Some(1)),
            gap(0, 7, GapCause::CommWait, None),
            gap(0, 999, GapCause::Starvation, None),
        ];
        let map = CommWaitMap::from_gaps(&gaps);
        assert_eq!(map.peers.len(), 2);
        assert_eq!(
            map.peers[&(0, 1)],
            PeerStall {
                gaps: 2,
                stall_ns: 150
            }
        );
        assert_eq!(
            map.peers[&(1, 0)],
            PeerStall {
                gaps: 1,
                stall_ns: 30
            }
        );
        assert_eq!(map.unattributed_ns, 7);
        assert_eq!(map.total_stall_ns(), 180);
        assert_eq!(map.worst_link().unwrap().0, (0, 1));
        let text = map.render(None);
        assert!(text.contains("0 -> 1"), "{text}");
        assert!(text.contains("unknown link"), "{text}");
    }

    #[test]
    fn empty_map_renders_cleanly() {
        let map = CommWaitMap::from_gaps(&[]);
        assert!(map.worst_link().is_none());
        assert!(map.render(None).contains("no comm-wait gaps"));
    }
}
