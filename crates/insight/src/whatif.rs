//! Causal what-if profiling: replay the *realized* DAG under perturbed
//! costs and predict the end-to-end effect — the Coz idea ("virtual
//! speedup") applied to a task-parallel stencil run.
//!
//! Eyeballing a profile says where time *went*; it cannot say what
//! happens to the makespan if a cost changes, because waits overlap and
//! the critical path moves. [`WhatIf`] answers the causal question
//! directly: it rebuilds the run as a discrete-event replay over the
//! unfolded DAG — realized task durations taken from the drained trace,
//! communication costs from the same LogGP formulas the simulator charges
//! (`runtime_msg_cost` processing on both ends, sender occupancy
//! serializing back-to-back sends, eager/rendezvous transfer time) — and
//! re-runs it under a [`Perturbation`]:
//!
//! * [`Perturbation::TaskKind`] — scale every task of one kind by `f`
//!   ("what if the kernel were 30 % faster?");
//! * [`Perturbation::Link`] — scale network bandwidth and/or latency
//!   ("what if we had Stampede2's fabric?");
//! * [`Perturbation::Injection`] — scale one node's per-message
//!   processing rate ("what if rank 3's comm thread kept up?").
//!
//! The unperturbed replay ([`WhatIf::baseline`]) anchors fidelity: its
//! makespan should land within a few percent of the traced run, and every
//! prediction is a *delta against that replay*, so model error largely
//! cancels. The `stencil-whatif` bench binary validates predictions
//! against actual simulator re-runs and commits the agreement band.

use machine::MachineProfile;
use netsim::NetworkModel;
use obs::Trace;
use runtime::UnfoldedDag;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One hypothetical cost change to replay the run under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// Scale the duration of every task of `kind` by `factor`
    /// (0.7 = 30 % faster kernels).
    TaskKind {
        /// Trace kind tag (see `TaskClass::kind`).
        kind: u32,
        /// Duration multiplier; must be > 0.
        factor: f64,
    },
    /// Scale the interconnect: effective bandwidth by `bandwidth`,
    /// one-way latency by `latency` (2.0 bandwidth = twice the wire
    /// speed; 0.5 latency = half the hop time). Applies to every link —
    /// the fabric is a full crossbar.
    Link {
        /// Bandwidth multiplier; must be > 0.
        bandwidth: f64,
        /// Latency multiplier; must be > 0.
        latency: f64,
    },
    /// Scale `node`'s message-injection rate by `factor`: 0.5 halves the
    /// rate (its comm thread takes twice as long per message), 2.0
    /// doubles it. Models a slow or offloaded communication thread.
    Injection {
        /// The node whose comm processing changes.
        node: u32,
        /// Injection-rate multiplier; must be > 0.
        factor: f64,
    },
}

/// What the replay predicts for one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted end-to-end makespan, seconds.
    pub makespan_s: f64,
    /// Predicted mean worker-lane occupancy over the makespan.
    pub occupancy: f64,
}

/// A labelled scenario with its prediction and speedup vs the baseline
/// replay, as produced by [`WhatIf::rank`].
#[derive(Debug, Clone)]
pub struct RankedScenario {
    /// Human-readable scenario label.
    pub label: String,
    /// The perturbations applied together.
    pub perturbations: Vec<Perturbation>,
    /// Replay outcome under the perturbations.
    pub prediction: Prediction,
    /// `baseline_makespan / predicted_makespan` — > 1 means the change
    /// helps end-to-end, ≈ 1 means the cost was off the critical path.
    pub speedup: f64,
}

/// Replay context built once per (trace, DAG, machine) triple.
pub struct WhatIf {
    durations_ns: Vec<u64>,
    kinds: Vec<u32>,
    node_of: Vec<u32>,
    /// Out-edges per task: `(consumer, bytes)`.
    succs: Vec<Vec<(usize, u64)>>,
    indeg: Vec<usize>,
    nodes: u32,
    lanes: u32,
    comm_engines: usize,
    msg_cost: f64,
    net: NetworkModel,
}

/// Replay events, ordered by (time, sequence).
enum Ev {
    Ready(usize),
    TaskDone(usize),
    /// Sender engine freed on `node`.
    SendDone(u32),
    /// Message for edge → `task` reached `node`'s NIC; queue for receive.
    Arrive {
        node: u32,
        task: usize,
    },
    /// Receive processing done on `node`: deliver to `task`.
    RecvDone {
        node: u32,
        task: usize,
    },
}

#[derive(Clone, Copy)]
enum CommJob {
    Send { dst: u32, task: usize, bytes: u64 },
    Recv { task: usize },
}

impl WhatIf {
    /// Build the replay context: realized durations joined from `trace`
    /// (tasks without a recorded span fall back to their static class
    /// cost), communication parameters from `profile`, topology from the
    /// DAG's node mapping. `nodes` is the run's node count.
    pub fn new(trace: &Trace, dag: &UnfoldedDag, profile: &MachineProfile, nodes: u32) -> Self {
        let join = crate::join(trace, dag);
        let mut durations_ns = Vec::with_capacity(dag.len());
        let mut kinds = Vec::with_capacity(dag.len());
        let mut node_of = Vec::with_capacity(dag.len());
        for (ti, &key) in dag.tasks.iter().enumerate() {
            let class = dag.graph.class(key.class);
            let dur = match join.span_of_task[ti] {
                Some(si) => trace.spans[si].duration_ns(),
                None => (class.cost(key.params) * 1e9).round() as u64,
            };
            durations_ns.push(dur);
            kinds.push(dag.graph.kind_of(key));
            node_of.push(dag.node_of(ti));
        }
        let mut succs = vec![Vec::new(); dag.len()];
        let mut indeg = vec![0usize; dag.len()];
        for e in &dag.edges {
            succs[e.producer].push((e.consumer, e.bytes as u64));
            indeg[e.consumer] += 1;
        }
        WhatIf {
            durations_ns,
            kinds,
            node_of,
            succs,
            indeg,
            nodes,
            lanes: profile.compute_threads(),
            comm_engines: 1,
            msg_cost: profile.runtime_msg_cost,
            net: NetworkModel::from_profile(profile),
        }
    }

    /// Match the run's parallel send engines per node (default 1, the
    /// simulator's default).
    pub fn with_comm_engines(mut self, n: usize) -> Self {
        self.comm_engines = n.max(1);
        self
    }

    /// The unperturbed replay — the model's own account of the run, the
    /// anchor every prediction is a delta against.
    pub fn baseline(&self) -> Prediction {
        self.replay(&[])
    }

    /// Replay the realized DAG under `perturbations` (applied together)
    /// and predict makespan and occupancy.
    pub fn replay(&self, perturbations: &[Perturbation]) -> Prediction {
        // Fold the perturbations into concrete cost tables.
        let mut bw_factor = 1.0f64;
        let mut lat_factor = 1.0f64;
        let mut msg_cost: Vec<f64> = vec![self.msg_cost; self.nodes as usize];
        let mut dur: Vec<f64> = self
            .durations_ns
            .iter()
            .map(|&ns| ns as f64 / 1e9)
            .collect();
        for p in perturbations {
            match *p {
                Perturbation::TaskKind { kind, factor } => {
                    assert!(factor > 0.0, "duration factor must be positive");
                    for (ti, d) in dur.iter_mut().enumerate() {
                        if self.kinds[ti] == kind {
                            *d *= factor;
                        }
                    }
                }
                Perturbation::Link { bandwidth, latency } => {
                    assert!(
                        bandwidth > 0.0 && latency > 0.0,
                        "link factors must be positive"
                    );
                    bw_factor *= bandwidth;
                    lat_factor *= latency;
                }
                Perturbation::Injection { node, factor } => {
                    assert!(factor > 0.0, "injection factor must be positive");
                    let n = node as usize;
                    if n < msg_cost.len() {
                        msg_cost[n] /= factor;
                    }
                }
            }
        }
        // The perturbed interconnect: the same model type the simulator
        // charges, so the formulas cannot drift apart.
        let mut net = self.net.clone();
        net.bandwidth *= bw_factor;
        net.latency *= lat_factor;
        let transfer = |bytes: u64| net.transfer_time(bytes.max(1) as usize);
        let occupancy_of = |bytes: u64| net.sender_occupancy(bytes.max(1) as usize);

        // Discrete-event replay mirroring the simulator's comm pipeline:
        // FIFO ready queues, `lanes` compute lanes per node, per-node
        // send/receive engines charging msg_cost on both ends.
        let n_nodes = self.nodes as usize;
        let mut indeg = self.indeg.clone();
        let mut free_lanes: Vec<u32> = vec![self.lanes; n_nodes];
        let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_nodes];
        let mut comm_free: Vec<usize> = vec![self.comm_engines; n_nodes];
        let mut comm_queue: Vec<VecDeque<CommJob>> = vec![VecDeque::new(); n_nodes];
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut events: Vec<Option<Ev>> = Vec::new();
        let push = |heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
                    events: &mut Vec<Option<Ev>>,
                    t: u64,
                    ev: Ev| {
            let seq = events.len() as u64;
            events.push(Some(ev));
            heap.push(Reverse((t, seq)));
        };
        let ns = |s: f64| (s * 1e9).round() as u64;

        for (ti, d) in indeg.iter().enumerate() {
            if *d == 0 {
                push(&mut heap, &mut events, 0, Ev::Ready(ti));
            }
        }

        let mut makespan = 0u64;
        let mut busy_ns = 0u64;
        while let Some(Reverse((now, seq))) = heap.pop() {
            let ev = events[seq as usize].take().expect("event fired once");
            match ev {
                Ev::Ready(ti) => {
                    let n = self.node_of[ti] as usize;
                    ready[n].push_back(ti);
                    while free_lanes[n] > 0 && !ready[n].is_empty() {
                        let t = ready[n].pop_front().expect("nonempty");
                        free_lanes[n] -= 1;
                        let d = ns(dur[t]);
                        busy_ns += d;
                        push(&mut heap, &mut events, now + d, Ev::TaskDone(t));
                    }
                }
                Ev::TaskDone(ti) => {
                    makespan = makespan.max(now);
                    let n = self.node_of[ti] as usize;
                    free_lanes[n] += 1;
                    for &(c, bytes) in &self.succs[ti] {
                        let dst = self.node_of[c];
                        if dst as usize == n {
                            indeg[c] -= 1;
                            if indeg[c] == 0 {
                                push(&mut heap, &mut events, now, Ev::Ready(c));
                            }
                        } else {
                            comm_queue[n].push_back(CommJob::Send {
                                dst,
                                task: c,
                                bytes,
                            });
                        }
                    }
                    // Dispatch the freed lane and pump queued sends.
                    if let Some(t) = ready[n].pop_front() {
                        free_lanes[n] -= 1;
                        let d = ns(dur[t]);
                        busy_ns += d;
                        push(&mut heap, &mut events, now + d, Ev::TaskDone(t));
                    }
                    self.pump(
                        n,
                        now,
                        &msg_cost,
                        &transfer,
                        &occupancy_of,
                        &mut comm_free,
                        &mut comm_queue,
                        &mut heap,
                        &mut events,
                    );
                }
                Ev::SendDone(node) => {
                    let n = node as usize;
                    comm_free[n] += 1;
                    self.pump(
                        n,
                        now,
                        &msg_cost,
                        &transfer,
                        &occupancy_of,
                        &mut comm_free,
                        &mut comm_queue,
                        &mut heap,
                        &mut events,
                    );
                }
                Ev::Arrive { node, task } => {
                    let n = node as usize;
                    comm_queue[n].push_back(CommJob::Recv { task });
                    self.pump(
                        n,
                        now,
                        &msg_cost,
                        &transfer,
                        &occupancy_of,
                        &mut comm_free,
                        &mut comm_queue,
                        &mut heap,
                        &mut events,
                    );
                }
                Ev::RecvDone { node, task } => {
                    let n = node as usize;
                    comm_free[n] += 1;
                    indeg[task] -= 1;
                    if indeg[task] == 0 {
                        push(&mut heap, &mut events, now, Ev::Ready(task));
                    }
                    self.pump(
                        n,
                        now,
                        &msg_cost,
                        &transfer,
                        &occupancy_of,
                        &mut comm_free,
                        &mut comm_queue,
                        &mut heap,
                        &mut events,
                    );
                }
            }
        }

        let makespan_s = makespan as f64 / 1e9;
        let lane_ns = makespan * self.lanes as u64 * self.nodes as u64;
        Prediction {
            makespan_s,
            occupancy: if lane_ns == 0 {
                0.0
            } else {
                (busy_ns as f64 / lane_ns as f64).min(1.0)
            },
        }
    }

    /// Replay every labelled scenario and rank by predicted speedup
    /// (largest first) against the unperturbed baseline — the "what to
    /// optimize next" table.
    pub fn rank(&self, scenarios: &[(String, Vec<Perturbation>)]) -> Vec<RankedScenario> {
        let base = self.baseline();
        let mut out: Vec<RankedScenario> = scenarios
            .iter()
            .map(|(label, ps)| {
                let prediction = self.replay(ps);
                RankedScenario {
                    label: label.clone(),
                    perturbations: ps.clone(),
                    prediction,
                    speedup: if prediction.makespan_s > 0.0 {
                        base.makespan_s / prediction.makespan_s
                    } else {
                        f64::INFINITY
                    },
                }
            })
            .collect();
        out.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
        out
    }
}

impl WhatIf {
    /// Start queued comm jobs on `node` while engines are free —
    /// the replay twin of the simulator's `pump_comm`.
    #[allow(clippy::too_many_arguments)]
    fn pump(
        &self,
        n: usize,
        now: u64,
        msg_cost: &[f64],
        transfer: &dyn Fn(u64) -> f64,
        occupancy_of: &dyn Fn(u64) -> f64,
        comm_free: &mut [usize],
        comm_queue: &mut [VecDeque<CommJob>],
        heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
        events: &mut Vec<Option<Ev>>,
    ) {
        let ns = |s: f64| (s * 1e9).round() as u64;
        while comm_free[n] > 0 {
            let Some(job) = comm_queue[n].pop_front() else {
                return;
            };
            comm_free[n] -= 1;
            let mut push = |t: u64, ev: Ev| {
                let seq = events.len() as u64;
                events.push(Some(ev));
                heap.push(Reverse((t, seq)));
            };
            match job {
                CommJob::Send { dst, task, bytes } => {
                    let occupancy = msg_cost[n] + occupancy_of(bytes);
                    let arrival = msg_cost[n] + transfer(bytes);
                    push(now + ns(arrival), Ev::Arrive { node: dst, task });
                    push(now + ns(occupancy), Ev::SendDone(n as u32));
                }
                CommJob::Recv { task } => {
                    push(
                        now + ns(msg_cost[n]),
                        Ev::RecvDone {
                            node: n as u32,
                            task,
                        },
                    );
                }
            }
        }
    }
}
