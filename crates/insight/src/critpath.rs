//! Realized critical path: the dependence chain the run actually waited
//! on, reconstructed from dynamic spans.
//!
//! `analyze`'s [`PathStats`](analyze::PathStats) gives the *static* chain
//! under modeled costs. Here the chain is rebuilt from measured spans:
//! start at the last task to finish, hop to the predecessor whose span
//! ended last, repeat to a root. Span time on the chain is "busy";
//! daylight between a predecessor's end and its consumer's start is
//! "wait" (scheduling, queueing, or network transit) — the part of the
//! makespan no kernel speedup can remove.

use crate::Join;
use obs::Trace;
use std::collections::BTreeMap;

/// The chain of spans bounding the measured makespan.
#[derive(Debug, Clone)]
pub struct RealizedPath {
    /// Number of tasks on the chain.
    pub tasks: usize,
    /// DAG task indices on the chain, in execution order.
    pub task_indices: Vec<usize>,
    /// Start of the first span on the chain, nanoseconds.
    pub start_ns: u64,
    /// End of the last span on the chain, nanoseconds.
    pub end_ns: u64,
    /// Time on the chain spent inside task spans.
    pub busy_ns: u64,
    /// Daylight between consecutive chain spans.
    pub wait_ns: u64,
    /// Chain busy time split by span kind.
    pub per_kind_busy_ns: BTreeMap<u32, u64>,
    /// Kind names for rendering, resolved from the trace's registry.
    pub kind_names: BTreeMap<u32, String>,
}

impl RealizedPath {
    /// Fraction of the chain's wall-clock extent spent waiting between
    /// spans rather than computing.
    pub fn wait_fraction(&self) -> f64 {
        let extent = self.end_ns.saturating_sub(self.start_ns);
        if extent == 0 {
            0.0
        } else {
            self.wait_ns as f64 / extent as f64
        }
    }
}

/// Walk the realized critical path backwards from the joined task whose
/// span ends last. Returns `None` when no span joined to the DAG.
pub(crate) fn extract(trace: &Trace, join: &Join, _horizon_ns: u64) -> Option<RealizedPath> {
    let mut cur = (0..join.span_of_task.len())
        .filter(|&ti| join.span_of_task[ti].is_some())
        .max_by_key(|&ti| trace.spans[join.span_of_task[ti].expect("filtered")].end_ns)?;

    let mut chain = Vec::new();
    // The chain length is bounded by the task count; the guard below only
    // protects against a cyclic (already-diagnosed-broken) DAG.
    let mut guard = join.span_of_task.len() + 1;
    loop {
        chain.push(cur);
        guard -= 1;
        let next = join.preds[cur]
            .iter()
            .filter_map(|&p| join.span_of_task[p].map(|si| (p, trace.spans[si].end_ns)))
            .max_by_key(|&(_, end)| end)
            .map(|(p, _)| p);
        match next {
            Some(p) if guard > 0 => cur = p,
            _ => break,
        }
    }
    chain.reverse();

    let mut busy_ns = 0u64;
    let mut wait_ns = 0u64;
    let mut per_kind_busy_ns: BTreeMap<u32, u64> = BTreeMap::new();
    let mut prev_end: Option<u64> = None;
    for &ti in &chain {
        let s = &trace.spans[join.span_of_task[ti].expect("chain tasks are joined")];
        busy_ns += s.duration_ns();
        *per_kind_busy_ns.entry(s.kind).or_default() += s.duration_ns();
        if let Some(pe) = prev_end {
            wait_ns += s.start_ns.saturating_sub(pe);
        }
        prev_end = Some(s.end_ns);
    }
    let first = &trace.spans[join.span_of_task[chain[0]].expect("joined")];
    let last = &trace.spans[join.span_of_task[*chain.last().expect("nonempty")].expect("joined")];
    let kind_names = per_kind_busy_ns
        .keys()
        .map(|&k| (k, obs::chrome::kind_name(trace, k)))
        .collect();
    Some(RealizedPath {
        tasks: chain.len(),
        start_ns: first.start_ns,
        end_ns: last.end_ns,
        busy_ns,
        wait_ns,
        per_kind_busy_ns,
        kind_names,
        task_indices: chain,
    })
}
