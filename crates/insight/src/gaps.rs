//! Idle-gap attribution: classify every worker-lane gap as comm-wait,
//! dependency-wait, or starvation.
//!
//! A gap on `(node, lane)` ends because some task span starts there. That
//! span is joined back to its DAG task instance; the predecessors' spans
//! then explain the wait:
//!
//! * the latest-ending predecessor ran on a **different node** — the lane
//!   was waiting for data to cross the network: **comm-wait**;
//! * the latest predecessor is local but its span **overlaps the gap** —
//!   the lane was waiting for a local dependency: **dependency-wait**;
//! * every predecessor finished before the gap began, yet remote inputs
//!   exist and the node's comm lane was busy during the gap — the message
//!   was still in flight or queued behind the comm engine: **comm-wait**;
//! * otherwise the task was (as far as the trace shows) runnable while
//!   the lane sat idle — scheduling **starvation**. Trailing gaps (no
//!   following span before the horizon) and gaps before spans that could
//!   not be joined to the DAG also land here unless comm activity
//!   overlaps them.

use crate::Join;
use obs::{SpanRecord, Trace, KIND_COMM};
use runtime::UnfoldedDag;
use std::collections::HashMap;

/// Why a worker lane sat idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GapCause {
    /// Waiting on data from another node (network transit, comm-engine
    /// queueing, or a remote predecessor still computing).
    CommWait,
    /// Waiting on a local predecessor task still running.
    DependencyWait,
    /// No recorded producer explains the gap: the scheduler had nothing
    /// for the lane (ramp-up, drain, or load imbalance).
    Starvation,
}

impl std::fmt::Display for GapCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GapCause::CommWait => "comm-wait",
            GapCause::DependencyWait => "dependency-wait",
            GapCause::Starvation => "starvation",
        })
    }
}

/// One classified idle interval on a worker lane.
#[derive(Debug, Clone)]
pub struct ClassifiedGap {
    /// Node rank.
    pub node: u32,
    /// Worker lane on that node.
    pub lane: u32,
    /// Gap start, nanoseconds.
    pub start_ns: u64,
    /// Gap end (start of the next span, or the horizon), nanoseconds.
    pub end_ns: u64,
    /// Attributed cause.
    pub cause: GapCause,
    /// For [`GapCause::CommWait`]: the node the lane was waiting on —
    /// the source end of the stalling link (the latest-ending remote
    /// predecessor's node, or any remote input's node when no producer
    /// span was recorded). `None` for non-comm causes and for comm waits
    /// whose remote producer could not be identified.
    pub waiting_on: Option<u32>,
}

impl ClassifiedGap {
    /// Gap length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Busy/wait time totals over all worker lanes of all traced nodes.
#[derive(Debug, Clone, Copy, Default)]
pub struct GapTotals {
    /// Total lane-time audited: `horizon × lanes × nodes`, nanoseconds.
    pub lane_ns: u64,
    /// Lane-time spent executing task spans.
    pub busy_ns: u64,
    /// Lane-time attributed to [`GapCause::CommWait`].
    pub comm_wait_ns: u64,
    /// Lane-time attributed to [`GapCause::DependencyWait`].
    pub dependency_wait_ns: u64,
    /// Lane-time attributed to [`GapCause::Starvation`].
    pub starvation_ns: u64,
}

impl GapTotals {
    fn frac(&self, part: u64) -> f64 {
        if self.lane_ns == 0 {
            0.0
        } else {
            part as f64 / self.lane_ns as f64
        }
    }

    /// Fraction of audited lane-time spent executing tasks.
    pub fn busy_fraction(&self) -> f64 {
        self.frac(self.busy_ns)
    }

    /// Alias for [`GapTotals::busy_fraction`]: the run's worker occupancy.
    pub fn occupancy(&self) -> f64 {
        self.busy_fraction()
    }

    /// Fraction of audited lane-time waiting on the network.
    pub fn comm_wait_fraction(&self) -> f64 {
        self.frac(self.comm_wait_ns)
    }

    /// Fraction of audited lane-time waiting on local dependencies.
    pub fn dependency_wait_fraction(&self) -> f64 {
        self.frac(self.dependency_wait_ns)
    }

    /// Fraction of audited lane-time with no attributable producer.
    pub fn starvation_fraction(&self) -> f64 {
        self.frac(self.starvation_ns)
    }
}

/// Classify every idle gap on every worker lane (`lane < lanes`) of every
/// node present in `trace`.
pub(crate) fn classify(
    trace: &Trace,
    dag: &UnfoldedDag,
    join: &Join,
    lanes: u32,
    horizon_ns: u64,
) -> Vec<ClassifiedGap> {
    // Invert the task→span join so the span ending a gap can be looked up
    // by its position in `trace.spans`.
    let mut task_of_span: HashMap<usize, usize> = HashMap::new();
    for (ti, si) in join.span_of_task.iter().enumerate() {
        if let Some(si) = *si {
            task_of_span.insert(si, ti);
        }
    }
    // Spans indexed by (node, lane, start) to find the one ending a gap,
    // and comm spans per node for the in-flight fallback.
    let mut span_at: HashMap<(u32, u32, u64), usize> = HashMap::new();
    let mut comm_spans: HashMap<u32, Vec<&SpanRecord>> = HashMap::new();
    for (si, s) in trace.spans.iter().enumerate() {
        if s.kind == KIND_COMM {
            comm_spans.entry(s.node).or_default().push(s);
        } else {
            span_at.insert((s.node, s.lane, s.start_ns), si);
        }
    }
    let comm_overlaps = |node: u32, from: u64, to: u64| {
        comm_spans
            .get(&node)
            .is_some_and(|v| v.iter().any(|c| c.start_ns < to && c.end_ns > from))
    };

    let mut out = Vec::new();
    for node in trace.nodes() {
        for lane in 0..lanes {
            for (start_ns, end_ns) in trace.idle_gaps(node, lane, horizon_ns) {
                if end_ns <= start_ns {
                    continue;
                }
                let (cause, waiting_on) = match span_at.get(&(node, lane, end_ns)) {
                    // trailing gap: the lane drained
                    None => (GapCause::Starvation, None),
                    Some(&si) => match task_of_span.get(&si) {
                        // The span never joined to a DAG instance; fall
                        // back to comm-lane overlap as the only signal.
                        None => {
                            if comm_overlaps(node, start_ns, end_ns) {
                                (GapCause::CommWait, None)
                            } else {
                                (GapCause::Starvation, None)
                            }
                        }
                        Some(&ti) => {
                            attribute(trace, dag, join, ti, node, start_ns, end_ns, &comm_overlaps)
                        }
                    },
                };
                out.push(ClassifiedGap {
                    node,
                    lane,
                    start_ns,
                    end_ns,
                    cause,
                    waiting_on,
                });
            }
        }
    }
    out
}

/// Attribute the gap `(start_ns, end_ns)` on `node` that ended when DAG
/// task `ti` started, using its predecessors' recorded spans. Returns the
/// cause plus, for comm waits, the remote node the lane was waiting on.
#[allow(clippy::too_many_arguments)]
fn attribute(
    trace: &Trace,
    dag: &UnfoldedDag,
    join: &Join,
    ti: usize,
    node: u32,
    start_ns: u64,
    end_ns: u64,
    comm_overlaps: &dyn Fn(u32, u64, u64) -> bool,
) -> (GapCause, Option<u32>) {
    let mut latest: Option<&SpanRecord> = None;
    let mut latest_remote: Option<&SpanRecord> = None;
    let mut any_remote: Option<u32> = None;
    for &p in &join.preds[ti] {
        let p_node = dag.node_of(p);
        if p_node != node && any_remote.is_none() {
            any_remote = Some(p_node);
        }
        if let Some(si) = join.span_of_task[p] {
            let s = &trace.spans[si];
            if latest.is_none_or(|l| s.end_ns > l.end_ns) {
                latest = Some(s);
            }
            if s.node != node && latest_remote.is_none_or(|l| s.end_ns > l.end_ns) {
                latest_remote = Some(s);
            }
        }
    }
    // The link at fault: the latest-ending remote producer's node when
    // one was recorded, otherwise any statically remote input's node.
    let remote_src = latest_remote.map(|s| s.node).or(any_remote);
    let Some(latest) = latest else {
        // Root task, or no predecessor span recorded: nothing to wait on.
        return (GapCause::Starvation, None);
    };
    if latest.node != node {
        return (GapCause::CommWait, Some(latest.node));
    }
    // All recorded predecessors are local. If remote inputs exist and the
    // comm engine was active after the last local producer finished, the
    // remaining wait was for a message.
    if any_remote.is_some() && comm_overlaps(node, latest.end_ns.max(start_ns), end_ns) {
        return (GapCause::CommWait, remote_src);
    }
    if latest.end_ns > start_ns {
        (GapCause::DependencyWait, None)
    } else if any_remote.is_some() {
        // Remote inputs with no comm-span evidence left: still network.
        (GapCause::CommWait, remote_src)
    } else {
        (GapCause::Starvation, None)
    }
}

/// Aggregate busy/wait totals: busy time is measured directly from worker
/// spans, wait time from the classified gaps.
pub(crate) fn totals(
    trace: &Trace,
    gaps: &[ClassifiedGap],
    lanes: u32,
    horizon_ns: u64,
) -> GapTotals {
    let nodes = trace.nodes();
    let mut t = GapTotals {
        lane_ns: horizon_ns * lanes as u64 * nodes.len() as u64,
        ..GapTotals::default()
    };
    for g in gaps {
        match g.cause {
            GapCause::CommWait => t.comm_wait_ns += g.duration_ns(),
            GapCause::DependencyWait => t.dependency_wait_ns += g.duration_ns(),
            GapCause::Starvation => t.starvation_ns += g.duration_ns(),
        }
    }
    t.busy_ns = t
        .lane_ns
        .saturating_sub(t.comm_wait_ns + t.dependency_wait_ns + t.starvation_ns);
    t
}
