//! Counter/gauge registry: named atomic instruments shared across the
//! threads of a run, snapshotted once at the end.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Canonical instrument names, so the three executors and the bench
/// harness agree on spelling.
pub mod names {
    /// Counter: tasks executed to completion.
    pub const TASKS_EXECUTED: &str = "tasks_executed";
    /// Counter: messages sent between nodes.
    pub const MESSAGES_SENT: &str = "messages_sent";
    /// Counter: payload bytes sent between nodes.
    pub const BYTES_SENT: &str = "bytes_sent";
    /// Counter: redundant flops performed by communication-avoiding tasks.
    pub const REDUNDANT_FLOPS: &str = "redundant_flops";
    /// Counter: tasks executed by a worker other than the one that
    /// activated them (work stealing / shared-queue migration).
    pub const STEALS: &str = "steals";
    /// Counter: full steal sweeps (own deque + injector + every victim)
    /// that found no work — the "no work anywhere" starvation signal.
    pub const STEAL_FAILS: &str = "steal_fails";
    /// Counter: local-deque pushes that found the ring full and spilled
    /// the task to the shared injector queue.
    pub const OVERFLOW_PUSHES: &str = "overflow_pushes";
    /// Counter: task activations delivered through the pending table.
    pub const ACTIVATIONS: &str = "activations";
    /// Gauge: ready-queue depth (its max is the high-water mark).
    pub const QUEUE_DEPTH: &str = "queue_depth";
}

/// A monotonically increasing atomic counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct GaugeInner {
    current: AtomicI64,
    max: AtomicI64,
}

/// An atomic gauge tracking a current value and its high-water mark.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Move the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        let now = self.0.current.fetch_add(delta, Ordering::Relaxed) + delta;
        self.0.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Set the gauge to `value`.
    pub fn set(&self, value: i64) {
        self.0.current.store(value, Ordering::Relaxed);
        self.0.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.current.load(Ordering::Relaxed)
    }

    /// Highest value ever set or reached.
    pub fn max(&self) -> i64 {
        self.0.max.load(Ordering::Relaxed)
    }
}

/// Snapshot of one gauge: current value and high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Value at snapshot time.
    pub current: i64,
    /// Highest value reached during the run.
    pub max: i64,
}

/// Immutable snapshot of every instrument in a [`Metrics`] registry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → (current, max).
    pub gauges: BTreeMap<String, GaugeValue>,
}

impl MetricsSnapshot {
    /// Value of a counter, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// High-water mark of a gauge, zero when absent.
    pub fn gauge_max(&self, name: &str) -> i64 {
        self.gauges.get(name).map(|g| g.max).unwrap_or(0)
    }

    /// Check this snapshot against statically predicted counter values
    /// (e.g. from the `analyze` crate). Returns one human-readable line
    /// per mismatching counter; an empty vector means every predicted
    /// counter matched exactly. Counters the prediction does not mention
    /// are ignored.
    pub fn verify(&self, expected: &ExpectedCounters) -> Vec<String> {
        expected
            .counters
            .iter()
            .filter(|&(name, &want)| self.counter(name) != want)
            .map(|(name, &want)| {
                format!("{name}: predicted {want}, observed {}", self.counter(name))
            })
            .collect()
    }
}

/// Statically predicted counter values: the contract a static analysis
/// makes about what a dynamic run must observe. Built by the `analyze`
/// crate, checked with [`MetricsSnapshot::verify`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpectedCounters {
    /// Counter name → predicted exact value.
    pub counters: BTreeMap<String, u64>,
}

impl ExpectedCounters {
    /// Empty prediction (verifies against anything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or overwrite) a predicted counter value.
    pub fn expect(mut self, name: &str, value: u64) -> Self {
        self.counters.insert(name.to_string(), value);
        self
    }

    /// Predicted value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
}

/// A registry of named instruments. Clone it freely — all clones share
/// the same instruments, and `counter`/`gauge` return cheap handles that
/// threads keep and bump without touching the registry again.
#[derive(Clone)]
pub struct Metrics {
    registry: Arc<Registry>,
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Self {
        Metrics {
            registry: Arc::new(Registry {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_insert_with(|| {
                Gauge(Arc::new(GaugeInner {
                    current: AtomicI64::new(0),
                    max: AtomicI64::new(0),
                }))
            })
            .clone()
    }

    /// Snapshot every instrument registered so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .registry
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .registry
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, g)| {
                (
                    name.clone(),
                    GaugeValue {
                        current: g.get(),
                        max: g.max(),
                    },
                )
            })
            .collect();
        MetricsSnapshot { counters, gauges }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let m = Metrics::new();
        let a = m.counter(names::MESSAGES_SENT);
        let b = m.clone().counter(names::MESSAGES_SENT);
        a.inc();
        b.add(4);
        assert_eq!(m.snapshot().counter(names::MESSAGES_SENT), 5);
        assert_eq!(m.snapshot().counter("never_touched"), 0);
    }

    #[test]
    fn gauge_tracks_high_water_mark() {
        let m = Metrics::new();
        let g = m.gauge(names::QUEUE_DEPTH);
        g.add(3);
        g.add(4);
        g.add(-6);
        let snap = m.snapshot();
        assert_eq!(snap.gauges[names::QUEUE_DEPTH].current, 1);
        assert_eq!(snap.gauge_max(names::QUEUE_DEPTH), 7);
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = m.counter("hits");
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counter("hits"), 80_000);
    }

    #[test]
    fn verify_reports_only_mismatches() {
        let m = Metrics::new();
        m.counter(names::TASKS_EXECUTED).add(8);
        m.counter(names::MESSAGES_SENT).add(3);
        let snap = m.snapshot();
        let ok = ExpectedCounters::new()
            .expect(names::TASKS_EXECUTED, 8)
            .expect(names::MESSAGES_SENT, 3);
        assert!(snap.verify(&ok).is_empty());
        assert_eq!(ok.get(names::TASKS_EXECUTED), Some(8));
        let bad = ok.expect(names::BYTES_SENT, 100);
        let report = snap.verify(&bad);
        assert_eq!(report.len(), 1);
        assert!(report[0].contains("bytes_sent"), "{}", report[0]);
        assert!(report[0].contains("predicted 100"), "{}", report[0]);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let m = Metrics::new();
        m.counter(names::BYTES_SENT).add(u64::MAX - 7);
        m.gauge(names::QUEUE_DEPTH).set(-3);
        let snap = m.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter(names::BYTES_SENT), u64::MAX - 7);
    }
}
