//! Loom model tests for the SPSC telemetry ring.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (see `ci.sh`). With the
//! real `loom` crate these closures run under every schedulable
//! interleaving of the producer and consumer; with the vendored stub they
//! run once as plain threaded smoke tests. They pin down the three
//! properties the streaming pipeline leans on:
//!
//! * FIFO conservation: every pushed span is popped exactly once, in
//!   order, across wrap-around.
//! * Overflow-drop: a full ring rejects the push (drop-newest) and counts
//!   it — it never corrupts or evicts consumer-visible spans.
//! * The drop counter plus the survivors always account for every push.

use crate::ring::spsc;
use crate::SpanRecord;
use loom::thread;

fn span(i: u64) -> SpanRecord {
    SpanRecord {
        node: 0,
        lane: 0,
        kind: 0,
        start_ns: i,
        end_ns: i + 1,
        task: SpanRecord::NO_TASK,
    }
}

#[test]
fn spsc_conserves_spans_across_wraparound() {
    loom::model(|| {
        // Capacity 2 with 5 pushes forces wrap-around; the consumer pops
        // concurrently so the interleaving decides how many survive.
        let (p, mut c) = spsc(2);
        let total = 5u64;
        let producer = thread::spawn(move || {
            for i in 0..total {
                p.push(span(i));
            }
        });
        let mut seen = Vec::new();
        // Concurrent pops, bounded so loom's state space stays small;
        // whatever remains is drained after the join, when everything the
        // producer did is visible.
        for _ in 0..8 {
            if let Some(s) = c.pop() {
                seen.push(s.start_ns);
            } else {
                thread::yield_now();
            }
        }
        producer.join().unwrap();
        while let Some(s) = c.pop() {
            seen.push(s.start_ns);
        }
        assert_eq!(c.attempts(), total);
        assert_eq!(
            seen.len() as u64 + c.dropped(),
            total,
            "survivors + drops account for every push"
        );
        // FIFO among survivors: strictly increasing ids.
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "order kept: {seen:?}");
    });
}

#[test]
fn overflow_drops_newest_without_corruption() {
    loom::model(|| {
        let (p, mut c) = spsc(2);
        assert!(p.push(span(0)));
        assert!(p.push(span(1)));
        // Ring full, no consumer progress: pushes must fail cleanly.
        assert!(!p.push(span(2)));
        assert_eq!(p.dropped(), 1);
        // The survivors are the oldest spans, unperturbed.
        assert_eq!(c.pop().unwrap().start_ns, 0);
        assert_eq!(c.pop().unwrap().start_ns, 1);
        assert!(c.pop().is_none());
        // Freed capacity is reusable.
        assert!(p.push(span(3)));
        assert_eq!(c.pop().unwrap().start_ns, 3);
        assert_eq!(c.attempts(), 4);
    });
}

#[test]
fn quiesced_producer_reports_not_recording() {
    loom::model(|| {
        let (p, c) = spsc(4);
        let producer = thread::spawn(move || {
            for i in 0..3u64 {
                p.push(span(i));
            }
        });
        producer.join().unwrap();
        // After join the quiesce witness must read false — this is what
        // Recorder::drain's debug assertion relies on.
        assert!(!c.producer_recording());
    });
}
