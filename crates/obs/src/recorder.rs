//! Span recording: per-thread lock-free ring buffers of timestamped
//! activity spans, streamed into a collector store and drained into an
//! analyzable [`Trace`].
//!
//! # Streaming architecture
//!
//! Every recording thread ([`LocalRecorder`]) owns the producer half of a
//! bounded SPSC ring ([`crate::ring`]); the shared [`Recorder`] keeps the
//! consumer halves plus a central **store** of already-collected spans.
//! Recording is wait-free: a full ring drops the span and counts it
//! instead of blocking the worker. Collection ([`Recorder::collect`], or
//! the periodic samplers the executors run) moves ring contents into the
//! store while producers keep recording, which is what makes live
//! telemetry possible — the store can be observed mid-run, not only after
//! the run returns.
//!
//! # The quiesce contract
//!
//! [`Recorder::drain`] promises a *complete* trace, so it must only be
//! called once every producer has quiesced (worker threads joined, the
//! simulator dropped its handle). Collection itself is safe concurrently
//! with live producers — the SPSC protocol guarantees that — but a drain
//! racing a producer would silently miss the spans still being written.
//! `drain` therefore carries a debug assertion that no producer is
//! mid-record; executors uphold the contract by draining only after
//! joining their worker scope. Use [`Recorder::with_collected`] for live
//! (possibly incomplete) views during a run.

use crate::ring::{self, RingConsumer, RingProducer};
use crate::MsgSpan;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One recorded activity: a half-open interval `[start_ns, end_ns)` of
/// `kind` running on `lane` of `node`. Timestamps are nanoseconds on
/// whichever clock the producer used (wall or virtual); analysis is
/// clock-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Node rank the activity ran on.
    pub node: u32,
    /// Execution lane within the node (worker index, or the comm lane).
    pub lane: u32,
    /// Activity class: a task-class kind, or [`crate::KIND_COMM`].
    pub kind: u32,
    /// Inclusive start, nanoseconds.
    pub start_ns: u64,
    /// Exclusive end, nanoseconds.
    pub end_ns: u64,
    /// Task-instance id (the runtime's `TaskKey::instance_id` hash)
    /// joining this span to the statically unfolded task graph, or
    /// [`SpanRecord::NO_TASK`] for spans with no task identity (comm
    /// activity, foreign traces).
    pub task: u64,
}

impl SpanRecord {
    /// Sentinel `task` value for spans not tied to a task instance.
    pub const NO_TASK: u64 = u64::MAX;

    /// Span length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// The task-instance id, when one was stamped.
    pub fn task_instance(&self) -> Option<u64> {
        (self.task != Self::NO_TASK).then_some(self.task)
    }
}

/// Wall-clock nanosecond source anchored at construction, so wall-clock
/// executors produce the same "nanoseconds since run start" timeline the
/// simulator produces natively.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Anchor the clock now.
    pub fn start() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the anchor.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::start()
    }
}

/// The measured cost of the tracer itself over one run: how many events
/// were recorded, what one record costs on this machine (calibrated once
/// per process), and the lane time the total is compared against.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TracerOverhead {
    /// Record attempts over the run (dropped events included — their cost
    /// is paid regardless).
    pub events: u64,
    /// Calibrated cost of one record on this machine, nanoseconds.
    pub per_event_ns: f64,
    /// Estimated total instrumentation time: `events × per_event_ns`.
    pub total_ns: u64,
    /// Total worker-lane time of the run (`horizon × lanes × nodes`),
    /// nanoseconds, on the engine's clock.
    pub lane_time_ns: u64,
}

impl TracerOverhead {
    /// Instrumentation time as a fraction of lane time (0 when lane time
    /// is 0). The executors' budget for this is
    /// [`TracerOverhead::BUDGET_FRACTION`].
    pub fn fraction(&self) -> f64 {
        if self.lane_time_ns == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.lane_time_ns as f64
        }
    }

    /// The tracer self-overhead budget asserted by `ci.sh`'s
    /// `stencil-top --once` smoke: 2% of total lane time.
    pub const BUDGET_FRACTION: f64 = 0.02;

    /// True when the measured overhead stays under the budget.
    pub fn within_budget(&self) -> bool {
        self.fraction() < Self::BUDGET_FRACTION
    }
}

/// Calibrate the per-event record cost once per process: time a burst of
/// records into a scratch ring. The result feeds every
/// [`TracerOverhead`] this process reports.
pub fn per_event_cost_ns() -> f64 {
    static COST: OnceLock<f64> = OnceLock::new();
    *COST.get_or_init(|| {
        let (producer, _consumer) = ring::spsc(1 << 13);
        let n = 4096u64;
        let start = Instant::now();
        for i in 0..n {
            producer.push(SpanRecord {
                node: 0,
                lane: 0,
                kind: 0,
                start_ns: i,
                end_ns: i + 1,
                task: SpanRecord::NO_TASK,
            });
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        (elapsed / n as f64).max(1.0)
    })
}

struct Shared {
    /// Consumer halves of every registered lane, taken by collection.
    lanes: Mutex<Vec<RingConsumer<SpanRecord>>>,
    /// Spans already moved out of the rings. Grows monotonically; `drain`
    /// is a sorted view over it, so draining twice yields the same spans.
    store: Mutex<Vec<SpanRecord>>,
    /// Consumer halves of the per-thread message-span lanes.
    msg_lanes: Mutex<Vec<RingConsumer<MsgSpan>>>,
    /// Message spans already moved out of the rings (monotonic, like
    /// `store`).
    msg_store: Mutex<Vec<MsgSpan>>,
    kinds: Mutex<BTreeMap<u32, String>>,
    /// Drops by producers whose lane has already been deregistered (none
    /// today, kept for forward-compat) plus a scratch counter for the
    /// disabled recorder.
    dropped_extra: AtomicU64,
    capacity: usize,
    enabled: bool,
}

/// Span recorder shared by all threads of a run. Clone it freely; all
/// clones feed the same store.
///
/// Each recording thread obtains its own [`LocalRecorder`] via
/// [`Recorder::local`], writing into a private lock-free SPSC ring — the
/// hot path takes no lock and never blocks; cross-thread coordination
/// happens only at registration and collection time.
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Recorder {
    /// Default per-thread capacity: 64 Ki spans (~2.6 MB/thread). The
    /// collector drains lanes continuously, so only spans in flight
    /// between two collections must fit — far fewer than this for every
    /// workload in the workspace. Kept modest so eagerly allocating one
    /// ring per worker does not delay thread start-up.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Recorder with the default per-thread ring capacity.
    pub fn new() -> Self {
        Recorder::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Recorder whose per-thread rings hold at most `capacity` in-flight
    /// spans (rounded up to a power of two). A span pushed into a full
    /// ring is dropped and counted, never blocked on.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                lanes: Mutex::new(Vec::new()),
                store: Mutex::new(Vec::new()),
                msg_lanes: Mutex::new(Vec::new()),
                msg_store: Mutex::new(Vec::new()),
                kinds: Mutex::new(BTreeMap::new()),
                dropped_extra: AtomicU64::new(0),
                capacity: capacity.max(1),
                enabled: true,
            }),
        }
    }

    /// Recorder that discards everything — for runs with tracing off, so
    /// call sites need no conditionals.
    pub fn disabled() -> Self {
        Recorder {
            shared: Arc::new(Shared {
                lanes: Mutex::new(Vec::new()),
                store: Mutex::new(Vec::new()),
                msg_lanes: Mutex::new(Vec::new()),
                msg_store: Mutex::new(Vec::new()),
                kinds: Mutex::new(BTreeMap::new()),
                dropped_extra: AtomicU64::new(0),
                capacity: 1,
                enabled: false,
            }),
        }
    }

    /// Whether spans are being kept.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled
    }

    /// Obtain a per-thread recording handle (one producer lane).
    pub fn local(&self) -> LocalRecorder {
        if !self.shared.enabled {
            return LocalRecorder { producer: None };
        }
        let (producer, consumer) = ring::spsc(self.shared.capacity);
        self.shared
            .lanes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(consumer);
        LocalRecorder {
            producer: Some(producer),
        }
    }

    /// Obtain a per-thread message-recording handle (one msg-span lane on
    /// its own SPSC ring, same capacity and drop-newest policy as the
    /// span lanes).
    pub fn msg_local(&self) -> MsgRecorder {
        if !self.shared.enabled {
            return MsgRecorder { producer: None };
        }
        let (producer, consumer) = ring::spsc(self.shared.capacity);
        self.shared
            .msg_lanes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(consumer);
        MsgRecorder {
            producer: Some(producer),
        }
    }

    /// Associate a human-readable name with a kind tag (idempotent).
    pub fn register_kind(&self, kind: u32, name: &str) {
        self.shared
            .kinds
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(kind)
            .or_insert_with(|| name.to_string());
    }

    /// Move everything currently visible in the lane rings into the
    /// store. Safe to call while producers are live (the collector thread
    /// does, at its cadence); spans still being written simply show up at
    /// the next collection.
    pub fn collect(&self) {
        let mut lanes = self.shared.lanes.lock().unwrap_or_else(|e| e.into_inner());
        let mut store = self.shared.store.lock().unwrap_or_else(|e| e.into_inner());
        for lane in lanes.iter_mut() {
            lane.drain_into(&mut store);
        }
        drop((lanes, store));
        let mut msg_lanes = self
            .shared
            .msg_lanes
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut msg_store = self
            .shared
            .msg_store
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for lane in msg_lanes.iter_mut() {
            lane.drain_into(&mut msg_store);
        }
    }

    /// Collect, then run `f` over the store — the live view the samplers
    /// use mid-run. The store is unsorted and may be incomplete (spans
    /// mid-record appear at a later collection).
    pub fn with_collected<R>(&self, f: impl FnOnce(&[SpanRecord]) -> R) -> R {
        self.collect();
        let store = self.shared.store.lock().unwrap_or_else(|e| e.into_inner());
        f(&store)
    }

    /// Spans dropped so far because a lane ring was full.
    pub fn dropped(&self) -> u64 {
        let lanes = self.shared.lanes.lock().unwrap_or_else(|e| e.into_inner());
        lanes.iter().map(|l| l.dropped()).sum::<u64>()
            + self.shared.dropped_extra.load(Ordering::Relaxed)
    }

    /// Message spans dropped so far because a msg-lane ring was full.
    pub fn dropped_msgs(&self) -> u64 {
        let lanes = self
            .shared
            .msg_lanes
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        lanes.iter().map(|l| l.dropped()).sum()
    }

    /// Per-lane drop counts — span lanes first, then msg lanes, in
    /// registration order. The overflow-accounting tests reconcile the
    /// trace against these.
    pub fn dropped_per_lane(&self) -> Vec<u64> {
        let lanes = self.shared.lanes.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<u64> = lanes.iter().map(|l| l.dropped()).collect();
        drop(lanes);
        let msg_lanes = self
            .shared
            .msg_lanes
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        out.extend(msg_lanes.iter().map(|l| l.dropped()));
        out
    }

    /// Record attempts so far across all lanes (dropped events included,
    /// message spans included — their push cost is paid like any other
    /// event, so the overhead model must count them).
    pub fn events_recorded(&self) -> u64 {
        let lanes = self.shared.lanes.lock().unwrap_or_else(|e| e.into_inner());
        let spans: u64 = lanes.iter().map(|l| l.attempts()).sum();
        drop(lanes);
        let msg_lanes = self
            .shared
            .msg_lanes
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        spans + msg_lanes.iter().map(|l| l.attempts()).sum::<u64>()
    }

    /// The tracer's measured self-overhead against `lane_time_ns` of
    /// worker-lane time (see [`TracerOverhead`]).
    pub fn overhead(&self, lane_time_ns: u64) -> TracerOverhead {
        let events = self.events_recorded();
        let per_event_ns = per_event_cost_ns();
        TracerOverhead {
            events,
            per_event_ns,
            total_ns: (events as f64 * per_event_ns) as u64,
            lane_time_ns,
        }
    }

    /// Collect every span recorded so far into a [`Trace`], sorted by
    /// start time (ties by node, lane). The store is retained, so
    /// draining twice yields the same spans.
    ///
    /// # Quiesce contract
    ///
    /// A complete trace requires every producer to have quiesced (threads
    /// joined / handles dropped) — this is asserted in debug builds. For
    /// a live mid-run view use [`Recorder::with_collected`] instead.
    pub fn drain(&self) -> Trace {
        self.collect();
        #[cfg(debug_assertions)]
        {
            let lanes = self.shared.lanes.lock().unwrap_or_else(|e| e.into_inner());
            for (i, lane) in lanes.iter().enumerate() {
                debug_assert!(
                    !lane.producer_recording(),
                    "Recorder::drain while lane {i}'s producer is mid-record: \
                     the quiesce contract requires all workers joined before drain"
                );
            }
            drop(lanes);
            let msg_lanes = self
                .shared
                .msg_lanes
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for (i, lane) in msg_lanes.iter().enumerate() {
                debug_assert!(
                    !lane.producer_recording(),
                    "Recorder::drain while msg lane {i}'s producer is mid-record"
                );
            }
        }
        let mut spans = self
            .shared
            .store
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        spans.sort_by_key(|s| (s.start_ns, s.node, s.lane, s.end_ns));
        let mut msgs = self
            .shared
            .msg_store
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        msgs.sort_by_key(|m| (m.enqueue_ns, m.src, m.dst, m.inject_ns, m.deliver_ns));
        Trace {
            spans,
            msgs,
            kinds: self
                .shared
                .kinds
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            dropped: self.dropped(),
            dropped_msgs: self.dropped_msgs(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

/// Per-thread handle writing spans into a private lock-free ring.
pub struct LocalRecorder {
    producer: Option<RingProducer<SpanRecord>>,
}

impl LocalRecorder {
    /// Record one span. No-op on a disabled recorder; on a full ring the
    /// span is dropped and counted (never blocks). `end_ns` must not
    /// precede `start_ns`.
    pub fn record(&self, span: SpanRecord) {
        debug_assert!(span.end_ns >= span.start_ns, "span ends before it starts");
        if let Some(producer) = &self.producer {
            producer.push(span);
        }
    }

    /// Record a task-execution span with no task identity.
    pub fn task(&self, node: u32, lane: u32, kind: u32, start_ns: u64, end_ns: u64) {
        self.task_instance(node, lane, kind, SpanRecord::NO_TASK, start_ns, end_ns);
    }

    /// Record a task-execution span stamped with a task-instance id, so
    /// downstream analysis can join the span to the unfolded task graph.
    pub fn task_instance(
        &self,
        node: u32,
        lane: u32,
        kind: u32,
        task: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.record(SpanRecord {
            node,
            lane,
            kind,
            start_ns,
            end_ns,
            task,
        });
    }

    /// Record a communication span on `node`'s comm lane.
    pub fn comm(&self, node: u32, lane: u32, start_ns: u64, end_ns: u64) {
        self.record(SpanRecord {
            node,
            lane,
            kind: crate::KIND_COMM,
            start_ns,
            end_ns,
            task: SpanRecord::NO_TASK,
        });
    }
}

/// Per-thread handle writing message spans into a private lock-free
/// ring, symmetric to [`LocalRecorder`] for spans.
pub struct MsgRecorder {
    producer: Option<RingProducer<MsgSpan>>,
}

impl MsgRecorder {
    /// Record one cross-node message. No-op on a disabled recorder; on a
    /// full ring the span is dropped and counted (never blocks).
    pub fn record(&self, msg: MsgSpan) {
        debug_assert!(
            msg.deliver_ns >= msg.inject_ns && msg.inject_ns >= msg.enqueue_ns,
            "msg timestamps out of order: enqueue {} inject {} deliver {}",
            msg.enqueue_ns,
            msg.inject_ns,
            msg.deliver_ns
        );
        if let Some(producer) = &self.producer {
            producer.push(msg);
        }
    }
}

/// A drained, immutable trace: every span of a run plus the kind-name
/// table, ready for export or analysis.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// All cross-node message spans, sorted by enqueue time. Empty for
    /// single-node runs.
    pub msgs: Vec<MsgSpan>,
    /// Kind tag → human-readable name, for exporters.
    pub kinds: BTreeMap<u32, String>,
    /// Spans dropped by full lane rings (0 means the trace is complete).
    pub dropped: u64,
    /// Message spans dropped by full msg-lane rings.
    pub dropped_msgs: u64,
}

impl Trace {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans on one node.
    pub fn node_spans(&self, node: u32) -> impl Iterator<Item = &SpanRecord> + '_ {
        self.spans.iter().filter(move |s| s.node == node)
    }

    /// Sorted list of node ranks appearing in the trace.
    pub fn nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self.spans.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Latest end time over all spans; zero when empty.
    pub fn horizon_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0)
    }

    /// Span count per kind tag.
    pub fn count_by_kind(&self) -> BTreeMap<u32, usize> {
        let mut counts = BTreeMap::new();
        for s in &self.spans {
            *counts.entry(s.kind).or_insert(0) += 1;
        }
        counts
    }

    /// Task spans only (everything that is not communication).
    pub fn task_spans(&self) -> impl Iterator<Item = &SpanRecord> + '_ {
        self.spans.iter().filter(|s| s.kind != crate::KIND_COMM)
    }

    /// Busy fraction of `lanes` worker lanes on `node` over
    /// `[0, horizon_ns]` — the paper's "CPU occupancy". Lanes at or above
    /// `lanes` (e.g. the comm lane) are excluded.
    pub fn occupancy(&self, node: u32, lanes: u32, horizon_ns: u64) -> f64 {
        let denom = horizon_ns as f64 * lanes as f64;
        if denom == 0.0 {
            return 0.0;
        }
        let busy: u64 = self
            .node_spans(node)
            .filter(|s| s.lane < lanes)
            .map(|s| s.duration_ns())
            .sum();
        busy as f64 / denom
    }

    /// Idle gaps between consecutive spans on one `(node, lane)` pair over
    /// `[0, horizon_ns]`, as `(start_ns, end_ns)` intervals.
    pub fn idle_gaps(&self, node: u32, lane: u32, horizon_ns: u64) -> Vec<(u64, u64)> {
        let mut spans: Vec<&SpanRecord> =
            self.node_spans(node).filter(|s| s.lane == lane).collect();
        spans.sort_by_key(|s| s.start_ns);
        let mut gaps = Vec::new();
        let mut cursor = 0u64;
        for s in spans {
            if s.start_ns > cursor {
                gaps.push((cursor, s.start_ns));
            }
            cursor = cursor.max(s.end_ns);
        }
        if horizon_ns > cursor {
            gaps.push((cursor, horizon_ns));
        }
        gaps
    }

    /// The per-peer communication matrix of this trace's message spans.
    pub fn comm_matrix(&self) -> crate::CommMatrix {
        crate::CommMatrix::from_trace(self)
    }

    /// Merge another trace's spans and kind names into this one.
    pub fn absorb(&mut self, other: Trace) {
        self.spans.extend(other.spans);
        self.spans
            .sort_by_key(|s| (s.start_ns, s.node, s.lane, s.end_ns));
        self.msgs.extend(other.msgs);
        self.msgs
            .sort_by_key(|m| (m.enqueue_ns, m.src, m.dst, m.inject_ns, m.deliver_ns));
        for (k, v) in other.kinds {
            self.kinds.entry(k).or_insert(v);
        }
        self.dropped += other.dropped;
        self.dropped_msgs += other.dropped_msgs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(node: u32, lane: u32, kind: u32, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            node,
            lane,
            kind,
            start_ns: start,
            end_ns: end,
            task: SpanRecord::NO_TASK,
        }
    }

    #[test]
    fn task_instance_ids_survive_drain() {
        let rec = Recorder::new();
        let l = rec.local();
        l.task_instance(0, 0, 1, 42, 0, 10);
        l.task(0, 0, 1, 10, 20);
        l.comm(0, 2, 0, 5);
        let t = rec.drain();
        let ids: Vec<Option<u64>> = t.spans.iter().map(|s| s.task_instance()).collect();
        assert!(ids.contains(&Some(42)));
        assert_eq!(ids.iter().filter(|i| i.is_none()).count(), 2);
    }

    #[test]
    fn record_and_drain_sorted() {
        let rec = Recorder::new();
        let a = rec.local();
        let b = rec.local();
        a.task(0, 0, 1, 50, 60);
        b.task(0, 1, 1, 0, 10);
        a.task(1, 0, 2, 20, 40);
        let t = rec.drain();
        assert_eq!(t.len(), 3);
        assert_eq!(t.spans[0].start_ns, 0);
        assert_eq!(t.spans[2].start_ns, 50);
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn drain_twice_yields_same_spans() {
        let rec = Recorder::new();
        let l = rec.local();
        l.task(0, 0, 1, 0, 10);
        l.task(0, 0, 1, 10, 20);
        let first = rec.drain();
        let second = rec.drain();
        assert_eq!(first.spans, second.spans);
        // spans recorded after a drain show up in the next one
        l.task(0, 0, 1, 20, 30);
        assert_eq!(rec.drain().len(), 3);
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let rec = Recorder::disabled();
        let l = rec.local();
        l.task(0, 0, 0, 0, 1);
        l.comm(0, 4, 0, 1);
        assert!(rec.drain().is_empty());
        assert!(!rec.is_enabled());
        assert_eq!(rec.events_recorded(), 0);
    }

    #[test]
    fn full_ring_drops_and_counts_without_blocking() {
        let rec = Recorder::with_capacity(4);
        let l = rec.local();
        for i in 0..10u64 {
            l.task(0, 0, 0, i, i + 1);
        }
        let t = rec.drain();
        // Overflow drops the *newest* spans (the push fails; nothing is
        // evicted) — the survivors are the oldest four.
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped, 6);
        assert_eq!(t.spans[0].start_ns, 0);
        assert_eq!(rec.events_recorded(), 10);
        // Continuous collection empties the ring, so a collected recorder
        // keeps accepting spans past its in-flight capacity.
        rec.collect();
        l.task(0, 0, 0, 100, 101);
        let t = rec.drain();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn threads_record_concurrently() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for node in 0..4u32 {
                let local = rec.local();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        local.task(node, 0, 1, i * 2, i * 2 + 1);
                    }
                });
            }
        });
        assert_eq!(rec.drain().len(), 4000);
        assert_eq!(rec.events_recorded(), 4000);
    }

    #[test]
    fn live_collection_while_producers_run() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let rec = Recorder::with_capacity(64);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            let local = rec.local();
            let done = &done;
            s.spawn(move || {
                for i in 0..10_000u64 {
                    local.task(0, 0, 1, i, i + 1);
                }
                done.store(true, Ordering::Release);
            });
            // Collect continuously while the producer runs: the live view
            // is coherent mid-run, and every span ends up either in the
            // store or in the drop counter — never silently lost.
            while !done.load(Ordering::Acquire) {
                rec.collect();
                std::thread::yield_now();
            }
        });
        let t = rec.drain();
        assert_eq!(t.len() as u64 + t.dropped, 10_000, "no span lost");
    }

    #[test]
    fn overhead_reports_calibrated_cost() {
        let rec = Recorder::new();
        let l = rec.local();
        for i in 0..100u64 {
            l.task(0, 0, 0, i, i + 1);
        }
        let oh = rec.overhead(1_000_000_000);
        assert_eq!(oh.events, 100);
        assert!(oh.per_event_ns >= 1.0);
        assert_eq!(oh.total_ns, (100.0 * oh.per_event_ns) as u64);
        assert!(oh.fraction() > 0.0);
        // Zero lane time degrades to zero fraction, not a NaN.
        assert_eq!(rec.overhead(0).fraction(), 0.0);
        assert!(per_event_cost_ns() < 100_000.0, "per-event cost sane");
    }

    #[test]
    fn occupancy_matches_trace_buffer_semantics() {
        let mut t = Trace::default();
        t.spans.push(span(0, 0, 0, 0, 60));
        t.spans.push(span(0, 1, 0, 10, 30));
        t.spans.push(span(0, 7, 0, 0, 100)); // ignored: lane >= lanes
        let occ = t.occupancy(0, 2, 100);
        assert!((occ - 0.4).abs() < 1e-12, "occ = {occ}");
        assert_eq!(t.occupancy(3, 2, 100), 0.0);
        assert_eq!(t.occupancy(0, 2, 0), 0.0);
    }

    #[test]
    fn idle_gaps_cover_complement() {
        let mut t = Trace::default();
        t.spans.push(span(0, 0, 0, 10, 20));
        t.spans.push(span(0, 0, 0, 40, 50));
        let gaps = t.idle_gaps(0, 0, 100);
        assert_eq!(gaps, vec![(0, 10), (20, 40), (50, 100)]);
        let busy: u64 = t.node_spans(0).map(|s| s.duration_ns()).sum();
        let idle: u64 = gaps.iter().map(|(a, b)| b - a).sum();
        assert_eq!(busy + idle, 100);
    }

    #[test]
    fn kind_registry_and_counts() {
        let rec = Recorder::new();
        rec.register_kind(0, "interior");
        rec.register_kind(crate::KIND_COMM, "comm");
        rec.register_kind(0, "renamed-too-late"); // idempotent: first wins
        let l = rec.local();
        l.task(0, 0, 0, 0, 1);
        l.comm(0, 2, 1, 2);
        let t = rec.drain();
        assert_eq!(t.kinds.get(&0).map(String::as_str), Some("interior"));
        assert_eq!(t.count_by_kind().get(&crate::KIND_COMM), Some(&1));
        assert_eq!(t.task_spans().count(), 1);
        assert_eq!(t.nodes(), vec![0]);
    }

    #[test]
    fn msg_lanes_drain_into_trace() {
        let rec = Recorder::new();
        let m = rec.msg_local();
        m.record(MsgSpan {
            src: 1,
            dst: 0,
            kind: 3,
            bytes: 64,
            enqueue_ns: 20,
            inject_ns: 25,
            deliver_ns: 90,
        });
        m.record(MsgSpan {
            src: 0,
            dst: 1,
            kind: 3,
            bytes: 128,
            enqueue_ns: 0,
            inject_ns: 5,
            deliver_ns: 50,
        });
        let t = rec.drain();
        assert_eq!(t.msgs.len(), 2);
        assert_eq!(t.msgs[0].enqueue_ns, 0, "sorted by enqueue time");
        assert_eq!(t.dropped_msgs, 0);
        // Msg pushes count toward the overhead model's event total.
        assert_eq!(rec.events_recorded(), 2);
        let matrix = t.comm_matrix();
        assert_eq!(matrix.total_messages(), 2);
        assert_eq!(matrix.total_bytes(), 192);
    }

    #[test]
    fn msg_ring_overflow_reconciles_per_lane() {
        let rec = Recorder::with_capacity(4);
        let l = rec.local();
        let m = rec.msg_local();
        for i in 0..10u64 {
            l.task(0, 0, 0, i, i + 1);
            m.record(MsgSpan {
                src: 0,
                dst: 1,
                kind: 0,
                bytes: 8,
                enqueue_ns: i,
                inject_ns: i,
                deliver_ns: i + 1,
            });
        }
        let t = rec.drain();
        assert_eq!(t.len(), 4);
        assert_eq!(t.msgs.len(), 4);
        assert_eq!(t.dropped, 6);
        assert_eq!(t.dropped_msgs, 6);
        let per_lane = rec.dropped_per_lane();
        assert_eq!(per_lane, vec![6, 6]);
        assert_eq!(
            per_lane.iter().sum::<u64>(),
            t.dropped + t.dropped_msgs,
            "per-lane drops reconcile with trace totals"
        );
        assert_eq!(rec.events_recorded(), 20);
        // The matrix over the surviving spans is an exact account of what
        // was kept, flagged as a lower bound by the drop counter.
        let matrix = t.comm_matrix();
        assert_eq!(matrix.total_messages() + matrix.dropped, 10);
    }

    #[test]
    fn disabled_recorder_discards_msgs() {
        let rec = Recorder::disabled();
        let m = rec.msg_local();
        m.record(MsgSpan {
            src: 0,
            dst: 1,
            kind: 0,
            bytes: 8,
            enqueue_ns: 0,
            inject_ns: 0,
            deliver_ns: 1,
        });
        assert!(rec.drain().msgs.is_empty());
        assert_eq!(rec.events_recorded(), 0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::start();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
