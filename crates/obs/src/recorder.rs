//! Span recording: per-thread ring buffers of timestamped activity spans,
//! drained into an analyzable [`Trace`].

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One recorded activity: a half-open interval `[start_ns, end_ns)` of
/// `kind` running on `lane` of `node`. Timestamps are nanoseconds on
/// whichever clock the producer used (wall or virtual); analysis is
/// clock-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Node rank the activity ran on.
    pub node: u32,
    /// Execution lane within the node (worker index, or the comm lane).
    pub lane: u32,
    /// Activity class: a task-class kind, or [`crate::KIND_COMM`].
    pub kind: u32,
    /// Inclusive start, nanoseconds.
    pub start_ns: u64,
    /// Exclusive end, nanoseconds.
    pub end_ns: u64,
    /// Task-instance id (the runtime's `TaskKey::instance_id` hash)
    /// joining this span to the statically unfolded task graph, or
    /// [`SpanRecord::NO_TASK`] for spans with no task identity (comm
    /// activity, foreign traces).
    pub task: u64,
}

impl SpanRecord {
    /// Sentinel `task` value for spans not tied to a task instance.
    pub const NO_TASK: u64 = u64::MAX;

    /// Span length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// The task-instance id, when one was stamped.
    pub fn task_instance(&self) -> Option<u64> {
        (self.task != Self::NO_TASK).then_some(self.task)
    }
}

/// Wall-clock nanosecond source anchored at construction, so wall-clock
/// executors produce the same "nanoseconds since run start" timeline the
/// simulator produces natively.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Anchor the clock now.
    pub fn start() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the anchor.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::start()
    }
}

/// Bounded span buffer: keeps the most recent `capacity` spans, counting
/// evictions so truncation is visible in the drained trace.
struct Ring {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
}

impl Ring {
    fn push(&mut self, span: SpanRecord) -> bool {
        let evicted = self.spans.len() == self.capacity;
        if evicted {
            self.spans.pop_front();
        }
        self.spans.push_back(span);
        evicted
    }
}

struct Shared {
    buffers: Mutex<Vec<Arc<Mutex<Ring>>>>,
    kinds: Mutex<BTreeMap<u32, String>>,
    dropped: AtomicU64,
    capacity: usize,
    enabled: bool,
}

/// Span recorder shared by all threads of a run. Clone it freely; all
/// clones feed the same drain.
///
/// Each recording thread obtains its own [`LocalRecorder`] via
/// [`Recorder::local`], writing into a private ring buffer — the only
/// cross-thread contention is at registration and drain time.
#[derive(Clone)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Recorder {
    /// Default per-thread capacity: one million spans (~24 MB/thread at
    /// most), far above any workload in this workspace.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Recorder with the default per-thread ring capacity.
    pub fn new() -> Self {
        Recorder::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Recorder whose per-thread rings keep at most `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            shared: Arc::new(Shared {
                buffers: Mutex::new(Vec::new()),
                kinds: Mutex::new(BTreeMap::new()),
                dropped: AtomicU64::new(0),
                capacity: capacity.max(1),
                enabled: true,
            }),
        }
    }

    /// Recorder that discards everything — for runs with tracing off, so
    /// call sites need no conditionals.
    pub fn disabled() -> Self {
        Recorder {
            shared: Arc::new(Shared {
                buffers: Mutex::new(Vec::new()),
                kinds: Mutex::new(BTreeMap::new()),
                dropped: AtomicU64::new(0),
                capacity: 1,
                enabled: false,
            }),
        }
    }

    /// Whether spans are being kept.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled
    }

    /// Obtain a per-thread recording handle.
    pub fn local(&self) -> LocalRecorder {
        if !self.shared.enabled {
            return LocalRecorder {
                shared: Arc::clone(&self.shared),
                ring: None,
            };
        }
        let ring = Arc::new(Mutex::new(Ring {
            spans: VecDeque::new(),
            capacity: self.shared.capacity,
        }));
        self.shared
            .buffers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        LocalRecorder {
            shared: Arc::clone(&self.shared),
            ring: Some(ring),
        }
    }

    /// Associate a human-readable name with a kind tag (idempotent).
    pub fn register_kind(&self, kind: u32, name: &str) {
        self.shared
            .kinds
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(kind)
            .or_insert_with(|| name.to_string());
    }

    /// Collect every span recorded so far into a [`Trace`], sorted by
    /// start time (ties by node, lane). Buffers are left intact, so
    /// draining twice yields the same spans.
    pub fn drain(&self) -> Trace {
        let mut spans = Vec::new();
        for ring in self
            .shared
            .buffers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            spans.extend(
                ring.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .spans
                    .iter()
                    .copied(),
            );
        }
        spans.sort_by_key(|s| (s.start_ns, s.node, s.lane, s.end_ns));
        Trace {
            spans,
            kinds: self
                .shared
                .kinds
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

/// Per-thread handle writing spans into a private ring buffer.
pub struct LocalRecorder {
    shared: Arc<Shared>,
    ring: Option<Arc<Mutex<Ring>>>,
}

impl LocalRecorder {
    /// Record one span. No-op on a disabled recorder; `end_ns` must not
    /// precede `start_ns`.
    pub fn record(&self, span: SpanRecord) {
        debug_assert!(span.end_ns >= span.start_ns, "span ends before it starts");
        if let Some(ring) = &self.ring {
            if ring.lock().unwrap_or_else(|e| e.into_inner()).push(span) {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record a task-execution span with no task identity.
    pub fn task(&self, node: u32, lane: u32, kind: u32, start_ns: u64, end_ns: u64) {
        self.task_instance(node, lane, kind, SpanRecord::NO_TASK, start_ns, end_ns);
    }

    /// Record a task-execution span stamped with a task-instance id, so
    /// downstream analysis can join the span to the unfolded task graph.
    pub fn task_instance(
        &self,
        node: u32,
        lane: u32,
        kind: u32,
        task: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.record(SpanRecord {
            node,
            lane,
            kind,
            start_ns,
            end_ns,
            task,
        });
    }

    /// Record a communication span on `node`'s comm lane.
    pub fn comm(&self, node: u32, lane: u32, start_ns: u64, end_ns: u64) {
        self.record(SpanRecord {
            node,
            lane,
            kind: crate::KIND_COMM,
            start_ns,
            end_ns,
            task: SpanRecord::NO_TASK,
        });
    }
}

/// A drained, immutable trace: every span of a run plus the kind-name
/// table, ready for export or analysis.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Kind tag → human-readable name, for exporters.
    pub kinds: BTreeMap<u32, String>,
    /// Spans evicted from full ring buffers (0 means the trace is complete).
    pub dropped: u64,
}

impl Trace {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans on one node.
    pub fn node_spans(&self, node: u32) -> impl Iterator<Item = &SpanRecord> + '_ {
        self.spans.iter().filter(move |s| s.node == node)
    }

    /// Sorted list of node ranks appearing in the trace.
    pub fn nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self.spans.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Latest end time over all spans; zero when empty.
    pub fn horizon_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0)
    }

    /// Span count per kind tag.
    pub fn count_by_kind(&self) -> BTreeMap<u32, usize> {
        let mut counts = BTreeMap::new();
        for s in &self.spans {
            *counts.entry(s.kind).or_insert(0) += 1;
        }
        counts
    }

    /// Task spans only (everything that is not communication).
    pub fn task_spans(&self) -> impl Iterator<Item = &SpanRecord> + '_ {
        self.spans.iter().filter(|s| s.kind != crate::KIND_COMM)
    }

    /// Busy fraction of `lanes` worker lanes on `node` over
    /// `[0, horizon_ns]` — the paper's "CPU occupancy". Lanes at or above
    /// `lanes` (e.g. the comm lane) are excluded.
    pub fn occupancy(&self, node: u32, lanes: u32, horizon_ns: u64) -> f64 {
        let denom = horizon_ns as f64 * lanes as f64;
        if denom == 0.0 {
            return 0.0;
        }
        let busy: u64 = self
            .node_spans(node)
            .filter(|s| s.lane < lanes)
            .map(|s| s.duration_ns())
            .sum();
        busy as f64 / denom
    }

    /// Idle gaps between consecutive spans on one `(node, lane)` pair over
    /// `[0, horizon_ns]`, as `(start_ns, end_ns)` intervals.
    pub fn idle_gaps(&self, node: u32, lane: u32, horizon_ns: u64) -> Vec<(u64, u64)> {
        let mut spans: Vec<&SpanRecord> =
            self.node_spans(node).filter(|s| s.lane == lane).collect();
        spans.sort_by_key(|s| s.start_ns);
        let mut gaps = Vec::new();
        let mut cursor = 0u64;
        for s in spans {
            if s.start_ns > cursor {
                gaps.push((cursor, s.start_ns));
            }
            cursor = cursor.max(s.end_ns);
        }
        if horizon_ns > cursor {
            gaps.push((cursor, horizon_ns));
        }
        gaps
    }

    /// Merge another trace's spans and kind names into this one.
    pub fn absorb(&mut self, other: Trace) {
        self.spans.extend(other.spans);
        self.spans
            .sort_by_key(|s| (s.start_ns, s.node, s.lane, s.end_ns));
        for (k, v) in other.kinds {
            self.kinds.entry(k).or_insert(v);
        }
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(node: u32, lane: u32, kind: u32, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            node,
            lane,
            kind,
            start_ns: start,
            end_ns: end,
            task: SpanRecord::NO_TASK,
        }
    }

    #[test]
    fn task_instance_ids_survive_drain() {
        let rec = Recorder::new();
        let l = rec.local();
        l.task_instance(0, 0, 1, 42, 0, 10);
        l.task(0, 0, 1, 10, 20);
        l.comm(0, 2, 0, 5);
        let t = rec.drain();
        let ids: Vec<Option<u64>> = t.spans.iter().map(|s| s.task_instance()).collect();
        assert!(ids.contains(&Some(42)));
        assert_eq!(ids.iter().filter(|i| i.is_none()).count(), 2);
    }

    #[test]
    fn record_and_drain_sorted() {
        let rec = Recorder::new();
        let a = rec.local();
        let b = rec.local();
        a.task(0, 0, 1, 50, 60);
        b.task(0, 1, 1, 0, 10);
        a.task(1, 0, 2, 20, 40);
        let t = rec.drain();
        assert_eq!(t.len(), 3);
        assert_eq!(t.spans[0].start_ns, 0);
        assert_eq!(t.spans[2].start_ns, 50);
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let rec = Recorder::disabled();
        let l = rec.local();
        l.task(0, 0, 0, 0, 1);
        l.comm(0, 4, 0, 1);
        assert!(rec.drain().is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let rec = Recorder::with_capacity(4);
        let l = rec.local();
        for i in 0..10u64 {
            l.task(0, 0, 0, i, i + 1);
        }
        let t = rec.drain();
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped, 6);
        // the survivors are the most recent four
        assert_eq!(t.spans[0].start_ns, 6);
    }

    #[test]
    fn threads_record_concurrently() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for node in 0..4u32 {
                let local = rec.local();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        local.task(node, 0, 1, i * 2, i * 2 + 1);
                    }
                });
            }
        });
        assert_eq!(rec.drain().len(), 4000);
    }

    #[test]
    fn occupancy_matches_trace_buffer_semantics() {
        let mut t = Trace::default();
        t.spans.push(span(0, 0, 0, 0, 60));
        t.spans.push(span(0, 1, 0, 10, 30));
        t.spans.push(span(0, 7, 0, 0, 100)); // ignored: lane >= lanes
        let occ = t.occupancy(0, 2, 100);
        assert!((occ - 0.4).abs() < 1e-12, "occ = {occ}");
        assert_eq!(t.occupancy(3, 2, 100), 0.0);
        assert_eq!(t.occupancy(0, 2, 0), 0.0);
    }

    #[test]
    fn idle_gaps_cover_complement() {
        let mut t = Trace::default();
        t.spans.push(span(0, 0, 0, 10, 20));
        t.spans.push(span(0, 0, 0, 40, 50));
        let gaps = t.idle_gaps(0, 0, 100);
        assert_eq!(gaps, vec![(0, 10), (20, 40), (50, 100)]);
        let busy: u64 = t.node_spans(0).map(|s| s.duration_ns()).sum();
        let idle: u64 = gaps.iter().map(|(a, b)| b - a).sum();
        assert_eq!(busy + idle, 100);
    }

    #[test]
    fn kind_registry_and_counts() {
        let rec = Recorder::new();
        rec.register_kind(0, "interior");
        rec.register_kind(crate::KIND_COMM, "comm");
        rec.register_kind(0, "renamed-too-late"); // idempotent: first wins
        let l = rec.local();
        l.task(0, 0, 0, 0, 1);
        l.comm(0, 2, 1, 2);
        let t = rec.drain();
        assert_eq!(t.kinds.get(&0).map(String::as_str), Some("interior"));
        assert_eq!(t.count_by_kind().get(&crate::KIND_COMM), Some(&1));
        assert_eq!(t.task_spans().count(), 1);
        assert_eq!(t.nodes(), vec![0]);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::start();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
