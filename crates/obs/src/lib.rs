//! Shared observability layer for every executor in the workspace.
//!
//! The three executors (shared-memory threads, simulated multi-process,
//! and the discrete-event simulator) previously each had their own ad-hoc
//! notion of what happened during a run. This crate gives them one:
//!
//! * [`Recorder`] — a streaming span recorder: each thread writes into a
//!   private lock-free SPSC ring ([`ring`]) that a collector empties into
//!   a shared store *while the run executes*. Producers stamp spans with
//!   `u64` nanosecond timestamps from whatever clock they live on —
//!   [`WallClock`] for the real executors, virtual time for the simulator
//!   — so analysis code downstream cannot tell the difference. A full
//!   ring drops (and counts) rather than blocking, and the tracer's own
//!   cost is measured ([`TracerOverhead`]).
//! * [`Live`] — a board of periodic [`LiveSample`] gauges (per-worker
//!   occupancy over a sliding window, queue depths, network in-flight)
//!   the executors publish at a configurable cadence, observable mid-run
//!   by `stencil-top` or the [`expo`] exposition.
//! * [`Metrics`] — a registry of named atomic counters and gauges
//!   (messages sent, bytes moved, redundant communication-avoiding flops,
//!   queue depths, …) snapshotted at the end of a run.
//! * Exporters — [`chrome`] renders a drained [`Trace`] as Chrome
//!   `trace_event` JSON (loadable in Perfetto / `chrome://tracing`) and
//!   parses it back; [`jsonl`] renders metric snapshots as JSON-lines for
//!   the bench harness; [`fig10`] computes the paper's Figure 10
//!   occupancy digest from the same spans.
//!
//! The crate is dependency-free apart from the (vendored) serde stack and
//! knows nothing about task graphs or executors; the `runtime` crate owns
//! the wiring.

#![deny(missing_docs)]

mod metrics;
mod recorder;

pub mod chrome;
pub mod comm;
pub mod expo;
pub mod fig10;
pub mod hist;
pub mod jsonl;
#[cfg(all(test, loom))]
mod loom_model;
pub mod ring;
pub mod sample;

pub use comm::{CommMatrix, MsgSpan, PeerFlow};
pub use hist::{DurationSummary, LogHistogram};
pub use metrics::{names, Counter, ExpectedCounters, Gauge, GaugeValue, Metrics, MetricsSnapshot};
pub use recorder::{
    per_event_cost_ns, LocalRecorder, MsgRecorder, Recorder, SpanRecord, Trace, TracerOverhead,
    WallClock,
};
pub use sample::{lane_busy_in_window, Live, LiveSample};

/// Span kind tag for communication activity, matching the simulator's
/// convention (task-class kinds are small integers; 1000 is the comm lane).
pub const KIND_COMM: u32 = 1000;
