//! Shared observability layer for every executor in the workspace.
//!
//! The three executors (shared-memory threads, simulated multi-process,
//! and the discrete-event simulator) previously each had their own ad-hoc
//! notion of what happened during a run. This crate gives them one:
//!
//! * [`Recorder`] — a low-overhead span recorder with per-thread ring
//!   buffers. Producers stamp spans with `u64` nanosecond timestamps from
//!   whatever clock they live on — [`WallClock`] for the real executors,
//!   virtual time for the simulator — so analysis code downstream cannot
//!   tell the difference.
//! * [`Metrics`] — a registry of named atomic counters and gauges
//!   (messages sent, bytes moved, redundant communication-avoiding flops,
//!   queue depths, …) snapshotted at the end of a run.
//! * Exporters — [`chrome`] renders a drained [`Trace`] as Chrome
//!   `trace_event` JSON (loadable in Perfetto / `chrome://tracing`) and
//!   parses it back; [`jsonl`] renders metric snapshots as JSON-lines for
//!   the bench harness; [`fig10`] computes the paper's Figure 10
//!   occupancy digest from the same spans.
//!
//! The crate is dependency-free apart from the (vendored) serde stack and
//! knows nothing about task graphs or executors; the `runtime` crate owns
//! the wiring.

#![deny(missing_docs)]

mod metrics;
mod recorder;

pub mod chrome;
pub mod fig10;
pub mod hist;
pub mod jsonl;

pub use hist::{DurationSummary, LogHistogram};
pub use metrics::{names, Counter, ExpectedCounters, Gauge, GaugeValue, Metrics, MetricsSnapshot};
pub use recorder::{LocalRecorder, Recorder, SpanRecord, Trace, WallClock};

/// Span kind tag for communication activity, matching the simulator's
/// convention (task-class kinds are small integers; 1000 is the comm lane).
pub const KIND_COMM: u32 = 1000;
