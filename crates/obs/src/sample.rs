//! Live telemetry samples: periodic gauges published *during* a run.
//!
//! The executors run a sampler at the cadence configured in the runtime's
//! `RunConfig` (`sample_period_ns`). Each tick produces one
//! [`LiveSample`] per node — per-worker busy fractions over the sliding
//! window since the previous tick, plus instantaneous queue depths and
//! network in-flight gauges — and publishes it to a [`Live`] board the
//! caller can observe concurrently (the `stencil-top` view, the
//! Prometheus exposition in [`crate::expo`], or a test).
//!
//! Samples are append-only and cheap (a short `Vec<f64>` per tick), so
//! the board doubles as the run's sample history: window-averaging the
//! history reproduces the post-hoc Figure-10 occupancy (see
//! [`Live::mean_occupancy`] and the cross-executor agreement test in
//! `tests/`).

use crate::SpanRecord;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// One sampler tick for one node: gauges over the window
/// `[t_ns - window_ns, t_ns]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveSample {
    /// Sample time (window end), nanoseconds on the engine's clock.
    pub t_ns: u64,
    /// Window length; busy fractions below are averaged over it.
    pub window_ns: u64,
    /// Node rank this sample describes.
    pub node: u32,
    /// Busy fraction of each worker lane over the window, `0.0..=1.0`.
    pub lane_busy: Vec<f64>,
    /// Ready-queue depth at sample time.
    pub ready_depth: usize,
    /// Pending-table size (tasks waiting on inputs) at sample time.
    pub pending_tasks: usize,
    /// Network messages in flight at sample time.
    pub inflight_msgs: u64,
    /// Network bytes in flight at sample time.
    pub inflight_bytes: u64,
    /// Cumulative spans dropped by full telemetry rings so far.
    pub dropped_events: u64,
    /// Cumulative tasks this node's workers obtained by stealing from a
    /// peer's deque (work-stealing engines only; 0 in the simulator).
    #[serde(default)]
    pub steals: u64,
    /// Cumulative full steal sweeps that found no work anywhere — the
    /// "truly starved" signal `insight` splits starvation on.
    #[serde(default)]
    pub steal_fails: u64,
    /// Cumulative local-deque overflows spilled to the shared injector
    /// queue.
    #[serde(default)]
    pub overflow_pushes: u64,
}

impl LiveSample {
    /// Mean busy fraction across this node's worker lanes (0 when the
    /// node has no lanes).
    pub fn occupancy(&self) -> f64 {
        if self.lane_busy.is_empty() {
            0.0
        } else {
            self.lane_busy.iter().sum::<f64>() / self.lane_busy.len() as f64
        }
    }
}

struct LiveInner {
    samples: Mutex<Vec<LiveSample>>,
}

/// Shared live-telemetry board: samplers publish, observers read, both
/// concurrently. Cloning is cheap (`Arc` inside) and all clones see the
/// same board.
#[derive(Clone)]
pub struct Live {
    inner: Arc<LiveInner>,
}

impl std::fmt::Debug for Live {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Live").field("len", &self.len()).finish()
    }
}

impl Default for Live {
    fn default() -> Self {
        Live::new()
    }
}

impl Live {
    /// Empty board.
    pub fn new() -> Self {
        Live {
            inner: Arc::new(LiveInner {
                samples: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Append one sample (called by the executors' samplers).
    pub fn publish(&self, sample: LiveSample) {
        self.inner
            .samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(sample);
    }

    /// Number of samples published so far.
    pub fn len(&self) -> usize {
        self.inner
            .samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// True when nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent sample for `node`, if any.
    pub fn latest(&self, node: u32) -> Option<LiveSample> {
        let samples = self.inner.samples.lock().unwrap_or_else(|e| e.into_inner());
        samples.iter().rev().find(|s| s.node == node).cloned()
    }

    /// The most recent sample per node, sorted by node rank.
    pub fn latest_all(&self) -> Vec<LiveSample> {
        let samples = self.inner.samples.lock().unwrap_or_else(|e| e.into_inner());
        let mut latest: std::collections::BTreeMap<u32, LiveSample> = Default::default();
        for s in samples.iter() {
            latest.insert(s.node, s.clone());
        }
        latest.into_values().collect()
    }

    /// Full sample history in publication order.
    pub fn history(&self) -> Vec<LiveSample> {
        self.inner
            .samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Window-averaged occupancy of `node` over the whole history: each
    /// sample's mean lane busy weighted by its window length. When the
    /// windows tile the run (as the simulator's sampler guarantees) this
    /// equals the post-hoc Figure-10 occupancy exactly.
    pub fn mean_occupancy(&self, node: u32) -> f64 {
        let samples = self.inner.samples.lock().unwrap_or_else(|e| e.into_inner());
        let mut weighted = 0.0;
        let mut total = 0.0;
        for s in samples.iter().filter(|s| s.node == node) {
            weighted += s.occupancy() * s.window_ns as f64;
            total += s.window_ns as f64;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }
}

/// Per-lane busy time of `node`'s first `lanes` worker lanes within the
/// window `[w0, w1)`, from already-collected spans: the overlap of each
/// span with the window, summed per lane, as a fraction of the window.
/// Lanes at or above `lanes` (the comm lane) are excluded. Returns one
/// fraction per lane; all zeros when the window is empty.
pub fn lane_busy_in_window(
    spans: &[SpanRecord],
    node: u32,
    lanes: u32,
    w0: u64,
    w1: u64,
) -> Vec<f64> {
    let mut busy_ns = vec![0u64; lanes as usize];
    if w1 <= w0 {
        return vec![0.0; lanes as usize];
    }
    for s in spans {
        if s.node != node || s.lane >= lanes {
            continue;
        }
        let lo = s.start_ns.max(w0);
        let hi = s.end_ns.min(w1);
        if hi > lo {
            busy_ns[s.lane as usize] += hi - lo;
        }
    }
    let window = (w1 - w0) as f64;
    busy_ns.into_iter().map(|b| b as f64 / window).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(node: u32, lane: u32, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            node,
            lane,
            kind: 0,
            start_ns: start,
            end_ns: end,
            task: SpanRecord::NO_TASK,
        }
    }

    fn sample(node: u32, t: u64, window: u64, busy: Vec<f64>) -> LiveSample {
        LiveSample {
            t_ns: t,
            window_ns: window,
            node,
            lane_busy: busy,
            ready_depth: 0,
            pending_tasks: 0,
            inflight_msgs: 0,
            inflight_bytes: 0,
            dropped_events: 0,
            steals: 0,
            steal_fails: 0,
            overflow_pushes: 0,
        }
    }

    #[test]
    fn window_busy_clips_spans_to_window() {
        let spans = vec![
            span(0, 0, 0, 100),  // covers the whole window
            span(0, 1, 40, 60),  // 20ns inside
            span(0, 1, 90, 200), // 10ns inside
            span(1, 0, 0, 100),  // wrong node
            span(0, 5, 0, 100),  // comm lane, excluded
        ];
        let busy = lane_busy_in_window(&spans, 0, 2, 0, 100);
        assert_eq!(busy.len(), 2);
        assert!((busy[0] - 1.0).abs() < 1e-12);
        assert!((busy[1] - 0.3).abs() < 1e-12);
        // Empty and inverted windows degrade to zeros.
        assert_eq!(lane_busy_in_window(&spans, 0, 2, 50, 50), vec![0.0, 0.0]);
    }

    #[test]
    fn board_latest_and_history() {
        let live = Live::new();
        assert!(live.is_empty());
        assert!(live.latest(0).is_none());
        live.publish(sample(0, 100, 100, vec![0.5]));
        live.publish(sample(1, 100, 100, vec![0.25]));
        live.publish(sample(0, 200, 100, vec![1.0]));
        assert_eq!(live.len(), 3);
        assert_eq!(live.latest(0).unwrap().t_ns, 200);
        let all = live.latest_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].node, 0);
        assert_eq!(all[1].node, 1);
        assert_eq!(live.history().len(), 3);
        // Clones share the board.
        let clone = live.clone();
        clone.publish(sample(2, 50, 50, vec![]));
        assert_eq!(live.len(), 4);
    }

    #[test]
    fn mean_occupancy_is_window_weighted() {
        let live = Live::new();
        // 100ns at 0.5 mean busy, then 300ns at 1.0: mean = 0.875.
        live.publish(sample(0, 100, 100, vec![0.0, 1.0]));
        live.publish(sample(0, 400, 300, vec![1.0, 1.0]));
        live.publish(sample(1, 400, 400, vec![0.1, 0.1]));
        assert!((live.mean_occupancy(0) - 0.875).abs() < 1e-12);
        assert!((live.mean_occupancy(1) - 0.1).abs() < 1e-12);
        assert_eq!(live.mean_occupancy(9), 0.0);
    }

    #[test]
    fn sample_occupancy_handles_no_lanes() {
        assert_eq!(sample(0, 0, 1, vec![]).occupancy(), 0.0);
        assert!((sample(0, 0, 1, vec![0.2, 0.6]).occupancy() - 0.4).abs() < 1e-12);
    }
}
