//! Log-bucketed duration histograms: fixed-size, mergeable, and cheap
//! enough to keep one per `(node, kind)` pair while draining a trace.
//!
//! Values are bucketed into 8 linear sub-buckets per power of two, so any
//! quantile read is within 12.5 % of the true value; count, sum, min and
//! max are tracked exactly. This is the storage behind the per-kind
//! p50/p90/p99 tables in the `insight` diagnosis report.

use serde::Serialize;

/// Sub-buckets per octave (8): bounds relative quantile error to 1/8.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range at 8 sub-buckets/octave.
const BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let group = (top - SUB_BITS) as usize;
    let sub = ((v >> (top - SUB_BITS)) - SUB) as usize;
    SUB as usize + group * SUB as usize + sub
}

/// Lower bound of a bucket — the value reported for quantiles landing in it.
fn bucket_floor(bucket: usize) -> u64 {
    if bucket < SUB as usize {
        return bucket as u64;
    }
    let group = (bucket - SUB as usize) / SUB as usize;
    let sub = ((bucket - SUB as usize) % SUB as usize) as u64;
    (SUB + sub) << group
}

/// A log-bucketed histogram of `u64` samples (typically span durations in
/// nanoseconds). Recording is O(1); memory is a fixed ~4 KB.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) to bucket resolution (≤ 12.5 %
    /// relative error), clamped into `[min, max]`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(bucket).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Condense into the fixed set of summary scalars used in reports.
    pub fn summary(&self) -> DurationSummary {
        DurationSummary {
            count: self.count,
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            max_ns: self.max(),
        }
    }

    /// Occupied buckets as `(lower_bound, count)` pairs, for rendering.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_floor(b), c))
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.quantile(0.5))
            .field("max", &self.max())
            .finish()
    }
}

/// The report-facing digest of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DurationSummary {
    /// Sample count.
    pub count: u64,
    /// Exact mean, nanoseconds.
    pub mean_ns: f64,
    /// Median to bucket resolution, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile to bucket resolution, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile to bucket resolution, nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Bucket index is monotone and floors invert the mapping.
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "v={v} bucket {b}");
            assert!(bucket_floor(b) <= v);
            if b + 1 < BUCKETS {
                assert!(bucket_floor(b + 1) > v, "v={v}");
            }
        }
        // Small values are exact.
        for v in 0..8u64 {
            assert_eq!(bucket_floor(bucket_of(v)), v);
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.summary().p99_ns, 0);
    }

    #[test]
    fn quantiles_within_bucket_resolution() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 <= 0.125, "p50={p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 <= 0.125, "p99={p99}");
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.min(), 1000);
        assert!((h.mean() - 500_500.0).abs() < 1e-6);
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.record(136_000_000); // the paper's 136ms median kernel
        assert_eq!(h.quantile(0.5), 136_000_000);
        assert_eq!(h.quantile(0.99), 136_000_000);
        assert_eq!(h.summary().count, 1);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 1..100u64 {
            if v % 2 == 0 { &mut a } else { &mut b }.record(v * 7);
            whole.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        assert_eq!(a.buckets().count(), whole.buckets().count());
    }
}
