//! Figure-10 occupancy analysis: per-node busy fractions and per-kind
//! kernel-time statistics computed from a drained [`Trace`] — the digest
//! behind the paper's Gantt/occupancy figure, shared by all executors.

use crate::Trace;
use serde::Serialize;
use std::collections::BTreeMap;

/// Statistics of one span kind on one node.
#[derive(Debug, Clone, Serialize)]
pub struct KindStat {
    /// Trace kind tag.
    pub kind: u32,
    /// Registered kind name, or `kindN` when unregistered.
    pub name: String,
    /// Number of spans of this kind.
    pub count: usize,
    /// Total busy nanoseconds of this kind.
    pub total_ns: u64,
    /// Mean span duration, nanoseconds.
    pub mean_ns: f64,
    /// Median span duration, nanoseconds.
    pub median_ns: f64,
}

/// One node's occupancy digest.
#[derive(Debug, Clone, Serialize)]
pub struct NodeOccupancy {
    /// Node rank.
    pub node: u32,
    /// Worker lanes counted toward occupancy.
    pub lanes: u32,
    /// Busy nanoseconds summed over worker lanes.
    pub busy_ns: u64,
    /// Analysis horizon, nanoseconds.
    pub horizon_ns: u64,
    /// Busy fraction in `[0, 1]`: `busy / (lanes × horizon)`.
    pub occupancy: f64,
    /// Per-kind statistics over all of the node's spans (comm included),
    /// ordered by kind tag.
    pub kinds: Vec<KindStat>,
}

/// Analyze one node over `lanes` worker lanes up to `horizon_ns`.
/// Spans on lanes `>= lanes` (the comm lane) count toward per-kind
/// statistics but not toward occupancy, matching the paper's definition
/// of CPU occupancy. Busy time is clamped at the horizon so spans that
/// cross it cannot push occupancy above 1.
pub fn analyze_node(trace: &Trace, node: u32, lanes: u32, horizon_ns: u64) -> NodeOccupancy {
    let mut by_kind: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut busy_ns = 0u64;
    for s in trace.node_spans(node) {
        by_kind.entry(s.kind).or_default().push(s.duration_ns());
        if s.lane < lanes {
            let end = s.end_ns.min(horizon_ns);
            busy_ns += end - s.start_ns.min(end);
        }
    }
    let kinds = by_kind
        .into_iter()
        .map(|(kind, mut durations)| {
            let count = durations.len();
            let total_ns: u64 = durations.iter().sum();
            let (lower, &mut upper, _) = durations.select_nth_unstable(count / 2);
            let median_ns = if count % 2 == 1 {
                upper as f64
            } else {
                (lower.iter().copied().max().unwrap_or(upper) + upper) as f64 / 2.0
            };
            KindStat {
                kind,
                name: trace
                    .kinds
                    .get(&kind)
                    .cloned()
                    .unwrap_or_else(|| format!("kind{kind}")),
                count,
                total_ns,
                mean_ns: total_ns as f64 / count as f64,
                median_ns,
            }
        })
        .collect();
    let denom = horizon_ns as f64 * lanes as f64;
    NodeOccupancy {
        node,
        lanes,
        busy_ns,
        horizon_ns,
        occupancy: if denom == 0.0 {
            0.0
        } else {
            busy_ns as f64 / denom
        },
        kinds,
    }
}

/// Analyze every node appearing in the trace over its own horizon.
pub fn analyze(trace: &Trace, lanes: u32) -> Vec<NodeOccupancy> {
    let horizon = trace.horizon_ns();
    trace
        .nodes()
        .into_iter()
        .map(|node| analyze_node(trace, node, lanes, horizon))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, KIND_COMM};

    fn sample() -> Trace {
        let rec = Recorder::new();
        rec.register_kind(0, "interior");
        rec.register_kind(1, "boundary");
        rec.register_kind(KIND_COMM, "comm");
        let l = rec.local();
        // node 0: lane 0 busy [0, 10ms) kind 0, lane 1 busy [0, 5ms) kind 1
        l.task(0, 0, 0, 0, 10_000_000);
        l.task(0, 1, 1, 0, 5_000_000);
        // node 0 comm lane: excluded from occupancy, present in kinds
        l.comm(0, 2, 2_000_000, 8_000_000);
        // node 1: one short interior task
        l.task(1, 0, 0, 0, 1_000_000);
        rec.drain()
    }

    #[test]
    fn occupancy_excludes_comm_lane() {
        let p = analyze_node(&sample(), 0, 2, 10_000_000);
        assert!((p.occupancy - 0.75).abs() < 1e-12, "occ = {}", p.occupancy);
        assert_eq!(p.busy_ns, 15_000_000);
        assert_eq!(p.kinds.len(), 3);
        assert_eq!(p.kinds[2].kind, KIND_COMM);
        assert_eq!(p.kinds[2].name, "comm");
    }

    #[test]
    fn kind_stats_are_named_and_summed() {
        let p = analyze_node(&sample(), 0, 2, 10_000_000);
        assert_eq!(p.kinds[0].name, "interior");
        assert_eq!(p.kinds[0].count, 1);
        assert_eq!(p.kinds[0].total_ns, 10_000_000);
        assert!((p.kinds[0].median_ns - 10_000_000.0).abs() < 1e-9);
    }

    #[test]
    fn analyze_covers_all_nodes_over_shared_horizon() {
        let all = analyze(&sample(), 2);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].node, 0);
        assert_eq!(all[1].node, 1);
        assert_eq!(all[1].horizon_ns, 10_000_000);
        assert!(all[1].occupancy < all[0].occupancy);
    }

    #[test]
    fn median_of_even_count_interpolates() {
        let rec = Recorder::new();
        let l = rec.local();
        l.task(0, 0, 5, 0, 10);
        l.task(0, 0, 5, 20, 50);
        let p = analyze_node(&rec.drain(), 0, 1, 50);
        assert_eq!(p.kinds[0].count, 2);
        assert!((p.kinds[0].median_ns - 20.0).abs() < 1e-12);
        assert!((p.kinds[0].mean_ns - 20.0).abs() < 1e-12);
    }

    #[test]
    fn spans_crossing_horizon_are_clamped() {
        let rec = Recorder::new();
        let l = rec.local();
        // Fully inside, straddling, and fully beyond the 100ns horizon.
        l.task(0, 0, 0, 0, 50);
        l.task(0, 0, 0, 80, 150);
        l.task(0, 0, 0, 200, 300);
        let p = analyze_node(&rec.drain(), 0, 1, 100);
        assert_eq!(p.busy_ns, 50 + 20);
        assert!(p.occupancy <= 1.0, "occ = {}", p.occupancy);
        // Per-kind totals keep full durations (kernel time is kernel time).
        assert_eq!(p.kinds[0].total_ns, 50 + 70 + 100);
    }

    #[test]
    fn median_matches_full_sort_on_larger_samples() {
        for n in 1..=9u64 {
            let rec = Recorder::new();
            let l = rec.local();
            // Durations n, n-1, ..., 1 recorded in descending order.
            for i in 0..n {
                l.task(0, 0, 7, 1000 * i, 1000 * i + (n - i));
            }
            let p = analyze_node(&rec.drain(), 0, 1, 10_000);
            let mut sorted: Vec<u64> = (1..=n).collect();
            sorted.sort_unstable();
            let want = if n % 2 == 1 {
                sorted[n as usize / 2] as f64
            } else {
                (sorted[n as usize / 2 - 1] + sorted[n as usize / 2]) as f64 / 2.0
            };
            assert!(
                (p.kinds[0].median_ns - want).abs() < 1e-12,
                "n={n}: got {} want {want}",
                p.kinds[0].median_ns
            );
        }
    }

    #[test]
    fn zero_horizon_zero_occupancy() {
        let p = analyze_node(&Trace::default(), 0, 4, 0);
        assert_eq!(p.occupancy, 0.0);
        assert!(p.kinds.is_empty());
    }
}
