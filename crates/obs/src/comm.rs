//! Message-level communication tracing: per-transfer [`MsgSpan`]s and
//! their aggregation into a per-peer [`CommMatrix`].
//!
//! Every cross-node transfer an executor performs is recorded as one
//! `MsgSpan` carrying the (src, dst) pair, the producing task's kind tag,
//! the payload size, and three timestamps on the executor's clock:
//!
//! * **enqueue** — the producing task finished and handed the payload to
//!   the communication engine;
//! * **inject** — the sender's comm engine actually started pushing the
//!   message onto the wire (the gap to `enqueue` is *queueing delay*:
//!   time spent waiting behind other sends on the same NIC);
//! * **deliver** — the receiver finished processing the message and the
//!   payload became visible to consumer tasks (the gap to `inject` is
//!   *in-flight latency*: injection overhead + wire time + receive cost).
//!
//! The simulator stamps virtual times, the multi-process executor stamps
//! wall-clock; analysis downstream cannot tell the difference. A drained
//! [`crate::Trace`] carries the spans (`msgs`) and [`CommMatrix::from_trace`]
//! folds them into per-peer flow statistics whose byte/message totals are
//! cross-checked against the static analyzer's exact per-edge accounting.

use crate::{DurationSummary, LogHistogram};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One traced cross-node message: who sent what to whom, and when it was
/// enqueued, injected, and delivered (nanoseconds on the executor's
/// clock). `Copy`, so it rides the same lock-free SPSC rings as
/// [`crate::SpanRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgSpan {
    /// Sender node rank.
    pub src: u32,
    /// Receiver node rank.
    pub dst: u32,
    /// Kind tag of the *producing* task class (which edge family this
    /// message belongs to — interior halo, CA block, …).
    pub kind: u32,
    /// Payload bytes on the wire.
    pub bytes: u64,
    /// Producer finished; payload handed to the comm engine.
    pub enqueue_ns: u64,
    /// Sender's comm engine started transmitting.
    pub inject_ns: u64,
    /// Receiver finished processing; payload visible to consumers.
    pub deliver_ns: u64,
}

impl MsgSpan {
    /// Time spent queued behind other sends before injection.
    pub fn queue_ns(&self) -> u64 {
        self.inject_ns.saturating_sub(self.enqueue_ns)
    }

    /// In-flight time from injection to delivery.
    pub fn inflight_ns(&self) -> u64 {
        self.deliver_ns.saturating_sub(self.inject_ns)
    }

    /// End-to-end time from enqueue to delivery.
    pub fn total_ns(&self) -> u64 {
        self.deliver_ns.saturating_sub(self.enqueue_ns)
    }
}

/// Aggregated flow statistics for one directed (src, dst) peer pair.
#[derive(Debug, Clone, Default)]
pub struct PeerFlow {
    /// Messages sent src → dst.
    pub messages: u64,
    /// Payload bytes sent src → dst.
    pub bytes: u64,
    /// In-flight latency digest (deliver − inject).
    pub latency: LogHistogram,
    /// Queueing-delay digest (inject − enqueue).
    pub queue: LogHistogram,
}

impl PeerFlow {
    /// In-flight latency summary (count/mean/p50/p90/p99/max).
    pub fn latency_summary(&self) -> DurationSummary {
        self.latency.summary()
    }

    /// Queueing-delay summary.
    pub fn queue_summary(&self) -> DurationSummary {
        self.queue.summary()
    }
}

/// The per-peer communication matrix of a run: one [`PeerFlow`] per
/// directed (src, dst) pair that exchanged at least one message, plus
/// per-kind and overall totals.
#[derive(Debug, Clone, Default)]
pub struct CommMatrix {
    /// Directed peer flows, keyed (src, dst).
    pub peers: BTreeMap<(u32, u32), PeerFlow>,
    /// Message and byte totals per producing-task kind.
    pub by_kind: BTreeMap<u32, (u64, u64)>,
    /// Messages dropped by full msg rings — when nonzero the matrix is a
    /// lower bound, not an exact account.
    pub dropped: u64,
}

impl CommMatrix {
    /// Fold a slice of message spans (plus the drop counter from the same
    /// recorder) into a matrix.
    pub fn from_msgs(msgs: &[MsgSpan], dropped: u64) -> Self {
        let mut m = CommMatrix {
            dropped,
            ..CommMatrix::default()
        };
        for s in msgs {
            let flow = m.peers.entry((s.src, s.dst)).or_default();
            flow.messages += 1;
            flow.bytes += s.bytes;
            flow.latency.record(s.inflight_ns());
            flow.queue.record(s.queue_ns());
            let k = m.by_kind.entry(s.kind).or_insert((0, 0));
            k.0 += 1;
            k.1 += s.bytes;
        }
        m
    }

    /// Fold a drained trace's message spans into a matrix.
    pub fn from_trace(trace: &crate::Trace) -> Self {
        CommMatrix::from_msgs(&trace.msgs, trace.dropped_msgs)
    }

    /// Total messages across all peers.
    pub fn total_messages(&self) -> u64 {
        self.peers.values().map(|f| f.messages).sum()
    }

    /// Total payload bytes across all peers.
    pub fn total_bytes(&self) -> u64 {
        self.peers.values().map(|f| f.bytes).sum()
    }

    /// True when no messages were recorded (single-node runs).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The peer pair with the highest in-flight p99 latency, if any —
    /// the first place to look when a run is comm-bound.
    pub fn worst_latency_peer(&self) -> Option<((u32, u32), DurationSummary)> {
        self.peers
            .iter()
            .map(|(&k, f)| (k, f.latency_summary()))
            .max_by_key(|(_, s)| s.p99_ns)
    }

    /// Render a human-readable per-peer table (the doctor/top format).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:>4} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "src", "dst", "msgs", "bytes", "lat.mean", "lat.p99", "queue.mean"
        );
        for (&(src, dst), flow) in &self.peers {
            let lat = flow.latency_summary();
            let q = flow.queue_summary();
            let _ = writeln!(
                out,
                "{:>4} {:>4} {:>8} {:>12} {:>10}ns {:>10}ns {:>10}ns",
                src,
                dst,
                flow.messages,
                flow.bytes,
                lat.mean_ns as u64,
                lat.p99_ns,
                q.mean_ns as u64
            );
        }
        let _ = writeln!(
            out,
            "total: {} msgs, {} bytes{}",
            self.total_messages(),
            self.total_bytes(),
            if self.dropped > 0 {
                format!(
                    " ({} msg spans DROPPED — totals are a lower bound)",
                    self.dropped
                )
            } else {
                String::new()
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: u32, dst: u32, bytes: u64, enq: u64, inj: u64, del: u64) -> MsgSpan {
        MsgSpan {
            src,
            dst,
            kind: 7,
            bytes,
            enqueue_ns: enq,
            inject_ns: inj,
            deliver_ns: del,
        }
    }

    #[test]
    fn matrix_aggregates_per_peer() {
        let msgs = vec![
            msg(0, 1, 100, 0, 10, 110),
            msg(0, 1, 200, 5, 20, 140),
            msg(1, 0, 50, 0, 0, 30),
        ];
        let m = CommMatrix::from_msgs(&msgs, 0);
        assert_eq!(m.peers.len(), 2);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_bytes(), 350);
        let f01 = &m.peers[&(0, 1)];
        assert_eq!(f01.messages, 2);
        assert_eq!(f01.bytes, 300);
        // latencies 100 and 120; queue delays 10 and 15
        assert!(f01.latency_summary().mean_ns >= 100.0);
        assert!(f01.queue_summary().mean_ns >= 10.0);
        assert_eq!(m.by_kind[&7], (3, 350));
        assert!(!m.is_empty());
        let (worst, _) = m.worst_latency_peer().unwrap();
        assert_eq!(worst, (0, 1));
    }

    #[test]
    fn empty_matrix_and_render() {
        let m = CommMatrix::from_msgs(&[], 0);
        assert!(m.is_empty());
        assert_eq!(m.total_bytes(), 0);
        assert!(m.worst_latency_peer().is_none());
        let m = CommMatrix::from_msgs(&[msg(0, 1, 8, 0, 1, 2)], 3);
        let table = m.render();
        assert!(table.contains("total: 1 msgs, 8 bytes"));
        assert!(table.contains("DROPPED"), "{table}");
    }

    #[test]
    fn span_deltas_saturate() {
        // A wall-clock race can in principle produce deliver < inject;
        // deltas must clamp at zero, not wrap.
        let s = msg(0, 1, 8, 50, 40, 30);
        assert_eq!(s.queue_ns(), 0);
        assert_eq!(s.inflight_ns(), 0);
        assert_eq!(s.total_ns(), 0);
        let s = msg(0, 1, 8, 0, 10, 25);
        assert_eq!(s.queue_ns(), 10);
        assert_eq!(s.inflight_ns(), 15);
        assert_eq!(s.total_ns(), 25);
    }
}
