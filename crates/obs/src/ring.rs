//! Bounded lock-free SPSC record ring: the producer lane of the streaming
//! telemetry pipeline.
//!
//! Each recording thread owns exactly one [`RingProducer`]; the collector
//! owns the matching [`RingConsumer`]. Pushing never blocks and never
//! takes a lock: when the ring is full the record is **dropped** and a
//! per-lane counter is bumped, so the hot path's worst case is one failed
//! compare of two atomics. This replaces the old `Mutex<VecDeque>` lane
//! buffers, whose lock the drain path could contend with live workers.
//!
//! The ring is generic over any `Copy` record type — the same protocol
//! carries task/comm [`crate::SpanRecord`]s and per-message
//! [`crate::MsgSpan`]s on separate lanes.
//!
//! The ring is a classic single-producer/single-consumer circular buffer:
//! `tail` is written only by the producer, `head` only by the consumer,
//! and each side reads the other's index with `Acquire` to synchronize
//! slot contents published with `Release`. Capacity is rounded up to a
//! power of two so indices wrap with a mask and never need a modulo.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

struct Slot<T>(UnsafeCell<MaybeUninit<T>>);

struct RingInner<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Next index the consumer will pop. Written only by the consumer.
    head: AtomicUsize,
    /// Next index the producer will push. Written only by the producer.
    tail: AtomicUsize,
    /// Records dropped because the ring was full when pushed.
    dropped: AtomicU64,
    /// Records the producer attempted to push (dropped ones included) —
    /// the event count the tracer-overhead model multiplies by the
    /// calibrated per-event cost.
    attempts: AtomicU64,
    /// True while the producer is inside `push` — the quiesce contract's
    /// witness (see [`crate::Recorder::drain`]).
    recording: AtomicBool,
}

// SAFETY: the SPSC protocol gives each slot exactly one accessor at a
// time — the producer writes slot `i` strictly before publishing
// `tail = i + 1` (Release), and the consumer reads slot `i` only after
// observing `tail > i` (Acquire) and strictly before publishing
// `head = i + 1`, after which the producer may reuse it. With a unique
// producer and a unique consumer (enforced by the unclonable handle
// types below) no slot is ever aliased mutably.
unsafe impl<T: Send> Sync for RingInner<T> {}

/// Producer half of a record ring: single-threaded, non-blocking writes.
pub struct RingProducer<T> {
    inner: Arc<RingInner<T>>,
    /// Producer-local cache of the consumer's head, refreshed only when
    /// the ring looks full, so the common-case push reads one atomic.
    cached_head: Cell<usize>,
}

/// Consumer half of a record ring: single-threaded batch drains.
pub struct RingConsumer<T> {
    inner: Arc<RingInner<T>>,
}

/// Create a ring holding at most `capacity` records (rounded up to a
/// power of two, minimum 2).
pub fn spsc<T: Copy>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[Slot<T>]> = (0..cap)
        .map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit())))
        .collect();
    let inner = Arc::new(RingInner {
        slots,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
        attempts: AtomicU64::new(0),
        recording: AtomicBool::new(false),
    });
    (
        RingProducer {
            inner: Arc::clone(&inner),
            cached_head: Cell::new(0),
        },
        RingConsumer { inner },
    )
}

impl<T: Copy> RingProducer<T> {
    /// Push a record; returns `false` (and counts a drop) when the ring
    /// is full. Never blocks.
    pub fn push(&self, record: T) -> bool {
        let inner = &*self.inner;
        inner.recording.store(true, Ordering::Release);
        inner.attempts.fetch_add(1, Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Relaxed);
        let capacity = inner.mask + 1;
        let mut head = self.cached_head.get();
        if tail.wrapping_sub(head) >= capacity {
            head = inner.head.load(Ordering::Acquire);
            self.cached_head.set(head);
            if tail.wrapping_sub(head) >= capacity {
                inner.dropped.fetch_add(1, Ordering::Relaxed);
                inner.recording.store(false, Ordering::Release);
                return false;
            }
        }
        // SAFETY: `tail - head < capacity`, so slot `tail & mask` is not
        // readable by the consumer until we publish the new tail below;
        // the producer is unique, so no one else writes it.
        unsafe { (*inner.slots[tail & inner.mask].0.get()).write(record) };
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        inner.recording.store(false, Ordering::Release);
        true
    }

    /// Records dropped on this lane so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

impl<T: Copy> RingConsumer<T> {
    /// Pop the oldest record, if any.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        if head == inner.tail.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: `head < tail`, so the producer published this slot with
        // the Release store of `tail` and will not reuse it until we
        // publish the new head below; the consumer is unique.
        let record = unsafe { (*inner.slots[head & inner.mask].0.get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(record)
    }

    /// Drain everything currently visible into `out`; returns the count.
    pub fn drain_into(&mut self, out: &mut Vec<T>) -> usize {
        let mut n = 0;
        while let Some(record) = self.pop() {
            out.push(record);
            n += 1;
        }
        n
    }

    /// Records dropped on this lane so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Records the producer attempted to push (dropped ones included).
    pub fn attempts(&self) -> u64 {
        self.inner.attempts.load(Ordering::Relaxed)
    }

    /// True while the producer is inside `push` — used by the drain-time
    /// quiesce assertion.
    pub fn producer_recording(&self) -> bool {
        self.inner.recording.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRecord;

    fn span(i: u64) -> SpanRecord {
        SpanRecord {
            node: 0,
            lane: 0,
            kind: 0,
            start_ns: i,
            end_ns: i + 1,
            task: SpanRecord::NO_TASK,
        }
    }

    #[test]
    fn fifo_order_with_wraparound() {
        let (p, mut c) = spsc(4);
        let mut popped = Vec::new();
        // Push/pop interleaved for several multiples of the capacity so
        // the indices wrap repeatedly.
        for i in 0..64u64 {
            assert!(p.push(span(i)));
            if i % 3 == 0 {
                c.drain_into(&mut popped);
            }
        }
        c.drain_into(&mut popped);
        assert_eq!(popped.len(), 64);
        for (i, s) in popped.iter().enumerate() {
            assert_eq!(s.start_ns, i as u64, "FIFO order preserved");
        }
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.attempts(), 64);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let (p, mut c) = spsc(4);
        for i in 0..10u64 {
            p.push(span(i));
        }
        assert_eq!(p.dropped(), 6);
        let mut out = Vec::new();
        c.drain_into(&mut out);
        // The survivors are the *oldest* four: a full ring rejects new
        // spans rather than evicting old ones (the hot path never touches
        // consumer-owned state).
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].start_ns, 0);
        assert_eq!(out[3].start_ns, 3);
        assert_eq!(c.attempts(), 10);
        // Space freed by the drain is usable again.
        assert!(p.push(span(99)));
        assert_eq!(c.pop().unwrap().start_ns, 99);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (p, mut c) = spsc(5); // rounds to 8
        for i in 0..8u64 {
            assert!(p.push(span(i)), "slot {i} of 8 fits");
        }
        assert!(!p.push(span(8)));
        let mut out = Vec::new();
        assert_eq!(c.drain_into(&mut out), 8);
    }

    #[test]
    fn generic_ring_carries_msg_spans() {
        let (p, mut c) = spsc::<crate::MsgSpan>(4);
        for i in 0..6u64 {
            p.push(crate::MsgSpan {
                src: 0,
                dst: 1,
                kind: 0,
                bytes: 8,
                enqueue_ns: i,
                inject_ns: i + 1,
                deliver_ns: i + 2,
            });
        }
        let mut out = Vec::new();
        c.drain_into(&mut out);
        assert_eq!(out.len(), 4, "drop-newest applies to msg lanes too");
        assert_eq!(c.dropped(), 2);
        assert_eq!(c.attempts(), 6);
        assert_eq!(out[0].enqueue_ns, 0);
    }

    #[test]
    fn concurrent_producer_consumer_conserves_spans() {
        let (p, mut c) = spsc::<SpanRecord>(64);
        let total = 100_000u64;
        let consumer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            // Spin until the producer reports completion through a
            // sentinel span.
            loop {
                if let Some(s) = c.pop() {
                    if s.start_ns == u64::MAX {
                        break;
                    }
                    seen.push(s.start_ns);
                } else {
                    std::thread::yield_now();
                }
            }
            seen
        });
        for i in 0..total {
            p.push(span(i));
        }
        // Drops after this point belong to the sentinel retry loop, not
        // the payload — snapshot the counter first.
        let dropped = p.dropped();
        // The sentinel must land: retry until the consumer makes room.
        let mut sentinel = SpanRecord {
            start_ns: u64::MAX,
            ..span(0)
        };
        sentinel.end_ns = u64::MAX;
        while !p.push(sentinel) {
            std::thread::yield_now();
        }
        let seen = consumer.join().unwrap();
        assert_eq!(
            seen.len() as u64 + dropped,
            total,
            "no span lost or duplicated"
        );
        // Order is preserved among the survivors.
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }
}
