//! JSON-lines metric export: one self-describing JSON object per line,
//! the format the bench harness writes next to its figures so runs can
//! be diffed and plotted with standard line-oriented tools.

use crate::{MetricsSnapshot, Trace};
use serde::{Number, Value};

/// Render a run's metrics (and optionally its trace digest) as JSON
/// lines. The first line is a `run` header; each counter and gauge gets
/// its own line tagged with the run name.
pub fn render(run: &str, snapshot: &MetricsSnapshot, trace: Option<&Trace>) -> String {
    render_with_scheduler(run, None, snapshot, trace)
}

/// [`render`] with the active scheduler's name stamped into the run
/// header (a `"scheduler"` field), so exported metrics from different
/// scheduling policies stay distinguishable. [`parse`] ignores unknown
/// header fields, so old readers keep working.
pub fn render_with_scheduler(
    run: &str,
    scheduler: Option<&str>,
    snapshot: &MetricsSnapshot,
    trace: Option<&Trace>,
) -> String {
    let mut out = String::new();
    let mut header = vec![
        ("record".into(), Value::Str("run".into())),
        ("run".into(), Value::Str(run.into())),
    ];
    if let Some(s) = scheduler {
        header.push(("scheduler".into(), Value::Str(s.into())));
    }
    if let Some(t) = trace {
        header.push(("spans".into(), Value::Num(Number::U(t.len() as u64))));
        header.push(("horizon_ns".into(), Value::Num(Number::U(t.horizon_ns()))));
        header.push(("dropped_spans".into(), Value::Num(Number::U(t.dropped))));
        header.push((
            "msg_spans".into(),
            Value::Num(Number::U(t.msgs.len() as u64)),
        ));
        header.push(("dropped_msgs".into(), Value::Num(Number::U(t.dropped_msgs))));
    }
    push_line(&mut out, Value::Object(header));

    // One `comm` record per directed peer pair that exchanged messages:
    // the communication matrix in line-oriented form, ready to pivot into
    // a heatmap with standard tools.
    if let Some(t) = trace {
        let matrix = t.comm_matrix();
        for (&(src, dst), flow) in &matrix.peers {
            let lat = flow.latency_summary();
            let q = flow.queue_summary();
            push_line(
                &mut out,
                Value::Object(vec![
                    ("record".into(), Value::Str("comm".into())),
                    ("run".into(), Value::Str(run.into())),
                    ("src".into(), Value::Num(Number::U(src as u64))),
                    ("dst".into(), Value::Num(Number::U(dst as u64))),
                    ("messages".into(), Value::Num(Number::U(flow.messages))),
                    ("bytes".into(), Value::Num(Number::U(flow.bytes))),
                    ("latency_mean_ns".into(), Value::Num(Number::F(lat.mean_ns))),
                    ("latency_p99_ns".into(), Value::Num(Number::U(lat.p99_ns))),
                    ("queue_mean_ns".into(), Value::Num(Number::F(q.mean_ns))),
                    ("queue_p99_ns".into(), Value::Num(Number::U(q.p99_ns))),
                ]),
            );
        }
        if t.dropped_msgs > 0 {
            push_line(
                &mut out,
                Value::Object(vec![
                    ("record".into(), Value::Str("counter".into())),
                    ("run".into(), Value::Str(run.into())),
                    ("name".into(), Value::Str("dropped_msgs".into())),
                    ("value".into(), Value::Num(Number::U(t.dropped_msgs))),
                ]),
            );
        }
    }

    // Dropped spans get an explicit counter line (not just the header
    // field) whenever a ring overflowed, so truncation is visible to the
    // same tooling that reads the metric counters and can't masquerade as
    // idle time downstream.
    if let Some(t) = trace {
        if t.dropped > 0 {
            push_line(
                &mut out,
                Value::Object(vec![
                    ("record".into(), Value::Str("counter".into())),
                    ("run".into(), Value::Str(run.into())),
                    ("name".into(), Value::Str("dropped_events".into())),
                    ("value".into(), Value::Num(Number::U(t.dropped))),
                ]),
            );
        }
    }

    for (name, value) in &snapshot.counters {
        push_line(
            &mut out,
            Value::Object(vec![
                ("record".into(), Value::Str("counter".into())),
                ("run".into(), Value::Str(run.into())),
                ("name".into(), Value::Str(name.clone())),
                ("value".into(), Value::Num(Number::U(*value))),
            ]),
        );
    }
    for (name, gauge) in &snapshot.gauges {
        push_line(
            &mut out,
            Value::Object(vec![
                ("record".into(), Value::Str("gauge".into())),
                ("run".into(), Value::Str(run.into())),
                ("name".into(), Value::Str(name.clone())),
                ("current".into(), Value::Num(Number::I(gauge.current))),
                ("max".into(), Value::Num(Number::I(gauge.max))),
            ]),
        );
    }
    out
}

fn push_line(out: &mut String, v: Value) {
    out.push_str(&serde_json::to_string(&v).expect("jsonl serialization"));
    out.push('\n');
}

/// Parse JSON-lines text back into `(run, snapshot)` pairs — the inverse
/// of [`render`] over the metric lines (the run header is consumed for
/// grouping only).
pub fn parse(text: &str) -> Result<Vec<(String, MetricsSnapshot)>, String> {
    use std::collections::BTreeMap;
    let mut runs: Vec<String> = Vec::new();
    let mut by_run: BTreeMap<String, MetricsSnapshot> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let run = v
            .field("run")
            .as_str()
            .ok_or_else(|| format!("line {}: missing run tag", lineno + 1))?
            .to_string();
        if !by_run.contains_key(&run) {
            runs.push(run.clone());
            by_run.insert(run.clone(), MetricsSnapshot::default());
        }
        let snap = by_run.get_mut(&run).expect("inserted above");
        match v.field("record").as_str() {
            Some("counter") => {
                let name = v
                    .field("name")
                    .as_str()
                    .ok_or_else(|| format!("line {}: counter without name", lineno + 1))?;
                let value = v
                    .field("value")
                    .as_u64()
                    .ok_or_else(|| format!("line {}: counter without value", lineno + 1))?;
                snap.counters.insert(name.to_string(), value);
            }
            Some("gauge") => {
                let name = v
                    .field("name")
                    .as_str()
                    .ok_or_else(|| format!("line {}: gauge without name", lineno + 1))?;
                let current = v.field("current").as_i64().unwrap_or(0);
                let max = v.field("max").as_i64().unwrap_or(0);
                snap.gauges
                    .insert(name.to_string(), crate::GaugeValue { current, max });
            }
            Some("run") => {}
            // Comm-matrix lines carry per-peer flow statistics, not
            // metric counters; readers that want them parse the lines
            // directly. Skipped here so old snapshot-oriented callers
            // keep working on new files.
            Some("comm") => {}
            other => {
                return Err(format!(
                    "line {}: unknown record type {other:?}",
                    lineno + 1
                ))
            }
        }
    }
    Ok(runs
        .into_iter()
        .map(|r| {
            let snap = by_run.remove(&r).expect("populated above");
            (r, snap)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, Metrics, Recorder};

    #[test]
    fn render_then_parse_round_trips() {
        let m = Metrics::new();
        m.counter(names::MESSAGES_SENT).add(12);
        m.counter(names::BYTES_SENT).add(4096);
        m.counter(names::STEALS).add(9);
        m.counter(names::STEAL_FAILS).add(2);
        m.counter(names::OVERFLOW_PUSHES).add(1);
        m.gauge(names::QUEUE_DEPTH).add(5);
        m.gauge(names::QUEUE_DEPTH).add(-2);
        let rec = Recorder::new();
        rec.local().task(0, 0, 0, 0, 10);
        let trace = rec.drain();

        let text = render("base_4x4", &m.snapshot(), Some(&trace));
        assert!(text.lines().count() >= 4);
        assert!(text.lines().all(|l| l.starts_with('{')));

        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let (run, snap) = &parsed[0];
        assert_eq!(run, "base_4x4");
        assert_eq!(snap.counter(names::MESSAGES_SENT), 12);
        // The work-stealing counters export like any other counter.
        assert_eq!(snap.counter(names::STEALS), 9);
        assert_eq!(snap.counter(names::STEAL_FAILS), 2);
        assert_eq!(snap.counter(names::OVERFLOW_PUSHES), 1);
        assert_eq!(snap.gauge_max(names::QUEUE_DEPTH), 5);
        assert_eq!(snap.gauges[names::QUEUE_DEPTH].current, 3);
    }

    #[test]
    fn multiple_runs_keep_order_and_separation() {
        let m1 = Metrics::new();
        m1.counter("x").add(1);
        let m2 = Metrics::new();
        m2.counter("x").add(2);
        let mut text = render("b", &m1.snapshot(), None);
        text.push_str(&render("a", &m2.snapshot(), None));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed[0].0, "b");
        assert_eq!(parsed[1].0, "a");
        assert_eq!(parsed[0].1.counter("x"), 1);
        assert_eq!(parsed[1].1.counter("x"), 2);
    }

    #[test]
    fn dropped_spans_surface_as_counter_line() {
        let m = Metrics::new();
        let rec = Recorder::with_capacity(2);
        let l = rec.local();
        for i in 0..6u64 {
            l.task(0, 0, 0, i, i + 1);
        }
        let trace = rec.drain();
        assert!(trace.dropped > 0, "overflow expected");
        let text = render("r", &m.snapshot(), Some(&trace));
        assert!(text.contains("\"dropped_events\""));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed[0].1.counter("dropped_events"), trace.dropped);

        // A complete trace emits no such counter line.
        let rec = Recorder::new();
        rec.local().task(0, 0, 0, 0, 1);
        let text = render("r", &m.snapshot(), Some(&rec.drain()));
        assert!(!text.contains("\"dropped_events\""));
    }

    #[test]
    fn comm_matrix_lines_export_and_parse_tolerantly() {
        let m = Metrics::new();
        m.counter("x").add(1);
        let rec = Recorder::new();
        rec.local().task(0, 0, 0, 0, 10);
        let ml = rec.msg_local();
        ml.record(crate::MsgSpan {
            src: 0,
            dst: 1,
            kind: 0,
            bytes: 256,
            enqueue_ns: 0,
            inject_ns: 10,
            deliver_ns: 100,
        });
        let trace = rec.drain();
        let text = render("r", &m.snapshot(), Some(&trace));
        assert!(text.contains("\"record\":\"comm\""), "{text}");
        assert!(text.contains("\"bytes\":256"), "{text}");
        assert!(text.contains("\"msg_spans\":1"), "{text}");
        // Snapshot-oriented parsing skips comm lines instead of erroring.
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed[0].1.counter("x"), 1);
        // No drops → no dropped_msgs counter line.
        assert!(!text.contains("dropped_msgs\",\"value\""));
    }

    #[test]
    fn scheduler_header_survives_round_trip() {
        let m = Metrics::new();
        m.counter("x").add(7);
        let text = render_with_scheduler("r", Some("heft"), &m.snapshot(), None);
        let header = text.lines().next().unwrap();
        assert!(header.contains("\"scheduler\":\"heft\""), "{header}");
        // Old readers ignore the extra header field.
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed[0].1.counter("x"), 7);
        // And render() itself never emits one.
        let plain = render("r", &m.snapshot(), None);
        assert!(!plain.contains("scheduler"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{\"record\":\"counter\"}").is_err());
        assert!(parse("not json\n").is_err());
    }
}
