//! Prometheus-style text exposition of a run's metrics and live gauges.
//!
//! [`render`] produces the standard `name{labels} value` text format from
//! a [`MetricsSnapshot`], the latest [`LiveSample`]s, and the tracer's
//! [`TracerOverhead`]. The bench harness dumps it next to each figure as
//! `<fig>.prom`; with the `expo-serve` feature a trivial TCP responder
//! (`serve`, behind the `expo-serve` feature) serves the same text over HTTP for a real Prometheus
//! scraper — both sinks are views over the same render, so what a
//! dashboard would see is exactly what lands on disk.

use crate::{CommMatrix, LiveSample, MetricsSnapshot, TracerOverhead};
use std::fmt::Write as _;

/// Metric-name prefix for everything this workspace exports.
pub const PREFIX: &str = "stencil_";

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {PREFIX}{name} {help}");
    let _ = writeln!(out, "# TYPE {PREFIX}{name} {kind}");
}

/// Emit the family header only if no earlier section already declared it
/// (e.g. `steals_total` exists both as a run-total counter in the metric
/// registry and as per-node lines from the live samples; the exposition
/// format allows one HELP/TYPE per family).
fn family_once(out: &mut String, name: &str, kind: &str, help: &str) {
    if !out.contains(&format!("# TYPE {PREFIX}{name} ")) {
        family(out, name, kind, help);
    }
}

fn line(out: &mut String, name: &str, labels: &str, value: f64) {
    // Prometheus floats: render integers without a fraction.
    if value.fract() == 0.0 && value.abs() < 9e15 {
        let _ = writeln!(out, "{PREFIX}{name}{{{labels}}} {}", value as i64);
    } else {
        let _ = writeln!(out, "{PREFIX}{name}{{{labels}}} {value}");
    }
}

/// Render the exposition text for one run: counters and gauges from the
/// metric registry, the latest live sample per node (pass
/// `Live::latest_all()`), and the tracer self-overhead when measured.
pub fn render(
    run: &str,
    snapshot: &MetricsSnapshot,
    live: &[LiveSample],
    overhead: Option<TracerOverhead>,
) -> String {
    render_full(run, snapshot, live, overhead, None)
}

/// [`render`] plus the per-peer communication matrix when one was traced:
/// `stencil_comm_*` families labelled `src`/`dst`, exactly the per-peer
/// totals the static analyzer's edge accounting predicts.
pub fn render_full(
    run: &str,
    snapshot: &MetricsSnapshot,
    live: &[LiveSample],
    overhead: Option<TracerOverhead>,
    comm: Option<&CommMatrix>,
) -> String {
    let mut out = String::new();
    let run_label = format!("run=\"{}\"", run.replace('"', "_"));

    for (name, value) in &snapshot.counters {
        let n = format!("{}_total", sanitize(name));
        family(&mut out, &n, "counter", &format!("Counter {name}."));
        line(&mut out, &n, &run_label, *value as f64);
    }
    for (name, gauge) in &snapshot.gauges {
        let n = sanitize(name);
        family(&mut out, &n, "gauge", &format!("Gauge {name}."));
        line(&mut out, &n, &run_label, gauge.current as f64);
        let nmax = format!("{n}_max");
        family(
            &mut out,
            &nmax,
            "gauge",
            &format!("High-water mark of {name}."),
        );
        line(&mut out, &nmax, &run_label, gauge.max as f64);
    }

    if !live.is_empty() {
        family(
            &mut out,
            "lane_busy",
            "gauge",
            "Per-worker busy fraction over the last sample window.",
        );
        for s in live {
            for (lane, busy) in s.lane_busy.iter().enumerate() {
                let labels = format!("{run_label},node=\"{}\",lane=\"{lane}\"", s.node);
                line(&mut out, "lane_busy", &labels, *busy);
            }
        }
        // Family name, HELP text, and the sample field it exposes.
        type NodeGauge = (&'static str, &'static str, fn(&LiveSample) -> f64);
        let per_node: &[NodeGauge] = &[
            (
                "occupancy_window",
                "Mean worker occupancy over the last sample window.",
                |s| s.occupancy(),
            ),
            ("ready_depth", "Ready-queue depth at sample time.", |s| {
                s.ready_depth as f64
            }),
            ("pending_tasks", "Pending-table size at sample time.", |s| {
                s.pending_tasks as f64
            }),
            (
                "inflight_messages",
                "Network messages in flight at sample time.",
                |s| s.inflight_msgs as f64,
            ),
            (
                "inflight_bytes",
                "Network bytes in flight at sample time.",
                |s| s.inflight_bytes as f64,
            ),
            (
                "sample_time_ns",
                "Engine-clock time of the last sample, nanoseconds.",
                |s| s.t_ns as f64,
            ),
        ];
        for (name, help, get) in per_node {
            family(&mut out, name, "gauge", help);
            for s in live {
                let labels = format!("{run_label},node=\"{}\"", s.node);
                line(&mut out, name, &labels, get(s));
            }
        }
        family(
            &mut out,
            "dropped_events_total",
            "counter",
            "Telemetry spans dropped by full rings.",
        );
        for s in live {
            let labels = format!("{run_label},node=\"{}\"", s.node);
            line(
                &mut out,
                "dropped_events_total",
                &labels,
                s.dropped_events as f64,
            );
        }
        // Work-stealing counters, per node. `family_once`: a run-total
        // `steals_total` may already exist from the metric registry (the
        // mp executor folds totals in); per-node lines join the same
        // family rather than redeclaring it.
        type NodeCounter = (&'static str, &'static str, fn(&LiveSample) -> f64);
        let steal_counters: &[NodeCounter] = &[
            (
                "steals_total",
                "Successful task steals by this node's workers.",
                |s| s.steals as f64,
            ),
            (
                "steal_fails_total",
                "Full steal sweeps that found no task.",
                |s| s.steal_fails as f64,
            ),
            (
                "overflow_pushes_total",
                "Deque-full pushes spilled to the overflow injector.",
                |s| s.overflow_pushes as f64,
            ),
        ];
        for (name, help, get) in steal_counters {
            family_once(&mut out, name, "counter", help);
            for s in live {
                let labels = format!("{run_label},node=\"{}\"", s.node);
                line(&mut out, name, &labels, get(s));
            }
        }
    }

    if let Some(matrix) = comm.filter(|m| !m.is_empty()) {
        type PeerStat = (&'static str, &'static str, &'static str);
        let fams: &[PeerStat] = &[
            (
                "comm_messages_total",
                "counter",
                "Traced messages sent src to dst.",
            ),
            (
                "comm_bytes_total",
                "counter",
                "Traced payload bytes sent src to dst.",
            ),
            (
                "comm_latency_mean_ns",
                "gauge",
                "Mean in-flight latency (deliver minus inject), src to dst.",
            ),
            (
                "comm_latency_p99_ns",
                "gauge",
                "p99 in-flight latency, src to dst.",
            ),
            (
                "comm_queue_mean_ns",
                "gauge",
                "Mean queueing delay (inject minus enqueue), src to dst.",
            ),
        ];
        for (name, kind, help) in fams {
            family(&mut out, name, kind, help);
            for (&(src, dst), flow) in &matrix.peers {
                let labels = format!("{run_label},src=\"{src}\",dst=\"{dst}\"");
                let lat = flow.latency_summary();
                let q = flow.queue_summary();
                let value = match *name {
                    "comm_messages_total" => flow.messages as f64,
                    "comm_bytes_total" => flow.bytes as f64,
                    "comm_latency_mean_ns" => lat.mean_ns,
                    "comm_latency_p99_ns" => lat.p99_ns as f64,
                    _ => q.mean_ns,
                };
                line(&mut out, name, &labels, value);
            }
        }
        family(
            &mut out,
            "comm_dropped_msgs_total",
            "counter",
            "Message spans dropped by full msg rings (matrix is a lower bound when nonzero).",
        );
        line(
            &mut out,
            "comm_dropped_msgs_total",
            &run_label,
            matrix.dropped as f64,
        );
    }

    if let Some(oh) = overhead {
        family(
            &mut out,
            "tracer_events_total",
            "counter",
            "Span-record attempts over the run.",
        );
        line(
            &mut out,
            "tracer_events_total",
            &run_label,
            oh.events as f64,
        );
        family(
            &mut out,
            "tracer_per_event_ns",
            "gauge",
            "Calibrated cost of one span record, nanoseconds.",
        );
        line(&mut out, "tracer_per_event_ns", &run_label, oh.per_event_ns);
        family(
            &mut out,
            "tracer_overhead_fraction",
            "gauge",
            "Instrumentation time as a fraction of total lane time.",
        );
        line(
            &mut out,
            "tracer_overhead_fraction",
            &run_label,
            oh.fraction(),
        );
    }
    out
}

/// Trivial HTTP responder serving the exposition text, behind the
/// `expo-serve` feature (uses only `std::net`). One thread, one request
/// at a time — enough for a scraper or a `curl` while a bench runs.
#[cfg(feature = "expo-serve")]
pub mod serve {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::Duration;

    /// Handle to a running exposition server; dropping it stops the
    /// thread.
    pub struct ExpoServer {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl ExpoServer {
        /// The bound address (useful with port 0).
        pub fn addr(&self) -> SocketAddr {
            self.addr
        }

        /// Stop the server thread and wait for it.
        pub fn shutdown(mut self) {
            self.stop_and_join();
        }

        fn stop_and_join(&mut self) {
            self.stop.store(true, Ordering::Release);
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }

    impl Drop for ExpoServer {
        fn drop(&mut self) {
            self.stop_and_join();
        }
    }

    /// Bind `addr` and serve `render()`'s output to every connection as
    /// an HTTP 200 `text/plain` response. The render closure runs per
    /// request, so scrapes always see current gauges.
    pub fn spawn<F>(addr: impl ToSocketAddrs, render: F) -> std::io::Result<ExpoServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_thread.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((mut conn, _)) => {
                        let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
                        // Drain (and ignore) the request line + headers.
                        let mut buf = [0u8; 1024];
                        let _ = conn.read(&mut buf);
                        let body = render();
                        let _ = write!(
                            conn,
                            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
                            body.len(),
                            body
                        );
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ExpoServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, Metrics};

    fn sample(node: u32) -> LiveSample {
        LiveSample {
            t_ns: 1_000,
            window_ns: 500,
            node,
            lane_busy: vec![0.5, 1.0],
            ready_depth: 3,
            pending_tasks: 7,
            inflight_msgs: 2,
            inflight_bytes: 8192,
            dropped_events: 0,
            steals: 11,
            steal_fails: 4,
            overflow_pushes: 1,
        }
    }

    #[test]
    fn render_emits_wellformed_exposition() {
        let m = Metrics::new();
        m.counter(names::TASKS_EXECUTED).add(42);
        m.gauge(names::QUEUE_DEPTH).add(5);
        let oh = TracerOverhead {
            events: 100,
            per_event_ns: 25.0,
            total_ns: 2_500,
            lane_time_ns: 1_000_000,
        };
        let text = render("base", &m.snapshot(), &[sample(0), sample(1)], Some(oh));

        assert!(text.contains("stencil_tasks_executed_total{run=\"base\"} 42"));
        assert!(text.contains("stencil_queue_depth{run=\"base\"} 5"));
        assert!(text.contains("stencil_lane_busy{run=\"base\",node=\"0\",lane=\"1\"} 1"));
        assert!(text.contains("stencil_ready_depth{run=\"base\",node=\"1\"} 3"));
        assert!(text.contains("stencil_inflight_bytes{run=\"base\",node=\"0\"} 8192"));
        assert!(text.contains("stencil_tracer_overhead_fraction{run=\"base\"} 0.0025"));
        // Work-stealing counters reach the exposition per node.
        assert!(text.contains("stencil_steals_total{run=\"base\",node=\"1\"} 11"));
        assert!(text.contains("stencil_steal_fails_total{run=\"base\",node=\"0\"} 4"));
        assert!(text.contains("stencil_overflow_pushes_total{run=\"base\",node=\"0\"} 1"));

        // Every non-comment line is `name{labels} value` with a numeric
        // value, and every family has HELP + TYPE.
        for l in text.lines() {
            if l.starts_with('#') {
                assert!(l.starts_with("# HELP ") || l.starts_with("# TYPE "), "{l}");
                continue;
            }
            let (name, value) = l.rsplit_once(' ').expect("metric line");
            assert!(name.starts_with(PREFIX), "{l}");
            assert!(name.contains('{') && name.ends_with('}'), "{l}");
            assert!(value.parse::<f64>().is_ok(), "{l}");
        }
        for l in text.lines().filter(|l| !l.starts_with('#')) {
            let fam = l.split('{').next().unwrap();
            assert!(
                text.contains(&format!("# TYPE {fam} ")),
                "family {fam} typed"
            );
        }
    }

    #[test]
    fn steal_family_not_redeclared_when_registry_exports_it() {
        let m = Metrics::new();
        m.counter(names::STEALS).add(100);
        let text = render("x", &m.snapshot(), &[sample(0)], None);
        let declarations = text.matches("# TYPE stencil_steals_total ").count();
        assert_eq!(declarations, 1, "one TYPE line per family:\n{text}");
        // Both the run total and the per-node line are present.
        assert!(text.contains("stencil_steals_total{run=\"x\"} 100"));
        assert!(text.contains("stencil_steals_total{run=\"x\",node=\"0\"} 11"));
    }

    #[test]
    fn comm_matrix_families_export_per_peer() {
        use crate::MsgSpan;
        let m = Metrics::new();
        let msgs = [
            MsgSpan {
                src: 0,
                dst: 1,
                kind: 0,
                bytes: 512,
                enqueue_ns: 0,
                inject_ns: 10,
                deliver_ns: 100,
            },
            MsgSpan {
                src: 1,
                dst: 0,
                kind: 0,
                bytes: 256,
                enqueue_ns: 5,
                inject_ns: 5,
                deliver_ns: 60,
            },
        ];
        let matrix = crate::CommMatrix::from_msgs(&msgs, 0);
        let text = render_full("ca", &m.snapshot(), &[], None, Some(&matrix));
        assert!(text.contains("stencil_comm_messages_total{run=\"ca\",src=\"0\",dst=\"1\"} 1"));
        assert!(text.contains("stencil_comm_bytes_total{run=\"ca\",src=\"1\",dst=\"0\"} 256"));
        assert!(text.contains("stencil_comm_latency_p99_ns{run=\"ca\",src=\"0\",dst=\"1\"}"));
        assert!(text.contains("stencil_comm_dropped_msgs_total{run=\"ca\"} 0"));
        // Well-formed: every line still parses.
        for l in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = l.rsplit_once(' ').expect("metric line");
            assert!(value.parse::<f64>().is_ok(), "{l}");
        }
        // An empty matrix emits no comm families at all.
        let empty = crate::CommMatrix::default();
        let text = render_full("ca", &m.snapshot(), &[], None, Some(&empty));
        assert!(!text.contains("comm_"), "{text}");
    }

    #[test]
    fn render_without_live_or_overhead_is_metrics_only() {
        let m = Metrics::new();
        m.counter("a.b c").add(1);
        let text = render("x", &m.snapshot(), &[], None);
        assert!(text.contains("stencil_a_b_c_total{run=\"x\"} 1"), "{text}");
        assert!(!text.contains("lane_busy"));
        assert!(!text.contains("tracer_"));
    }

    #[cfg(feature = "expo-serve")]
    #[test]
    fn serve_responds_with_exposition_text() {
        use std::io::{Read, Write};
        let server =
            serve::spawn("127.0.0.1:0", || "stencil_up{run=\"t\"} 1\n".to_string()).expect("bind");
        let addr = server.addr();
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
        assert!(resp.contains("stencil_up{run=\"t\"} 1"), "{resp}");
        server.shutdown();
    }
}
