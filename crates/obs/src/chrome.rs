//! Chrome `trace_event` export/import: render a [`Trace`] as JSON that
//! Perfetto and `chrome://tracing` load directly, and parse such JSON
//! back into a [`Trace`] for round-trip tests and offline analysis.
//!
//! Each span becomes one complete event (`"ph":"X"`): `pid` is the node,
//! `tid` the lane, `ts`/`dur` are microseconds as the format requires,
//! and the exact nanosecond interval rides along in `args` so parsing
//! back is lossless.
//!
//! Each traced cross-node message ([`crate::MsgSpan`]) becomes a flow
//! arrow — a `"ph":"s"` event on the sender's comm lane at injection
//! time paired with a `"ph":"f"` event on the receiver's comm lane at
//! delivery time — so Perfetto draws the transfer as an arrow between
//! the two nodes' comm tracks. The exact spans also ride along in a
//! top-level `msgSpans` array so the round trip stays lossless (flow
//! events quantize to microseconds).

use crate::{MsgSpan, SpanRecord, Trace};
use serde::{Number, Value};
use std::collections::BTreeMap;

/// Render the trace as a Chrome trace JSON object.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<Value> = trace.spans.iter().map(|s| event(trace, s)).collect();
    // Bind each flow arrow to the node's comm lane when the trace shows
    // one (arrows attach to slices on the same pid/tid), lane 0 otherwise.
    let mut comm_lane: BTreeMap<u32, u64> = BTreeMap::new();
    for s in &trace.spans {
        if s.kind == crate::KIND_COMM {
            comm_lane.entry(s.node).or_insert(s.lane as u64);
        }
    }
    for (i, m) in trace.msgs.iter().enumerate() {
        let lane_of = |node: u32| comm_lane.get(&node).copied().unwrap_or(0);
        events.push(flow_event(
            trace,
            m,
            i as u64,
            "s",
            m.inject_ns,
            m.src,
            lane_of(m.src),
        ));
        events.push(flow_event(
            trace,
            m,
            i as u64,
            "f",
            m.deliver_ns,
            m.dst,
            lane_of(m.dst),
        ));
    }
    let kinds: Vec<(String, Value)> = trace
        .kinds
        .iter()
        .map(|(k, name)| (k.to_string(), Value::Str(name.clone())))
        .collect();
    let msgs: Vec<Value> = trace.msgs.iter().map(msg_value).collect();
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ns".into())),
        ("kinds".into(), Value::Object(kinds)),
        ("droppedSpans".into(), Value::Num(Number::U(trace.dropped))),
        ("msgSpans".into(), Value::Array(msgs)),
        (
            "droppedMsgs".into(),
            Value::Num(Number::U(trace.dropped_msgs)),
        ),
    ]);
    serde_json::to_string(&doc).expect("chrome trace serialization")
}

fn msg_value(m: &MsgSpan) -> Value {
    Value::Object(vec![
        ("src".into(), Value::Num(Number::U(m.src as u64))),
        ("dst".into(), Value::Num(Number::U(m.dst as u64))),
        ("kind".into(), Value::Num(Number::U(m.kind as u64))),
        ("bytes".into(), Value::Num(Number::U(m.bytes))),
        ("enqueue_ns".into(), Value::Num(Number::U(m.enqueue_ns))),
        ("inject_ns".into(), Value::Num(Number::U(m.inject_ns))),
        ("deliver_ns".into(), Value::Num(Number::U(m.deliver_ns))),
    ])
}

fn flow_event(
    trace: &Trace,
    m: &MsgSpan,
    id: u64,
    ph: &str,
    ts_ns: u64,
    node: u32,
    tid: u64,
) -> Value {
    let mut fields = vec![
        (
            "name".into(),
            Value::Str(format!("msg:{}", kind_name(trace, m.kind))),
        ),
        ("cat".into(), Value::Str("msg".into())),
        ("ph".into(), Value::Str(ph.into())),
        ("id".into(), Value::Num(Number::U(id))),
        ("ts".into(), Value::Num(Number::F(ts_ns as f64 / 1e3))),
        ("pid".into(), Value::Num(Number::U(node as u64))),
        ("tid".into(), Value::Num(Number::U(tid))),
    ];
    if ph == "f" {
        // Bind the arrow head to the enclosing slice rather than the
        // next one, the conventional choice for delivery-time arrows.
        fields.push(("bp".into(), Value::Str("e".into())));
    }
    Value::Object(fields)
}

/// Display name for a span's kind: the registered name when there is
/// one, `"comm"` for an unregistered comm-lane span, `kindN` otherwise.
pub fn kind_name(trace: &Trace, kind: u32) -> String {
    trace.kinds.get(&kind).cloned().unwrap_or_else(|| {
        if kind == crate::KIND_COMM {
            "comm".to_string()
        } else {
            format!("kind{kind}")
        }
    })
}

fn event(trace: &Trace, s: &SpanRecord) -> Value {
    let cat = if s.kind == crate::KIND_COMM {
        "comm"
    } else {
        "task"
    };
    let mut args = vec![
        ("kind".into(), Value::Num(Number::U(s.kind as u64))),
        ("start_ns".into(), Value::Num(Number::U(s.start_ns))),
        ("end_ns".into(), Value::Num(Number::U(s.end_ns))),
    ];
    if let Some(task) = s.task_instance() {
        args.push(("task".into(), Value::Num(Number::U(task))));
    }
    Value::Object(vec![
        ("name".into(), Value::Str(kind_name(trace, s.kind))),
        ("cat".into(), Value::Str(cat.into())),
        ("ph".into(), Value::Str("X".into())),
        ("ts".into(), Value::Num(Number::F(s.start_ns as f64 / 1e3))),
        (
            "dur".into(),
            Value::Num(Number::F(s.duration_ns() as f64 / 1e3)),
        ),
        ("pid".into(), Value::Num(Number::U(s.node as u64))),
        ("tid".into(), Value::Num(Number::U(s.lane as u64))),
        ("args".into(), Value::Object(args)),
    ])
}

/// Parse error for [`from_chrome_json`].
#[derive(Debug)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chrome trace parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse Chrome trace JSON (as produced by [`to_chrome_json`], or the
/// bare `[...]` event-array form) back into a [`Trace`].
pub fn from_chrome_json(text: &str) -> Result<Trace, ParseError> {
    let doc: Value = serde_json::from_str(text).map_err(|e| ParseError(e.to_string()))?;
    let (events, kinds, dropped, msgs, dropped_msgs) = match &doc {
        Value::Array(events) => (events.as_slice(), BTreeMap::new(), 0, Vec::new(), 0),
        Value::Object(_) => {
            let events = doc
                .field("traceEvents")
                .as_array()
                .ok_or_else(|| ParseError("missing traceEvents array".into()))?;
            let mut kinds = BTreeMap::new();
            if let Some(pairs) = doc.field("kinds").as_object() {
                for (k, v) in pairs {
                    let kind = k
                        .parse::<u32>()
                        .map_err(|_| ParseError(format!("bad kind tag `{k}`")))?;
                    let name = v
                        .as_str()
                        .ok_or_else(|| ParseError(format!("kind `{k}` name not a string")))?;
                    kinds.insert(kind, name.to_string());
                }
            }
            let dropped = doc.field("droppedSpans").as_u64().unwrap_or(0);
            let mut msgs = Vec::new();
            if let Some(entries) = doc.field("msgSpans").as_array() {
                for m in entries {
                    msgs.push(parse_msg(m)?);
                }
            }
            let dropped_msgs = doc.field("droppedMsgs").as_u64().unwrap_or(0);
            (events, kinds, dropped, msgs, dropped_msgs)
        }
        _ => return Err(ParseError("expected object or array at top level".into())),
    };

    let mut spans = Vec::new();
    let mut kinds = kinds;
    for ev in events {
        if ev.field("ph").as_str() != Some("X") {
            continue; // metadata or instant events: not spans
        }
        let span = parse_event(ev)?;
        // Recover kind names from event names when the kinds table lacks
        // them (bare-array traces), so names survive the round trip.
        if let std::collections::btree_map::Entry::Vacant(slot) = kinds.entry(span.kind) {
            if let Some(name) = ev.field("name").as_str() {
                if name != format!("kind{}", span.kind) {
                    slot.insert(name.to_string());
                }
            }
        }
        spans.push(span);
    }
    spans.sort_by_key(|s| (s.start_ns, s.node, s.lane, s.end_ns));
    let mut msgs = msgs;
    msgs.sort_by_key(|m| (m.enqueue_ns, m.src, m.dst, m.inject_ns, m.deliver_ns));
    Ok(Trace {
        spans,
        msgs,
        kinds,
        dropped,
        dropped_msgs,
    })
}

fn parse_msg(m: &Value) -> Result<MsgSpan, ParseError> {
    let uint = |what: &str| {
        m.field(what)
            .as_u64()
            .ok_or_else(|| ParseError(format!("msgSpan {what} is not an unsigned integer")))
    };
    Ok(MsgSpan {
        src: uint("src")? as u32,
        dst: uint("dst")? as u32,
        kind: uint("kind")? as u32,
        bytes: uint("bytes")?,
        enqueue_ns: uint("enqueue_ns")?,
        inject_ns: uint("inject_ns")?,
        deliver_ns: uint("deliver_ns")?,
    })
}

fn parse_event(ev: &Value) -> Result<SpanRecord, ParseError> {
    let uint = |v: &Value, what: &str| {
        v.as_u64()
            .ok_or_else(|| ParseError(format!("event {what} is not an unsigned integer")))
    };
    let node = uint(ev.field("pid"), "pid")? as u32;
    let lane = uint(ev.field("tid"), "tid")? as u32;
    let args = ev.field("args");
    let (kind, start_ns, end_ns) = if args.field("start_ns").as_u64().is_some() {
        (
            uint(args.field("kind"), "args.kind")? as u32,
            uint(args.field("start_ns"), "args.start_ns")?,
            uint(args.field("end_ns"), "args.end_ns")?,
        )
    } else {
        // Foreign trace: reconstruct from the microsecond ts/dur fields.
        let ts = ev
            .field("ts")
            .as_f64()
            .ok_or_else(|| ParseError("event ts missing".into()))?;
        let dur = ev.field("dur").as_f64().unwrap_or(0.0);
        let start = (ts * 1e3).round() as u64;
        (0, start, start + (dur * 1e3).round() as u64)
    };
    if end_ns < start_ns {
        return Err(ParseError(format!(
            "span on node {node} lane {lane} ends before it starts"
        )));
    }
    let task = args.field("task").as_u64().unwrap_or(SpanRecord::NO_TASK);
    Ok(SpanRecord {
        node,
        lane,
        kind,
        start_ns,
        end_ns,
        task,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_trace() -> Trace {
        let rec = Recorder::new();
        rec.register_kind(0, "interior");
        rec.register_kind(1, "boundary");
        rec.register_kind(crate::KIND_COMM, "comm");
        let l = rec.local();
        l.task(0, 0, 0, 0, 1_000);
        l.task(0, 1, 1, 500, 2_500);
        l.comm(1, 4, 100, 900);
        l.task(1, 0, 0, u64::MAX / 2, u64::MAX / 2 + 10); // big ns values survive
        rec.drain()
    }

    #[test]
    fn round_trip_is_lossless() {
        let t = sample_trace();
        let text = to_chrome_json(&t);
        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.spans, t.spans);
        assert_eq!(back.kinds, t.kinds);
        assert_eq!(back.dropped, t.dropped);
    }

    #[test]
    fn output_is_chrome_shaped() {
        let text = to_chrome_json(&sample_trace());
        let doc: Value = serde_json::from_str(&text).unwrap();
        let events = doc.field("traceEvents").as_array().unwrap();
        assert_eq!(events.len(), 4);
        for ev in events {
            assert_eq!(ev.field("ph").as_str(), Some("X"));
            assert!(ev.field("ts").as_f64().is_some());
            assert!(ev.field("pid").as_u64().is_some());
            assert!(ev.field("tid").as_u64().is_some());
        }
        // named via the kind table, categorized by task vs comm
        assert!(text.contains("\"interior\""));
        assert!(text.contains("\"cat\":\"comm\""));
    }

    #[test]
    fn parses_bare_event_array_with_ts_dur() {
        let text = r#"[
            {"name":"x","ph":"X","ts":1.5,"dur":2.0,"pid":0,"tid":3},
            {"name":"meta","ph":"M","pid":0,"tid":0}
        ]"#;
        let t = from_chrome_json(text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.spans[0].start_ns, 1_500);
        assert_eq!(t.spans[0].end_ns, 3_500);
        assert_eq!(t.spans[0].lane, 3);
    }

    #[test]
    fn comm_lane_is_named_even_when_unregistered() {
        // No register_kind calls at all: the comm lane must still export
        // as "comm", not "kind1000", and the name must survive parsing.
        let rec = Recorder::new();
        let l = rec.local();
        l.task(0, 0, 0, 0, 10);
        l.comm(0, 2, 10, 20);
        let t = rec.drain();
        assert!(t.kinds.is_empty());

        let text = to_chrome_json(&t);
        assert!(text.contains("\"name\":\"comm\""));
        assert!(!text.contains("kind1000"));

        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.spans, t.spans);
        assert_eq!(
            back.kinds.get(&crate::KIND_COMM).map(String::as_str),
            Some("comm")
        );
        // Re-export of the parsed trace still names the comm lane.
        assert!(to_chrome_json(&back).contains("\"name\":\"comm\""));
    }

    #[test]
    fn task_instance_ids_round_trip() {
        let rec = Recorder::new();
        let l = rec.local();
        l.task_instance(0, 1, 0, 0xdead_beef, 0, 100);
        l.task(0, 0, 0, 0, 50);
        let t = rec.drain();
        let back = from_chrome_json(&to_chrome_json(&t)).unwrap();
        assert_eq!(back.spans, t.spans);
        let ids: Vec<Option<u64>> = back.spans.iter().map(|s| s.task_instance()).collect();
        assert!(ids.contains(&Some(0xdead_beef)));
        assert!(ids.contains(&None));
    }

    #[test]
    fn msg_spans_round_trip_with_flow_arrows() {
        let rec = Recorder::new();
        rec.register_kind(0, "interior");
        let l = rec.local();
        l.task(0, 0, 0, 0, 100);
        l.comm(0, 2, 100, 150); // comm lane 2 on node 0
        l.comm(1, 2, 160, 200);
        let m = rec.msg_local();
        m.record(crate::MsgSpan {
            src: 0,
            dst: 1,
            kind: 0,
            bytes: 64,
            enqueue_ns: 100,
            inject_ns: 110,
            deliver_ns: 190,
        });
        let t = rec.drain();
        let text = to_chrome_json(&t);

        // One "s"/"f" pair per message, bound to the comm lanes.
        assert!(text.contains("\"ph\":\"s\""), "{text}");
        assert!(text.contains("\"ph\":\"f\""), "{text}");
        assert!(text.contains("\"cat\":\"msg\""), "{text}");
        assert!(text.contains("msg:interior"), "{text}");

        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.msgs, t.msgs, "msg spans survive the round trip");
        assert_eq!(back.dropped_msgs, t.dropped_msgs);
        assert_eq!(back.spans, t.spans, "flow events do not pollute spans");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_chrome_json("42").is_err());
        assert!(from_chrome_json("{\"noTraceEvents\":[]}").is_err());
        assert!(from_chrome_json("not json").is_err());
    }
}
