//! The roofline model (Williams, Waterman, Patterson) used by the paper in
//! Section VI-A to bound attainable stencil performance.
//!
//! The paper estimates the 5-point update's arithmetic intensity at
//! 0.37–0.56 flop/byte (9 flops against 24 or 16 bytes of traffic) and
//! derives expected peaks of 14.5–21.9 GFLOP/s (NaCL) and 63.8–96.6 GFLOP/s
//! (Stampede2).

use crate::profile::MachineProfile;
use serde::Serialize;

/// Flops per grid-point update in the paper's generalized 5-point stencil:
/// 5 multiplications + 4 additions.
pub const STENCIL_FLOPS_PER_POINT: f64 = 9.0;

/// Bytes per point when tile rows are cache-resident: one 8-byte read of the
/// point plus one 8-byte write of the result.
pub const STENCIL_BYTES_CACHED: f64 = 16.0;

/// Bytes per point when neighbouring rows must be re-fetched from memory.
pub const STENCIL_BYTES_STREAMED: f64 = 24.0;

/// Arithmetic intensity in flop/byte.
pub fn arithmetic_intensity(flops: f64, bytes: f64) -> f64 {
    assert!(bytes > 0.0, "bytes must be positive");
    flops / bytes
}

/// The stencil's arithmetic-intensity range quoted in the paper:
/// (9/24, 9/16) = (0.375, 0.5625).
pub fn stencil_intensity_range() -> (f64, f64) {
    (
        arithmetic_intensity(STENCIL_FLOPS_PER_POINT, STENCIL_BYTES_STREAMED),
        arithmetic_intensity(STENCIL_FLOPS_PER_POINT, STENCIL_BYTES_CACHED),
    )
}

/// Attainable flop/s for a kernel of intensity `ai` on a machine with the
/// given memory bandwidth (bytes/s) and compute peak (flop/s):
/// `min(peak, ai × bw)`.
pub fn attainable_flops(ai: f64, mem_bw: f64, peak_flops: f64) -> f64 {
    (ai * mem_bw).min(peak_flops)
}

/// Roofline prediction for a whole node of `profile` at intensity `ai`.
pub fn node_attainable_flops(profile: &MachineProfile, ai: f64) -> f64 {
    attainable_flops(
        ai,
        profile.mem_bw_node,
        profile.flops_per_core * profile.cores_per_node as f64,
    )
}

/// The paper's expected-performance window for the stencil on one node:
/// attainable GFLOP/s at the low and high intensity bounds.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RooflineWindow {
    /// GFLOP/s at 0.375 flop/byte (streamed traffic).
    pub low_gflops: f64,
    /// GFLOP/s at 0.5625 flop/byte (cached traffic).
    pub high_gflops: f64,
}

/// Compute the expected window for one node.
pub fn stencil_window(profile: &MachineProfile) -> RooflineWindow {
    let (lo, hi) = stencil_intensity_range();
    RooflineWindow {
        low_gflops: node_attainable_flops(profile, lo) / 1e9,
        high_gflops: node_attainable_flops(profile, hi) / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_range_matches_paper() {
        let (lo, hi) = stencil_intensity_range();
        assert!((lo - 0.375).abs() < 1e-12);
        assert!((hi - 0.5625).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_bound_kernels_scale_with_bw() {
        // Low intensity: memory bound.
        assert_eq!(attainable_flops(0.5, 100e9, 1e15), 50e9);
        // High intensity: compute bound.
        assert_eq!(attainable_flops(100.0, 100e9, 1e12), 1e12);
    }

    #[test]
    fn nacl_window_matches_paper_section_vi_a() {
        // Paper: "effective peak performance between 14.5 to 21.9 GFLOP/s"
        // using the achieved 39.1 GB/s. Our profile stores Table I's
        // 40.09 GB/s so the window is marginally higher; check within 5%.
        let w = stencil_window(&MachineProfile::nacl());
        assert!(
            (w.low_gflops - 14.5).abs() / 14.5 < 0.05,
            "low = {}",
            w.low_gflops
        );
        assert!(
            (w.high_gflops - 21.9).abs() / 21.9 < 0.05,
            "high = {}",
            w.high_gflops
        );
    }

    #[test]
    fn stampede2_window_matches_paper_section_vi_a() {
        // Paper: 63.8 to 96.6 GFLOP/s at the achieved 172.5 GB/s.
        let w = stencil_window(&MachineProfile::stampede2());
        assert!(
            (w.low_gflops - 63.8).abs() / 63.8 < 0.05,
            "low = {}",
            w.low_gflops
        );
        assert!(
            (w.high_gflops - 96.6).abs() / 96.6 < 0.05,
            "high = {}",
            w.high_gflops
        );
    }

    #[test]
    #[should_panic(expected = "bytes must be positive")]
    fn zero_bytes_rejected() {
        arithmetic_intensity(9.0, 0.0);
    }
}
