//! Cost model for the tiled 5-point Jacobi task: how long one tile update
//! takes on one worker core of a given machine.
//!
//! The paper's distributed experiments (Figures 7–10) hinge on three knobs:
//!
//! 1. **Memory-bound service time.** The kernel is bandwidth bound; one
//!    task's time is `points × bytes_per_point / per-thread share of node
//!    bandwidth`. The unoptimized kernel reaches only a fraction of STREAM
//!    (the paper's Figure 6 plateaus at 11 GFLOP/s on NaCL and 43.5 GFLOP/s
//!    on Stampede2, well under the roofline window); that fraction is the
//!    calibrated [`StencilCostModel::kernel_efficiency`].
//! 2. **Cache regime.** Small tiles keep both buffers in a core's cache
//!    share (16 bytes of traffic per point); big tiles stream from DRAM
//!    (24 bytes per point). This reproduces NaCL's fall-off beyond tile
//!    ~300 in Figure 6.
//! 3. **Kernel adjustment ratio.** Figures 8–9 shrink the updated region to
//!    `(ratio·mb) × (ratio·nb)` to emulate a faster memory system or an
//!    optimized kernel; service time scales with `ratio²`.

use crate::profile::MachineProfile;
use crate::roofline::{STENCIL_BYTES_CACHED, STENCIL_BYTES_STREAMED, STENCIL_FLOPS_PER_POINT};
use serde::Serialize;

/// Service-time model for stencil tile tasks on one machine.
#[derive(Debug, Clone, Serialize)]
pub struct StencilCostModel {
    /// The machine this model predicts.
    pub profile: MachineProfile,
    /// Fraction of STREAM COPY bandwidth the naive kernel achieves.
    /// Calibrated against the paper's Figure 6 plateaus: 0.51 for NaCL
    /// (11 GFLOP/s), 0.66 for Stampede2 (43.5 GFLOP/s); 0.55 otherwise.
    pub kernel_efficiency: f64,
    /// Fixed per-task cost in seconds: runtime scheduling plus intra-node
    /// ghost copies. Produces the small-tile fall-off in Figure 6.
    pub task_overhead: f64,
    /// Flops per updated point (9 for the paper's generalized 5-point
    /// update: 5 multiplies + 4 adds).
    pub flops_per_point: f64,
    /// Extra DRAM traffic per point for coefficient loads: 0 for
    /// constant-coefficient stencils (weights live in registers), 40 for
    /// variable coefficients (five f64 weights streamed per point).
    pub coef_bytes_per_point: f64,
}

impl StencilCostModel {
    /// Build the calibrated model for a profile.
    pub fn for_profile(profile: &MachineProfile) -> Self {
        let kernel_efficiency = match profile.name.as_str() {
            "NaCL" => 0.51,
            "Stampede2" => 0.66,
            _ => 0.55,
        };
        StencilCostModel {
            profile: profile.clone(),
            kernel_efficiency,
            task_overhead: 30e-6,
            flops_per_point: STENCIL_FLOPS_PER_POINT,
            coef_bytes_per_point: 0.0,
        }
    }

    /// Switch the model to a variable-coefficient stencil: five extra f64
    /// loads per point.
    pub fn with_variable_coefficients(mut self) -> Self {
        self.coef_bytes_per_point = 40.0;
        self
    }

    /// Memory bandwidth one compute thread can count on when all compute
    /// threads are active, bytes/s.
    pub fn per_thread_bw(&self) -> f64 {
        self.kernel_efficiency * self.profile.mem_bw_node / self.profile.compute_threads() as f64
    }

    /// Effective DRAM traffic per updated point for an `mb × nb` tile.
    ///
    /// When the tile's working set (read + write buffer) fits a core's cache
    /// share the kernel moves 16 B/point; once it exceeds twice the share it
    /// moves 24 B/point, with a linear ramp in between.
    pub fn bytes_per_point(&self, mb: usize, nb: usize) -> f64 {
        let working_set = 2.0 * (mb * nb * 8) as f64;
        let cache = self.profile.cache_per_core;
        let excess = ((working_set - cache) / cache).clamp(0.0, 1.0);
        STENCIL_BYTES_CACHED + (STENCIL_BYTES_STREAMED - STENCIL_BYTES_CACHED) * excess
    }

    /// Memory-bound time (seconds) to sweep `points` grid points of a
    /// kernel whose cache behaviour is that of an `mb × nb` tile. Used both
    /// for the tile proper and for the CA scheme's redundant halo regions.
    pub fn region_time(&self, points: f64, mb: usize, nb: usize) -> f64 {
        points * (self.bytes_per_point(mb, nb) + self.coef_bytes_per_point) / self.per_thread_bw()
    }

    /// Service time (seconds) of one tile-update task: updating the
    /// `(ratio·mb) × (ratio·nb)` sub-region of an `mb × nb` tile on one
    /// worker thread. `ratio = 1.0` is the unmodified kernel.
    pub fn task_time(&self, mb: usize, nb: usize, ratio: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "kernel adjustment ratio out of range: {ratio}"
        );
        let points = (ratio * mb as f64) * (ratio * nb as f64);
        let mem_time = self.region_time(points, mb, nb);
        let flop_time = points * self.flops_per_point / self.profile.flops_per_core;
        self.task_overhead + mem_time.max(flop_time)
    }

    /// Extra time (seconds) to copy `cells` ghost cells in or out of a tile
    /// buffer (read + write of each 8-byte value at the thread's bandwidth
    /// share). This is the "extra copies in the body" that make the CA
    /// kernel's median 153 ms versus 136 ms base in the paper's Figure 10
    /// discussion.
    pub fn ghost_copy_time(&self, cells: usize) -> f64 {
        (cells * 16) as f64 / self.per_thread_bw()
    }

    /// Flops performed by one task at the given ratio.
    pub fn task_flops(&self, mb: usize, nb: usize, ratio: f64) -> f64 {
        (ratio * mb as f64) * (ratio * nb as f64) * self.flops_per_point
    }

    /// Analytic single-node sweep rate for an `n × n` problem cut into
    /// `tile × tile` tiles: the Figure 6 model. Accounts for quantized load
    /// balance (`ceil(tasks / threads)` rounds of task execution).
    pub fn node_gflops_single(&self, n: usize, tile: usize) -> f64 {
        assert!(tile > 0 && n >= tile, "need at least one full tile");
        let tiles_per_side = n / tile;
        let ntasks = tiles_per_side * tiles_per_side;
        let threads = self.profile.compute_threads() as usize;
        let rounds = ntasks.div_ceil(threads);
        let sweep_time = rounds as f64 * self.task_time(tile, tile, 1.0);
        let flops = ntasks as f64 * self.task_flops(tile, tile, 1.0);
        flops / sweep_time / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nacl_model() -> StencilCostModel {
        StencilCostModel::for_profile(&MachineProfile::nacl())
    }

    fn s2_model() -> StencilCostModel {
        StencilCostModel::for_profile(&MachineProfile::stampede2())
    }

    #[test]
    fn small_tiles_are_cached_big_tiles_stream() {
        let m = nacl_model();
        assert_eq!(m.bytes_per_point(100, 100), STENCIL_BYTES_CACHED);
        assert_eq!(m.bytes_per_point(288, 288), STENCIL_BYTES_CACHED);
        assert_eq!(m.bytes_per_point(600, 600), STENCIL_BYTES_STREAMED);
        // the ramp is monotone
        let b400 = m.bytes_per_point(400, 400);
        let b450 = m.bytes_per_point(450, 450);
        assert!(STENCIL_BYTES_CACHED < b400 && b400 < b450 && b450 < STENCIL_BYTES_STREAMED);
    }

    #[test]
    fn nacl_plateau_near_11_gflops() {
        // Figure 6 top: problem 20k, tiles 200-300 yield ~11 GFLOP/s.
        let m = nacl_model();
        for tile in [200, 250, 288, 300] {
            let gf = m.node_gflops_single(20_000, tile);
            assert!((gf - 11.0).abs() < 1.2, "tile {tile}: {gf} GFLOP/s");
        }
    }

    #[test]
    fn nacl_falls_off_at_both_ends() {
        let m = nacl_model();
        let peak = m.node_gflops_single(20_000, 288);
        let small = m.node_gflops_single(20_000, 100);
        let big = m.node_gflops_single(20_000, 500);
        assert!(small < peak, "small {small} vs peak {peak}");
        assert!(big < peak, "big {big} vs peak {peak}");
        // Figure 6: ~7 GFLOP/s at tile 500.
        assert!((big - 7.0).abs() < 1.2, "big tile gives {big}");
    }

    #[test]
    fn stampede2_plateau_near_43_gflops() {
        // Figure 6 bottom: problem 27k, tiles 400-2000 near 43.5 GFLOP/s.
        let m = s2_model();
        for tile in [450, 864, 1350, 1800] {
            let gf = m.node_gflops_single(27_000, tile);
            assert!((gf - 43.5).abs() < 3.0, "tile {tile}: {gf} GFLOP/s");
        }
    }

    #[test]
    fn stampede2_imbalance_hurts_huge_tiles() {
        let m = s2_model();
        let plateau = m.node_gflops_single(27_000, 900);
        let huge = m.node_gflops_single(27_000, 3000);
        assert!(
            huge < plateau * 0.93,
            "huge {huge} not below plateau {plateau}"
        );
    }

    #[test]
    fn ratio_scales_service_time_quadratically() {
        let m = nacl_model();
        let t_full = m.task_time(288, 288, 1.0) - m.task_overhead;
        let t_half = m.task_time(288, 288, 0.5) - m.task_overhead;
        assert!((t_half / t_full - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ratio_zero_leaves_only_overhead() {
        let m = nacl_model();
        assert!((m.task_time(288, 288, 0.0) - m.task_overhead).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "ratio out of range")]
    fn ratio_above_one_rejected() {
        nacl_model().task_time(100, 100, 1.5);
    }

    #[test]
    fn ghost_copy_time_positive_and_linear() {
        let m = nacl_model();
        let t1 = m.ghost_copy_time(1000);
        let t2 = m.ghost_copy_time(2000);
        assert!(t1 > 0.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn task_flops_match_paper_count() {
        let m = nacl_model();
        assert_eq!(m.task_flops(10, 10, 1.0), 900.0);
    }
}
