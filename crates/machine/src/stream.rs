//! A faithful reimplementation of McCalpin's STREAM benchmark
//! (COPY / SCALE / ADD / TRIAD), single- and multi-threaded.
//!
//! The paper's Table I reports STREAM MB/s for one core and one full node of
//! each system; this module reproduces that table on the host machine and
//! supplies the measured COPY bandwidth to [`crate::profile::MachineProfile::localhost`].
//!
//! Methodology follows the original benchmark: arrays much larger than the
//! last-level cache, each kernel repeated `ntimes`, best (minimum) time
//! reported, bandwidth counted as bytes moved per kernel definition
//! (2 arrays for COPY/SCALE, 3 for ADD/TRIAD).

use serde::Serialize;
use std::time::Instant;

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]`
    Triad,
}

impl StreamKernel {
    /// All kernels in Table I column order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    /// Number of arrays the kernel touches (bytes moved = arrays × n × 8).
    pub fn arrays_touched(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 2,
            StreamKernel::Add | StreamKernel::Triad => 3,
        }
    }

    /// Table I column header.
    pub fn label(self) -> &'static str {
        match self {
            StreamKernel::Copy => "COPY",
            StreamKernel::Scale => "SCALE",
            StreamKernel::Add => "ADD",
            StreamKernel::Triad => "TRIAD",
        }
    }
}

/// Result of one STREAM configuration (a Table I row).
#[derive(Debug, Clone, Serialize)]
pub struct StreamResult {
    /// Threads used.
    pub threads: usize,
    /// Elements per array.
    pub n: usize,
    /// Best-time bandwidth per kernel, MB/s (1 MB = 1e6 bytes, as STREAM
    /// and Table I use).
    pub mb_per_s: [f64; 4],
}

impl StreamResult {
    /// Bandwidth of one kernel in MB/s.
    pub fn kernel(&self, k: StreamKernel) -> f64 {
        self.mb_per_s[k as usize]
    }

    /// COPY bandwidth in bytes/s — the figure the paper adopts as "achieved
    /// memory bandwidth".
    pub fn copy_bytes_per_s(&self) -> f64 {
        self.mb_per_s[StreamKernel::Copy as usize] * 1e6
    }
}

/// Run STREAM with `threads` threads over arrays of `n` doubles each,
/// repeating each kernel `ntimes` and keeping the best time.
///
/// `n` should be at least four times the last-level cache (in doubles) for a
/// true memory-bandwidth figure; smaller values are permitted for tests.
pub fn run_stream(threads: usize, n: usize, ntimes: usize) -> StreamResult {
    assert!(threads >= 1, "need at least one thread");
    assert!(n >= threads, "array smaller than thread count");
    assert!(ntimes >= 1, "need at least one repetition");

    let scalar = 3.0f64;
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];

    let mut best = [f64::INFINITY; 4];

    for _ in 0..ntimes {
        let t = time_parallel(threads, &mut a, &mut b, &mut c, |a, b, c| {
            // COPY: c = a
            c.copy_from_slice(a);
            let _ = b;
        });
        best[0] = best[0].min(t);

        let t = time_parallel(threads, &mut a, &mut b, &mut c, |_a, b, c| {
            // SCALE: b = s * c
            for (bi, &ci) in b.iter_mut().zip(c.iter()) {
                *bi = scalar * ci;
            }
        });
        best[1] = best[1].min(t);

        let t = time_parallel(threads, &mut a, &mut b, &mut c, |a, b, c| {
            // ADD: c = a + b
            for ((ci, &ai), &bi) in c.iter_mut().zip(a.iter()).zip(b.iter()) {
                *ci = ai + bi;
            }
        });
        best[2] = best[2].min(t);

        let t = time_parallel(threads, &mut a, &mut b, &mut c, |a, b, c| {
            // TRIAD: a = b + s * c
            for ((ai, &bi), &ci) in a.iter_mut().zip(b.iter()).zip(c.iter()) {
                *ai = bi + scalar * ci;
            }
        });
        best[3] = best[3].min(t);
    }

    let mut mb = [0.0f64; 4];
    for (i, k) in StreamKernel::ALL.iter().enumerate() {
        let bytes = (k.arrays_touched() * n * std::mem::size_of::<f64>()) as f64;
        mb[i] = bytes / best[i] / 1e6;
    }

    StreamResult {
        threads,
        n,
        mb_per_s: mb,
    }
}

/// Time one kernel applied across `threads` disjoint chunks of the arrays.
fn time_parallel<F>(threads: usize, a: &mut [f64], b: &mut [f64], c: &mut [f64], kernel: F) -> f64
where
    F: Fn(&mut [f64], &mut [f64], &mut [f64]) + Sync,
{
    let n = a.len();
    if threads == 1 {
        let start = Instant::now();
        kernel(a, b, c);
        return start.elapsed().as_secs_f64().max(1e-9);
    }

    // Split each array into one chunk per thread; chunk boundaries are
    // identical across arrays so the kernels stay element-aligned.
    let chunk = n.div_ceil(threads);
    let start = Instant::now();
    crossbeam::thread::scope(|s| {
        let mut ra = &mut a[..];
        let mut rb = &mut b[..];
        let mut rc = &mut c[..];
        for _ in 0..threads {
            let take = chunk.min(ra.len());
            if take == 0 {
                break;
            }
            let (ca, rest_a) = ra.split_at_mut(take);
            let (cb, rest_b) = rb.split_at_mut(take);
            let (cc, rest_c) = rc.split_at_mut(take);
            ra = rest_a;
            rb = rest_b;
            rc = rest_c;
            let kernel = &kernel;
            s.spawn(move |_| kernel(ca, cb, cc));
        }
    })
    .expect("stream worker panicked");
    start.elapsed().as_secs_f64().max(1e-9)
}

/// Verify array contents after a full COPY/SCALE/ADD/TRIAD cycle — the
/// original benchmark's `checkSTREAMresults`. Used by tests to confirm the
/// kernels are implemented as specified, not just timed.
pub fn stream_expected_values(ntimes: usize) -> (f64, f64, f64) {
    let scalar = 3.0f64;
    let (mut a, mut b, mut c) = (1.0f64, 2.0f64, 0.0f64);
    for _ in 0..ntimes {
        c = a;
        b = scalar * c;
        c = a + b;
        a = b + scalar * c;
    }
    (a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_compute_correct_values() {
        // Run the real benchmark with tiny arrays and compare against the
        // scalar recurrence.
        let n = 1024;
        let ntimes = 3;
        let scalar = 3.0f64;
        let mut a = vec![1.0f64; n];
        let mut b = vec![2.0f64; n];
        let mut c = vec![0.0f64; n];
        for _ in 0..ntimes {
            c.copy_from_slice(&a);
            for (bi, &ci) in b.iter_mut().zip(c.iter()) {
                *bi = scalar * ci;
            }
            for ((ci, &ai), &bi) in c.iter_mut().zip(a.iter()).zip(b.iter()) {
                *ci = ai + bi;
            }
            for ((ai, &bi), &ci) in a.iter_mut().zip(b.iter()).zip(c.iter()) {
                *ai = bi + scalar * ci;
            }
        }
        let (ea, eb, ec) = stream_expected_values(ntimes);
        assert!(a.iter().all(|&x| (x - ea).abs() < 1e-6 * ea.abs()));
        assert!(b.iter().all(|&x| (x - eb).abs() < 1e-6 * eb.abs()));
        assert!(c.iter().all(|&x| (x - ec).abs() < 1e-6 * ec.abs()));
    }

    #[test]
    fn run_stream_produces_positive_bandwidth() {
        let r = run_stream(1, 64 * 1024, 2);
        for k in StreamKernel::ALL {
            assert!(r.kernel(k) > 0.0, "{} bandwidth not positive", k.label());
        }
        assert!(r.copy_bytes_per_s() > 0.0);
    }

    #[test]
    fn run_stream_multithreaded_smoke() {
        let r = run_stream(4, 64 * 1024, 2);
        assert_eq!(r.threads, 4);
        for k in StreamKernel::ALL {
            assert!(r.kernel(k).is_finite());
        }
    }

    #[test]
    fn arrays_touched_matches_stream_spec() {
        assert_eq!(StreamKernel::Copy.arrays_touched(), 2);
        assert_eq!(StreamKernel::Scale.arrays_touched(), 2);
        assert_eq!(StreamKernel::Add.arrays_touched(), 3);
        assert_eq!(StreamKernel::Triad.arrays_touched(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        run_stream(0, 1024, 1);
    }
}
