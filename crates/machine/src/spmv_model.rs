//! Cost model for the PETSc-style SpMV formulation of the Jacobi iteration.
//!
//! PETSc expresses the 5-point update as `y = A·x` with `A` a CSR matrix
//! (Section IV-A of the paper). Per matrix row this moves the 5 double
//! values, the 5 column indices (64-bit integers — the paper builds PETSc
//! with 64-bit ints and attributes its deficit to exactly these loads), the
//! row pointer and the output, while most `x` reads hit cache thanks to the
//! banded structure. PETSc's Inode optimization compresses index traffic for
//! runs of identically-structured rows, so we charge
//! [`SpmvCostModel::bytes_per_row`] = 64 B/row: 40 B of values + ~16 B of
//! compressed index/pointer traffic + 8 B output write. Together with a
//! high [`SpmvCostModel::efficiency`] (PETSc's MatMult is a tuned streaming
//! kernel) this lands single-node PETSc at roughly half the tiled-stencil
//! rate, matching the paper's Figure 7 observation that "PaRSEC versions can
//! achieve twice the performance of PETSc".

use crate::profile::MachineProfile;
use serde::Serialize;

/// Service-time model for the SpMV baseline.
#[derive(Debug, Clone, Serialize)]
pub struct SpmvCostModel {
    /// The machine this model predicts.
    pub profile: MachineProfile,
    /// Fraction of STREAM bandwidth PETSc's MatMult achieves (a tuned
    /// streaming kernel; 0.95 by default).
    pub efficiency: f64,
    /// DRAM traffic per matrix row, bytes (see module docs).
    pub bytes_per_row: f64,
    /// Flops per row: 5 multiplies + 4 adds, identical to the stencil so
    /// GFLOP/s are directly comparable.
    pub flops_per_row: f64,
    /// Per-iteration fixed cost of the VecScatter setup per rank, seconds.
    pub scatter_overhead: f64,
}

impl SpmvCostModel {
    /// Build the calibrated model for a profile.
    pub fn for_profile(profile: &MachineProfile) -> Self {
        SpmvCostModel {
            profile: profile.clone(),
            efficiency: 0.95,
            bytes_per_row: 64.0,
            flops_per_row: 9.0,
            scatter_overhead: 10e-6,
        }
    }

    /// Bandwidth share of one MPI rank when PETSc runs one rank per core
    /// and every core is active, bytes/s.
    pub fn per_rank_bw(&self) -> f64 {
        self.efficiency * self.profile.mem_bw_node / self.profile.cores_per_node as f64
    }

    /// Time (seconds) for one rank to apply its local block of `rows` rows.
    pub fn local_spmv_time(&self, rows: usize) -> f64 {
        self.scatter_overhead + rows as f64 * self.bytes_per_row / self.per_rank_bw()
    }

    /// Whole-node SpMV rate in GFLOP/s when every core streams its share —
    /// the number Figure 7 compares against the tiled stencil.
    pub fn node_gflops(&self) -> f64 {
        self.efficiency * self.profile.mem_bw_node * self.flops_per_row / self.bytes_per_row / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil_model::StencilCostModel;

    #[test]
    fn petsc_is_roughly_half_of_parsec_on_nacl() {
        let p = MachineProfile::nacl();
        let spmv = SpmvCostModel::for_profile(&p).node_gflops();
        let stencil = StencilCostModel::for_profile(&p).node_gflops_single(20_000, 288);
        let ratio = stencil / spmv;
        assert!(
            (1.7..=2.4).contains(&ratio),
            "stencil {stencil} vs spmv {spmv}: ratio {ratio}"
        );
    }

    #[test]
    fn petsc_is_roughly_half_of_parsec_on_stampede2() {
        let p = MachineProfile::stampede2();
        let spmv = SpmvCostModel::for_profile(&p).node_gflops();
        let stencil = StencilCostModel::for_profile(&p).node_gflops_single(27_000, 864);
        let ratio = stencil / spmv;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "stencil {stencil} vs spmv {spmv}: ratio {ratio}"
        );
    }

    #[test]
    fn local_time_linear_in_rows() {
        let m = SpmvCostModel::for_profile(&MachineProfile::nacl());
        let t1 = m.local_spmv_time(10_000) - m.scatter_overhead;
        let t2 = m.local_spmv_time(20_000) - m.scatter_overhead;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_rank_bw_divides_node_bw() {
        let m = SpmvCostModel::for_profile(&MachineProfile::nacl());
        assert!((m.per_rank_bw() * 12.0 - 0.95 * m.profile.mem_bw_node).abs() < 1.0);
    }
}
