//! Machine profiles: the hardware parameters the paper's two evaluation
//! systems expose to the performance model.
//!
//! The numbers for NaCL and Stampede2 come directly from the paper
//! (Section VI, Table I, Figure 5):
//!
//! * **NaCL** — 64 nodes, 2 × Intel Xeon X5660 (12 cores), 23 GB RAM,
//!   InfiniBand QDR (32 Gb/s peak, ~27 Gb/s effective), STREAM COPY
//!   40 091.3 MB/s per node / 9 814.2 MB/s per core.
//! * **Stampede2** — 2 × Xeon Platinum 8160 (48 cores), 192 GB RAM,
//!   Omni-Path (100 Gb/s peak, ~86 Gb/s effective), STREAM COPY
//!   176 701.1 MB/s per node / 10 632.6 MB/s per core.
//!
//! Network latency on both systems is about 1 µs (Section VI-A).

use serde::{Deserialize, Serialize};

/// Parameters of one cluster: everything the simulator needs to predict
/// stencil and SpMV performance on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Human-readable system name.
    pub name: String,
    /// Total nodes available in the cluster.
    pub max_nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// STREAM COPY bandwidth of a full node, bytes/s.
    pub mem_bw_node: f64,
    /// STREAM COPY bandwidth of a single core, bytes/s.
    pub mem_bw_core: f64,
    /// Last-level cache capacity available to one core, bytes (used by the
    /// tile-size cache model).
    pub cache_per_core: f64,
    /// Peak double-precision rate of one core, flop/s.
    pub flops_per_core: f64,
    /// Theoretical peak network bandwidth, bits/s.
    pub net_peak_bw_bits: f64,
    /// Effective (achievable) network bandwidth, bits/s — the NetPIPE
    /// asymptote reported in the paper.
    pub net_eff_bw_bits: f64,
    /// One-way small-message network latency, seconds.
    pub net_latency: f64,
    /// Per-message CPU/NIC injection overhead, seconds (LogGP `o`).
    pub net_msg_overhead: f64,
    /// Message size (bytes) above which the rendezvous protocol (an extra
    /// round-trip handshake) is used instead of eager sends.
    pub rendezvous_threshold: usize,
    /// Per-message processing time on the runtime's dedicated communication
    /// thread (dependence resolution, activation, unpacking), seconds.
    /// This — not wire latency — is what makes many small messages
    /// expensive and is the cost communication avoidance amortizes.
    /// Calibrated so the simulated CA gains match the paper's Figure 8.
    pub runtime_msg_cost: f64,
}

impl MachineProfile {
    /// The paper's in-house NaCL cluster.
    pub fn nacl() -> Self {
        MachineProfile {
            name: "NaCL".to_string(),
            max_nodes: 64,
            cores_per_node: 12,
            mem_bw_node: 40_091.3e6,
            mem_bw_core: 9_814.2e6,
            // 12 MB L3 per Westmere socket shared by 6 cores.
            cache_per_core: 2.0e6,
            // X5660 @ 2.8 GHz, 4 DP flops/cycle.
            flops_per_core: 11.2e9,
            net_peak_bw_bits: 32e9,
            net_eff_bw_bits: 27e9,
            net_latency: 1e-6,
            net_msg_overhead: 1e-6,
            rendezvous_threshold: 64 * 1024,
            runtime_msg_cost: 40e-6,
        }
    }

    /// TACC Stampede2 (Skylake partition).
    pub fn stampede2() -> Self {
        MachineProfile {
            name: "Stampede2".to_string(),
            max_nodes: 256,
            cores_per_node: 48,
            mem_bw_node: 176_701.1e6,
            mem_bw_core: 10_632.6e6,
            // Skylake 8160: 1.375 MB non-inclusive L3 per core (the private
            // 1 MB L2 overlaps it and adds little for streaming sweeps).
            cache_per_core: 1.4e6,
            // 8160 @ 2.1 GHz, 32 DP flops/cycle (AVX-512 FMA).
            flops_per_core: 67.2e9,
            net_peak_bw_bits: 100e9,
            net_eff_bw_bits: 86e9,
            net_latency: 1e-6,
            net_msg_overhead: 0.5e-6,
            rendezvous_threshold: 64 * 1024,
            runtime_msg_cost: 15e-6,
        }
    }

    /// A Summit-class node (paper Section VII: "each node has 6 GPUs and
    /// 900 GB/s memory bandwidth per GPU and showed a network latency of
    /// about 1 microsecond"): six accelerator lanes of 900 GB/s each
    /// behind a dual-rail 200 Gb/s injection port. With this much memory
    /// bandwidth the stencil workload turns network-bound — the regime
    /// where the paper predicts "the communication-avoiding approach shows
    /// a distinct advantage".
    pub fn summit_like() -> Self {
        MachineProfile {
            name: "Summit-like".to_string(),
            max_nodes: 256,
            cores_per_node: 7, // 6 accelerator lanes + 1 comm thread
            mem_bw_node: 5.4e12,
            mem_bw_core: 900e9,
            cache_per_core: 6.0e6,
            flops_per_core: 7e12,
            net_peak_bw_bits: 200e9,
            net_eff_bw_bits: 180e9,
            net_latency: 1e-6,
            net_msg_overhead: 0.5e-6,
            rendezvous_threshold: 64 * 1024,
            runtime_msg_cost: 10e-6,
        }
    }

    /// A deliberately slow-network profile used by tests and ablations to
    /// magnify communication effects.
    pub fn slow_network() -> Self {
        MachineProfile {
            name: "SlowNet".to_string(),
            net_peak_bw_bits: 1e9,
            net_eff_bw_bits: 0.8e9,
            net_latency: 50e-6,
            runtime_msg_cost: 100e-6,
            ..Self::nacl()
        }
    }

    /// Compute threads available to the dataflow runtime: the paper runs one
    /// process per node with one core dedicated to communication.
    pub fn compute_threads(&self) -> u32 {
        self.cores_per_node.saturating_sub(1).max(1)
    }

    /// Effective network bandwidth in bytes/s.
    pub fn net_eff_bw_bytes(&self) -> f64 {
        self.net_eff_bw_bits / 8.0
    }

    /// Peak network bandwidth in bytes/s.
    pub fn net_peak_bw_bytes(&self) -> f64 {
        self.net_peak_bw_bits / 8.0
    }

    /// Build a profile from locally measured STREAM results (bytes/s) so all
    /// experiments can also run against "this machine".
    pub fn localhost(cores: u32, copy_node: f64, copy_core: f64) -> Self {
        MachineProfile {
            name: "Localhost".to_string(),
            max_nodes: 1,
            cores_per_node: cores.max(1),
            mem_bw_node: copy_node,
            mem_bw_core: copy_core,
            cache_per_core: 2.0e6,
            flops_per_core: 16e9,
            // A loopback "network" — latency-dominated like shared memory.
            net_peak_bw_bits: 200e9,
            net_eff_bw_bits: 160e9,
            net_latency: 0.3e-6,
            net_msg_overhead: 0.2e-6,
            rendezvous_threshold: 64 * 1024,
            runtime_msg_cost: 5e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nacl_matches_paper_numbers() {
        let p = MachineProfile::nacl();
        assert_eq!(p.cores_per_node, 12);
        assert_eq!(p.compute_threads(), 11);
        assert!((p.mem_bw_node - 40.0913e9).abs() < 1e6);
        assert!((p.net_eff_bw_bytes() - 27e9 / 8.0).abs() < 1.0);
        assert_eq!(p.max_nodes, 64);
    }

    #[test]
    fn stampede2_matches_paper_numbers() {
        let p = MachineProfile::stampede2();
        assert_eq!(p.cores_per_node, 48);
        assert_eq!(p.compute_threads(), 47);
        assert!((p.mem_bw_node - 176.7011e9).abs() < 1e6);
        assert!((p.net_peak_bw_bits - 100e9).abs() < 1.0);
    }

    #[test]
    fn compute_threads_never_zero() {
        let p = MachineProfile::localhost(1, 1e9, 1e9);
        assert_eq!(p.compute_threads(), 1);
    }

    #[test]
    fn summit_like_matches_paper_conclusion() {
        let p = MachineProfile::summit_like();
        assert_eq!(p.compute_threads(), 6);
        assert!((p.mem_bw_core - 900e9).abs() < 1.0);
        assert!((p.net_latency - 1e-6).abs() < 1e-12);
        // memory per node vastly outpaces the network: the network-bound
        // regime of the paper's conclusion
        assert!(p.mem_bw_node / p.net_eff_bw_bytes() > 100.0);
    }

    #[test]
    fn profiles_serialize_roundtrip() {
        let p = MachineProfile::stampede2();
        let json = serde_json::to_string(&p).unwrap();
        let back: MachineProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
