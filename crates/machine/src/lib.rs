//! # machine — hardware profiles, measured benchmarks, and cost models
//!
//! This crate is the bridge between the paper's evaluation machines and the
//! simulator:
//!
//! * [`profile`] — [`MachineProfile`] constants for **NaCL** and
//!   **Stampede2** taken from the paper (cores, STREAM Table I bandwidths,
//!   NetPIPE network parameters), plus a `localhost` constructor fed by
//!   locally measured STREAM;
//! * [`stream`] — a real, runnable STREAM benchmark (COPY/SCALE/ADD/TRIAD),
//!   single- and multi-threaded, reproducing Table I on the host;
//! * [`roofline`] — the roofline bound the paper uses in Section VI-A
//!   (stencil intensity 0.375–0.5625 flop/byte);
//! * [`stencil_model`] — calibrated service-time model for tiled 5-point
//!   Jacobi tasks (drives Figures 6–10 in simulation), including the
//!   "kernel adjustment ratio" of Figures 8–9;
//! * [`spmv_model`] — the PETSc-style SpMV baseline's cost model
//!   (64-bit index traffic, one rank per core).

#![deny(missing_docs)]

pub mod profile;
pub mod roofline;
pub mod spmv_model;
pub mod stencil_model;
pub mod stream;

pub use profile::MachineProfile;
pub use roofline::{stencil_window, RooflineWindow};
pub use spmv_model::SpmvCostModel;
pub use stencil_model::StencilCostModel;
pub use stream::{run_stream, StreamKernel, StreamResult};
