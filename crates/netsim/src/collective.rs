//! Collective-operation cost models over the point-to-point network.
//!
//! The paper's motivation (Section I) is Krylov solvers, whose inner
//! products impose global reductions every iteration — the other
//! communication bottleneck s-step methods attack. These models price the
//! standard algorithms:
//!
//! * small messages: binomial tree (`⌈log₂ n⌉` rounds);
//! * large reductions: Rabenseifner reduce-scatter + allgather
//!   (`2·(n−1)/n` of the data over the wire, `2·⌈log₂ n⌉` latencies).

use crate::model::NetworkModel;
use serde::Serialize;

/// Collective cost model for a cluster of homogeneous nodes.
#[derive(Debug, Clone, Serialize)]
pub struct CollectiveModel {
    /// The underlying point-to-point model.
    pub net: NetworkModel,
    /// Switch point between tree and Rabenseifner allreduce, bytes.
    pub rabenseifner_threshold: usize,
}

impl CollectiveModel {
    /// Build from a point-to-point model with the conventional 32 KiB
    /// algorithm switch.
    pub fn new(net: NetworkModel) -> Self {
        CollectiveModel {
            net,
            rabenseifner_threshold: 32 * 1024,
        }
    }

    fn rounds(nodes: u32) -> f64 {
        assert!(nodes >= 1, "collectives need at least one node");
        (nodes as f64).log2().ceil()
    }

    /// Binomial-tree broadcast of `bytes` to `nodes` nodes, seconds.
    pub fn broadcast_time(&self, nodes: u32, bytes: usize) -> f64 {
        assert!(nodes >= 1, "collectives need at least one node");
        if nodes == 1 {
            return 0.0;
        }
        Self::rounds(nodes) * self.net.transfer_time(bytes)
    }

    /// Binomial-tree reduction of `bytes` from `nodes` nodes, seconds.
    /// Same wire pattern as a broadcast, run in reverse.
    pub fn reduce_time(&self, nodes: u32, bytes: usize) -> f64 {
        self.broadcast_time(nodes, bytes)
    }

    /// Allreduce of `bytes` across `nodes` nodes, seconds.
    pub fn allreduce_time(&self, nodes: u32, bytes: usize) -> f64 {
        assert!(nodes >= 1, "collectives need at least one node");
        if nodes == 1 {
            return 0.0;
        }
        if bytes < self.rabenseifner_threshold {
            // reduce + broadcast over a binomial tree
            2.0 * Self::rounds(nodes) * self.net.transfer_time(bytes)
        } else {
            // Rabenseifner: reduce-scatter then allgather
            let n = nodes as f64;
            let wire_bytes = 2.0 * (n - 1.0) / n * bytes as f64;
            let latencies = 2.0 * Self::rounds(nodes) * (self.net.latency + self.net.overhead);
            latencies + wire_bytes / self.net.bandwidth
        }
    }

    /// Barrier across `nodes` nodes, seconds (an 8-byte allreduce).
    pub fn barrier_time(&self, nodes: u32) -> f64 {
        self.allreduce_time(nodes, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::MachineProfile;

    fn model() -> CollectiveModel {
        CollectiveModel::new(NetworkModel::from_profile(&MachineProfile::nacl()))
    }

    #[test]
    fn single_node_is_free() {
        let m = model();
        assert_eq!(m.broadcast_time(1, 1 << 20), 0.0);
        assert_eq!(m.allreduce_time(1, 8), 0.0);
        assert_eq!(m.barrier_time(1), 0.0);
    }

    #[test]
    fn tree_scales_logarithmically() {
        let m = model();
        let t2 = m.broadcast_time(2, 8);
        let t16 = m.broadcast_time(16, 8);
        let t64 = m.broadcast_time(64, 8);
        assert!((t16 / t2 - 4.0).abs() < 1e-9);
        assert!((t64 / t2 - 6.0).abs() < 1e-9);
    }

    #[test]
    fn small_allreduce_is_latency_dominated() {
        let m = model();
        let t = m.allreduce_time(64, 8);
        // 2 × 6 rounds × ~2 µs
        assert!(t > 20e-6 && t < 40e-6, "t = {t}");
    }

    #[test]
    fn large_allreduce_is_bandwidth_dominated() {
        let m = model();
        let bytes = 8 << 20;
        let t = m.allreduce_time(64, bytes);
        let wire = 2.0 * 63.0 / 64.0 * bytes as f64 / m.net.bandwidth;
        assert!((t - wire) / wire < 0.05, "t = {t}, wire = {wire}");
        // and beats the naive tree by a wide margin
        let tree = 2.0 * 6.0 * m.net.transfer_time(bytes);
        assert!(t < tree / 3.0);
    }

    #[test]
    fn allreduce_monotone_in_nodes_and_bytes() {
        let m = model();
        assert!(m.allreduce_time(4, 8) < m.allreduce_time(64, 8));
        assert!(m.allreduce_time(16, 64) < m.allreduce_time(16, 1 << 22));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = model().broadcast_time(0, 8);
    }
}
