//! NetPIPE, simulated: the ping-pong benchmark the paper runs in Section
//! VI-A to characterize each system's interconnect (Figure 5).
//!
//! Two nodes bounce a message of a given size back and forth through the
//! [`NetworkModel`] inside the discrete-event engine; the reported bandwidth
//! is `bytes / one-way time`, and Figure 5 plots it as a percentage of the
//! theoretical peak (32 Gb/s NaCL, 100 Gb/s Stampede2).

use crate::model::NetworkModel;
use desim::{Engine, Model, Scheduler, VirtualDuration, VirtualTime};
use machine::MachineProfile;
use serde::Serialize;

/// One point of the NetPIPE curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct NetPipePoint {
    /// Message size, bytes.
    pub bytes: usize,
    /// Measured one-way time, seconds.
    pub one_way_time: f64,
    /// Achieved bandwidth, bits/s.
    pub bandwidth_bits: f64,
    /// Achieved bandwidth as a percentage of theoretical peak.
    pub percent_of_peak: f64,
}

/// Ping-pong state machine between node 0 and node 1.
struct PingPong {
    model: NetworkModel,
    bytes: usize,
    remaining: u32,
    finished_at: VirtualTime,
}

/// A message arrival at one end of the ping-pong.
struct Arrival;

impl Model for PingPong {
    type Event = Arrival;
    fn handle(&mut self, now: VirtualTime, _ev: Arrival, sched: &mut Scheduler<Arrival>) {
        self.finished_at = now;
        if self.remaining > 0 {
            self.remaining -= 1;
            let t = VirtualDuration::from_secs_f64(self.model.transfer_time(self.bytes));
            sched.schedule_in(t, Arrival);
        }
    }
}

/// Run the ping-pong for one message size. `reps` round trips are timed
/// (NetPIPE uses enough repetitions to amortize clock resolution; in virtual
/// time one would suffice, but we keep several to exercise the engine).
pub fn ping_pong(model: &NetworkModel, bytes: usize, reps: u32) -> NetPipePoint {
    assert!(reps > 0, "need at least one repetition");
    let hops = 2 * reps; // each round trip is two one-way transfers
    let mut engine = Engine::new(PingPong {
        model: model.clone(),
        bytes,
        remaining: hops,
        finished_at: VirtualTime::ZERO,
    });
    // Kick off: the first send is initiated at t = 0; the first Arrival
    // event below is the completion of that send.
    engine.prime_at(
        VirtualTime::ZERO + VirtualDuration::from_secs_f64(model.transfer_time(bytes)),
        Arrival,
    );
    engine.run();
    let total = engine.model().finished_at.as_secs_f64();
    // `hops + 1` arrivals were delivered (the priming one plus `hops`
    // scheduled in handle), i.e. `hops + 1` one-way transfers total.
    let one_way = total / (hops + 1) as f64;
    let bandwidth_bits = bytes as f64 * 8.0 / one_way;
    NetPipePoint {
        bytes,
        one_way_time: one_way,
        bandwidth_bits,
        percent_of_peak: 100.0 * bandwidth_bits / (model.peak_bandwidth * 8.0),
    }
}

/// The standard NetPIPE size ladder: powers of two from `min` to `max`
/// with the classic ±3-byte perturbations omitted (they exist to catch
/// alignment bugs in real NICs, which the model does not have).
pub fn size_ladder(min: usize, max: usize) -> Vec<usize> {
    assert!(min > 0 && min <= max, "bad size range");
    let mut sizes = Vec::new();
    let mut s = min;
    while s <= max {
        sizes.push(s);
        s *= 2;
    }
    sizes
}

/// Full sweep over a machine profile's interconnect: the Figure 5 series.
pub fn netpipe_sweep(profile: &MachineProfile, min: usize, max: usize) -> Vec<NetPipePoint> {
    let model = NetworkModel::from_profile(profile);
    size_ladder(min, max)
        .into_iter()
        .map(|bytes| ping_pong(&model, bytes, 8))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nacl_model() -> NetworkModel {
        NetworkModel::from_profile(&MachineProfile::nacl())
    }

    #[test]
    fn simulated_ping_pong_matches_analytic_model() {
        let m = nacl_model();
        for bytes in [64usize, 4096, 1 << 20] {
            let p = ping_pong(&m, bytes, 4);
            let expected = m.transfer_time(bytes);
            // virtual time is quantized to whole nanoseconds
            assert!(
                (p.one_way_time - expected).abs() / expected < 1e-3,
                "bytes {bytes}: simulated {} vs analytic {expected}",
                p.one_way_time
            );
        }
    }

    #[test]
    fn sweep_is_monotone_in_bandwidth_within_protocol() {
        let pts = netpipe_sweep(&MachineProfile::nacl(), 256, 32 * 1024);
        for w in pts.windows(2) {
            assert!(
                w[1].bandwidth_bits > w[0].bandwidth_bits,
                "bandwidth dropped from {} to {} bytes",
                w[0].bytes,
                w[1].bytes
            );
        }
    }

    #[test]
    fn nacl_asymptote_near_84_percent() {
        let pts = netpipe_sweep(&MachineProfile::nacl(), 1 << 20, 8 << 20);
        let last = pts.last().unwrap();
        assert!(
            (last.percent_of_peak - 84.0).abs() < 2.0,
            "asymptote = {}",
            last.percent_of_peak
        );
    }

    #[test]
    fn stampede2_asymptote_near_86_percent() {
        let pts = netpipe_sweep(&MachineProfile::stampede2(), 1 << 20, 8 << 20);
        let last = pts.last().unwrap();
        assert!(
            (last.percent_of_peak - 86.0).abs() < 2.0,
            "asymptote = {}",
            last.percent_of_peak
        );
    }

    #[test]
    fn small_messages_latency_bound() {
        let pts = netpipe_sweep(&MachineProfile::nacl(), 256, 256);
        assert!(pts[0].percent_of_peak < 5.0);
        // one-way time is within 10% of the pure latency floor
        assert!(pts[0].one_way_time < 1.1 * (1e-6 + 1e-6 + 256.0 / (27e9 / 8.0)));
    }

    #[test]
    fn size_ladder_doubles() {
        assert_eq!(size_ladder(256, 2048), vec![256, 512, 1024, 2048]);
    }

    #[test]
    #[should_panic(expected = "bad size range")]
    fn empty_ladder_rejected() {
        size_ladder(0, 10);
    }
}
