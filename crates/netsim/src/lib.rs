//! # netsim — the simulated interconnect
//!
//! The paper's experiments ran over InfiniBand QDR (NaCL) and Intel
//! Omni-Path (Stampede2). This crate substitutes a calibrated
//! point-to-point cost model running inside the [`desim`] engine:
//!
//! * [`model`] — [`NetworkModel`]: LogGP-style `o + L + n/B` with an
//!   eager/rendezvous protocol switch, parameterized per machine profile;
//! * [`topology`] — [`ProcessGrid`]: the square logical node grid the
//!   paper arranges its runs on, over a full-crossbar fabric;
//! * [`message`] — [`Message`]: size-carrying (and optionally
//!   payload-carrying) point-to-point messages;
//! * [`netpipe`] — the NetPIPE ping-pong benchmark, reproducing the
//!   bandwidth-vs-message-size curves of the paper's Figure 5;
//! * [`collective`] — tree and Rabenseifner collective cost models for the
//!   Krylov-solver workloads the paper motivates.

#![deny(missing_docs)]

pub mod collective;
pub mod inflight;
pub mod message;
pub mod model;
pub mod netpipe;
pub mod topology;

pub use collective::CollectiveModel;
pub use inflight::InFlight;
pub use message::{Message, Tag};
pub use model::NetworkModel;
pub use netpipe::{netpipe_sweep, ping_pong, NetPipePoint};
pub use topology::{NodeId, ProcessGrid};
