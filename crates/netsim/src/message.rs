//! Message descriptors exchanged between nodes in the simulated fabric.

use crate::topology::NodeId;
use bytes::Bytes;

/// A tag disambiguating messages between the same (src, dst) pair; the
/// runtime encodes (task class, flow, parameters) into it.
pub type Tag = u64;

/// One point-to-point message. The payload is optional: performance-only
/// simulations carry sizes, correctness-carrying simulations attach the
/// actual bytes.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Match tag.
    pub tag: Tag,
    /// Logical size in bytes (what the cost model charges). Always set,
    /// even when `payload` is `None`.
    pub bytes: usize,
    /// Optional actual payload.
    pub payload: Option<Bytes>,
}

impl Message {
    /// A size-only message (performance simulation).
    pub fn sized(src: NodeId, dst: NodeId, tag: Tag, bytes: usize) -> Self {
        Message {
            src,
            dst,
            tag,
            bytes,
            payload: None,
        }
    }

    /// A message carrying real data; the charged size is the payload size.
    pub fn with_payload(src: NodeId, dst: NodeId, tag: Tag, payload: Bytes) -> Self {
        Message {
            src,
            dst,
            tag,
            bytes: payload.len(),
            payload: Some(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_has_no_payload() {
        let m = Message::sized(0, 1, 42, 1024);
        assert_eq!(m.bytes, 1024);
        assert!(m.payload.is_none());
    }

    #[test]
    fn payload_sets_size() {
        let m = Message::with_payload(2, 3, 7, Bytes::from(vec![0u8; 64]));
        assert_eq!(m.bytes, 64);
        assert_eq!(m.payload.as_ref().unwrap().len(), 64);
    }
}
