//! Live in-flight gauges: messages and bytes currently on the wire.
//!
//! The network model itself is a pure cost function; the executors that
//! drive it bump an [`InFlight`] when a message is injected and release
//! it on arrival, so live telemetry samplers can report how much traffic
//! is airborne at any instant. Counters are atomics, so the gauge can be
//! shared between the engine and a concurrent sampler thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Messages/bytes currently in flight between nodes.
#[derive(Debug, Default)]
pub struct InFlight {
    msgs: AtomicU64,
    bytes: AtomicU64,
}

impl InFlight {
    /// Empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// A message of `bytes` entered the network.
    pub fn send(&self, bytes: u64) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A message of `bytes` reached its destination.
    pub fn arrive(&self, bytes: u64) {
        self.msgs.fetch_sub(1, Ordering::Relaxed);
        self.bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Messages currently in flight.
    pub fn msgs(&self) -> u64 {
        self.msgs.load(Ordering::Relaxed)
    }

    /// Bytes currently in flight.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// `(messages, bytes)` in flight, read together.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.msgs(), self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_arrive_balance() {
        let g = InFlight::new();
        assert_eq!(g.snapshot(), (0, 0));
        g.send(100);
        g.send(28);
        assert_eq!(g.snapshot(), (2, 128));
        g.arrive(100);
        assert_eq!(g.snapshot(), (1, 28));
        g.arrive(28);
        assert_eq!(g.snapshot(), (0, 0));
    }
}
