//! Cluster topology: ranks arranged in a logical 2D process grid over a
//! switched fabric, as the paper configures its runs ("the nodes during
//! runs were arranged into square compute grid").

use serde::Serialize;

/// Rank of one node in the cluster.
pub type NodeId = u32;

/// A `P × Q` logical grid of nodes over a full-crossbar switched fabric
/// (InfiniBand / Omni-Path class: any pair of distinct nodes communicates
/// with the same point-to-point cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ProcessGrid {
    /// Rows of the node grid.
    pub p: u32,
    /// Columns of the node grid.
    pub q: u32,
}

impl ProcessGrid {
    /// A `p × q` grid. Panics when either dimension is zero.
    pub fn new(p: u32, q: u32) -> Self {
        assert!(p > 0 && q > 0, "process grid dimensions must be positive");
        ProcessGrid { p, q }
    }

    /// The square grid the paper uses: `sqrt(n) × sqrt(n)`. Panics when
    /// `nodes` is not a perfect square.
    pub fn square(nodes: u32) -> Self {
        let side = (nodes as f64).sqrt().round() as u32;
        assert_eq!(
            side * side,
            nodes,
            "square process grid needs a perfect-square node count, got {nodes}"
        );
        ProcessGrid::new(side, side)
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.p * self.q
    }

    /// Rank of the node at grid position `(row, col)` (row-major).
    pub fn rank_of(&self, row: u32, col: u32) -> NodeId {
        assert!(row < self.p && col < self.q, "grid position out of range");
        row * self.q + col
    }

    /// Grid position of `rank`.
    pub fn coords_of(&self, rank: NodeId) -> (u32, u32) {
        assert!(rank < self.nodes(), "rank {rank} out of range");
        (rank / self.q, rank % self.q)
    }

    /// True when two ranks are the same node (communication is a local
    /// memory copy, not a network message).
    pub fn is_local(&self, a: NodeId, b: NodeId) -> bool {
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coords_roundtrip() {
        let g = ProcessGrid::new(3, 4);
        for row in 0..3 {
            for col in 0..4 {
                let r = g.rank_of(row, col);
                assert_eq!(g.coords_of(r), (row, col));
            }
        }
        assert_eq!(g.nodes(), 12);
    }

    #[test]
    fn square_grids() {
        assert_eq!(ProcessGrid::square(4), ProcessGrid::new(2, 2));
        assert_eq!(ProcessGrid::square(16), ProcessGrid::new(4, 4));
        assert_eq!(ProcessGrid::square(64), ProcessGrid::new(8, 8));
    }

    #[test]
    #[should_panic(expected = "perfect-square")]
    fn non_square_rejected() {
        ProcessGrid::square(6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_coords_rejected() {
        ProcessGrid::new(2, 2).rank_of(2, 0);
    }

    #[test]
    fn locality() {
        let g = ProcessGrid::new(2, 2);
        assert!(g.is_local(1, 1));
        assert!(!g.is_local(0, 1));
    }
}
