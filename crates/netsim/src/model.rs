//! Point-to-point message cost model.
//!
//! A LogGP-flavoured model with an eager/rendezvous protocol switch, the
//! same structure MPI implementations expose and the shape NetPIPE measures
//! (paper Figure 5):
//!
//! * **eager** (small messages): `o + L + n / B`
//! * **rendezvous** (large messages): `o + 3·L + n / B` — the extra
//!   round-trip is the ready-to-send handshake.
//!
//! `L` is the one-way latency (~1 µs on both of the paper's systems), `o`
//! the sender's injection overhead, and `B` the *effective* bandwidth (the
//! paper: ~27 of 32 Gb/s on NaCL, ~86 of 100 Gb/s on Stampede2). Measured
//! bandwidth therefore rises from a few percent of peak at 256 B toward
//! `B_eff / B_peak` (84–86 %) for megabyte messages — exactly the Figure 5
//! curves, including the small dip at the protocol switch.

use machine::MachineProfile;
use serde::Serialize;

/// Cost model for one interconnect.
#[derive(Debug, Clone, Serialize)]
pub struct NetworkModel {
    /// One-way latency, seconds.
    pub latency: f64,
    /// Per-message injection overhead, seconds.
    pub overhead: f64,
    /// Effective bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Theoretical peak bandwidth, bytes/s (for percent-of-peak reporting).
    pub peak_bandwidth: f64,
    /// Eager→rendezvous protocol switch point, bytes.
    pub rendezvous_threshold: usize,
}

impl NetworkModel {
    /// Build the model from a machine profile's network parameters.
    pub fn from_profile(p: &MachineProfile) -> Self {
        NetworkModel {
            latency: p.net_latency,
            overhead: p.net_msg_overhead,
            bandwidth: p.net_eff_bw_bytes(),
            peak_bandwidth: p.net_peak_bw_bytes(),
            rendezvous_threshold: p.rendezvous_threshold,
        }
    }

    /// True when `bytes` is carried by the rendezvous protocol.
    pub fn is_rendezvous(&self, bytes: usize) -> bool {
        bytes >= self.rendezvous_threshold
    }

    /// One-way time (seconds) to deliver a `bytes`-byte message between two
    /// distinct nodes.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        let protocol_latency = if self.is_rendezvous(bytes) {
            3.0 * self.latency
        } else {
            self.latency
        };
        self.overhead + protocol_latency + bytes as f64 / self.bandwidth
    }

    /// Sender-side occupancy (seconds) of one message: how long the comm
    /// engine is busy before it can start the next send. The wire time is
    /// charged here too because a single NIC port serializes back-to-back
    /// sends of large messages.
    pub fn sender_occupancy(&self, bytes: usize) -> f64 {
        self.overhead + bytes as f64 / self.bandwidth
    }

    /// Effective bandwidth (bytes/s) observed for a message of `bytes`.
    pub fn effective_bandwidth(&self, bytes: usize) -> f64 {
        bytes as f64 / self.transfer_time(bytes)
    }

    /// Fraction of theoretical peak achieved for a message of `bytes`.
    pub fn percent_of_peak(&self, bytes: usize) -> f64 {
        100.0 * self.effective_bandwidth(bytes) / self.peak_bandwidth
    }

    /// The message size at which half the effective bandwidth is reached
    /// (the classic `n_1/2` figure of merit).
    pub fn half_bandwidth_point(&self) -> f64 {
        // n / (o + L + n/B) = B/2  =>  n = B (o + L)
        self.bandwidth * (self.overhead + self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nacl() -> NetworkModel {
        NetworkModel::from_profile(&MachineProfile::nacl())
    }

    #[test]
    fn latency_floor_for_tiny_messages() {
        let m = nacl();
        let t = m.transfer_time(8);
        // ~ o + L = 2 µs plus negligible wire time
        assert!((t - 2e-6).abs() < 0.1e-6, "t = {t}");
    }

    #[test]
    fn large_messages_approach_effective_bandwidth() {
        let m = nacl();
        let bw = m.effective_bandwidth(16 * 1024 * 1024);
        assert!(bw > 0.98 * m.bandwidth, "bw = {bw}");
    }

    #[test]
    fn percent_of_peak_matches_paper_asymptote() {
        // NaCL: 27 of 32 Gb/s ≈ 84 % at large sizes.
        let m = nacl();
        let pct = m.percent_of_peak(4 * 1024 * 1024);
        assert!((pct - 84.0).abs() < 2.0, "pct = {pct}");
        // Small messages achieve only a few percent.
        assert!(m.percent_of_peak(256) < 5.0);
    }

    #[test]
    fn rendezvous_adds_handshake() {
        let m = nacl();
        let just_below = m.transfer_time(m.rendezvous_threshold - 1);
        let just_above = m.transfer_time(m.rendezvous_threshold);
        let extra = just_above - just_below;
        // two extra latency hops, minus one byte of wire time
        assert!((extra - 2.0 * m.latency).abs() < 1e-9, "extra = {extra}");
    }

    #[test]
    fn transfer_time_monotone_within_protocol() {
        let m = nacl();
        let mut last = 0.0;
        for bytes in [1usize, 64, 1024, 32 * 1024, 63 * 1024] {
            let t = m.transfer_time(bytes);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn half_bandwidth_point_is_consistent() {
        let m = nacl();
        let n = m.half_bandwidth_point();
        // At n_1/2 bytes the achieved bandwidth is half the effective
        // bandwidth (within the eager regime).
        assert!(n < m.rendezvous_threshold as f64);
        let bw = m.effective_bandwidth(n as usize);
        assert!((bw / (m.bandwidth / 2.0) - 1.0).abs() < 0.01, "bw = {bw}");
    }

    #[test]
    fn sender_occupancy_below_transfer_time() {
        let m = nacl();
        for bytes in [64usize, 4096, 1 << 20] {
            assert!(m.sender_occupancy(bytes) < m.transfer_time(bytes));
        }
    }
}
