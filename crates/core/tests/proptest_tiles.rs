//! Property tests on the tile layer: ghost-transfer round trips, kernel
//! linearity, and the equivalence of constant- and variable-coefficient
//! kernels when the coefficient function is constant.

use ca_stencil::{Corner, Extents, Side, TileBuf, Weights};
use proptest::prelude::*;

fn weights() -> impl Strategy<Value = Weights> {
    (
        -1.0f64..1.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
        -1.0f64..1.0,
    )
        .prop_map(|(c, n, s, w, e)| Weights {
            center: c,
            north: n,
            south: s,
            west: w,
            east: e,
        })
}

fn filled_tile(tile: usize, ghost: usize, seed: u64) -> TileBuf {
    let mut b = TileBuf::new(tile, ghost);
    b.fill_both(|r, c| {
        let x = seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((r * 1031 + c) as u64);
        (x % 1000) as f64 / 1000.0 - 0.5
    });
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A strip sent to a neighbour and read back is the identity: the
    /// neighbour's ghost matches the producer's edge cell for cell.
    #[test]
    fn strip_transfer_preserves_values(
        tile in 2usize..10,
        depth in 1usize..4,
        seed in 0u64..1000,
    ) {
        let depth = depth.min(tile);
        let src = filled_tile(tile, depth, seed);
        for side in Side::ALL {
            let mut dst = TileBuf::new(tile, depth);
            let strip = src.extract_strip(side.opposite(), depth);
            prop_assert_eq!(strip.len(), depth * tile);
            dst.write_strip(side, depth, &strip);
            // spot-check the full ghost region on that side
            let t = tile as i64;
            let d = depth as i64;
            let (rows, cols): (Vec<i64>, Vec<i64>) = match side {
                Side::North => ((-d..0).collect(), (0..t).collect()),
                Side::South => ((t..t + d).collect(), (0..t).collect()),
                Side::West => ((0..t).collect(), (-d..0).collect()),
                Side::East => ((0..t).collect(), (t..t + d).collect()),
            };
            let mut it = strip.iter();
            for &r in &rows {
                for &c in &cols {
                    prop_assert_eq!(dst.get(r, c), *it.next().unwrap());
                }
            }
        }
    }

    /// Corner blocks round-trip likewise.
    #[test]
    fn corner_transfer_preserves_values(
        tile in 2usize..10,
        depth in 1usize..4,
        seed in 0u64..1000,
    ) {
        let depth = depth.min(tile);
        let src = filled_tile(tile, depth, seed);
        for corner in Corner::ALL {
            let mut dst = TileBuf::new(tile, depth);
            let block = src.extract_corner(corner.opposite(), depth);
            prop_assert_eq!(block.len(), depth * depth);
            dst.write_corner(corner, depth, &block);
            let t = tile as i64;
            let d = depth as i64;
            let (rows, cols): (Vec<i64>, Vec<i64>) = match corner {
                Corner::Nw => ((-d..0).collect(), (-d..0).collect()),
                Corner::Ne => ((-d..0).collect(), (t..t + d).collect()),
                Corner::Sw => ((t..t + d).collect(), (-d..0).collect()),
                Corner::Se => ((t..t + d).collect(), (t..t + d).collect()),
            };
            let mut it = block.iter();
            for &r in &rows {
                for &c in &cols {
                    prop_assert_eq!(dst.get(r, c), *it.next().unwrap());
                }
            }
        }
    }

    /// The Jacobi step is linear: stepping `a·X + b·Y` equals
    /// `a·step(X) + b·step(Y)` (all ghosts included, to rounding).
    #[test]
    fn jacobi_step_is_linear(
        tile in 2usize..8,
        w in weights(),
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let x = filled_tile(tile, 1, seed);
        let y = filled_tile(tile, 1, seed ^ 0xdead);
        let mut combo = TileBuf::new(tile, 1);
        let t = tile as i64;
        for r in -1..=t {
            for c in -1..=t {
                combo.set_both(r, c, a * x.get(r, c) + b * y.get(r, c));
            }
        }
        let mut xs = x;
        let mut ys = y;
        xs.jacobi_step(&w, Extents::ZERO);
        ys.jacobi_step(&w, Extents::ZERO);
        combo.jacobi_step(&w, Extents::ZERO);
        for r in 0..t {
            for c in 0..t {
                let want = a * xs.get(r, c) + b * ys.get(r, c);
                prop_assert!(
                    (combo.get(r, c) - want).abs() <= 1e-12 * (1.0 + want.abs()),
                    "({r},{c}): {} vs {}",
                    combo.get(r, c),
                    want
                );
            }
        }
    }

    /// The variable-coefficient kernel with a constant coefficient
    /// function is bitwise identical to the constant kernel, including
    /// over extended regions.
    #[test]
    fn var_kernel_degenerates_to_constant(
        tile in 2usize..8,
        ext in 0usize..3,
        w in weights(),
        seed in 0u64..1000,
    ) {
        let ghost = ext + 1;
        let mut a = filled_tile(tile, ghost, seed);
        let mut b = a.clone();
        a.jacobi_step(&w, Extents::uniform(ext));
        b.jacobi_step_var(|_, _| w, (7, -3), Extents::uniform(ext));
        let t = tile as i64;
        let e = ext as i64;
        for r in -e..t + e {
            for c in -e..t + e {
                prop_assert_eq!(a.get(r, c), b.get(r, c), "({}, {})", r, c);
            }
        }
    }
}
