//! PA2 — the second communication-avoiding algorithm of Demmel et al.,
//! which the paper describes but does not implement ("PA1 is the naive
//! version while PA2 will minimize the redundant work but might limit the
//! amount of overlap between computation and communication"; "Our
//! implementation follows the PA1 algorithm").
//!
//! This module models PA2 as a *performance skeleton* so the PA1-vs-PA2
//! trade-off can be measured on the simulated clusters:
//!
//! * remote message cadence and sizes are **identical** to PA1 (one
//!   `s`-deep surface bundle per remote side pair plus corner blocks per
//!   cycle — in PA2 the bundle carries the neighbour's *computed* edge
//!   layers of the cycle's iterates instead of raw ghost data);
//! * **no redundant flops**: boundary tiles defer the edge bands that
//!   depend on not-yet-received remote surfaces (the band grows one cell
//!   per phase) and recompute nothing;
//! * the deferred work lands as a **catch-up bulge** in the exchange-phase
//!   task, serialized behind the message — exactly the reduced overlap the
//!   paper warns about;
//! * local-facing sides still exchange one-layer strips every iteration,
//!   so only remote sides participate in deferral.
//!
//! The skeleton carries no payloads (building with `carry_data` is
//! rejected): PA2's deferred-band numerics would require per-iterate ghost
//! history, which the paper's argument does not need.

use crate::config::{StencilBuild, StencilConfig};
use crate::flows::{
    cross_rects, slot_of_corner, slot_of_side, OutFlow, KIND_BOUNDARY, KIND_INIT, KIND_INTERIOR,
    NUM_SLOTS_CA, SLOT_SELF,
};
use crate::geometry::{Corner, Side, StencilGeometry};
use machine::StencilCostModel;
use netsim::NodeId;
use runtime::{
    FlowData, OutputDep, Params, Program, ReadRegion, Rect, TaskClass, TaskGraph, TaskKey,
    WriteRegion,
};
use std::sync::Arc;

const CLASS: u16 = 0;

/// Task class of the PA2 skeleton.
pub struct Pa2Stencil {
    geo: StencilGeometry,
    model: StencilCostModel,
    iterations: u32,
    steps: usize,
    ratio: f64,
}

impl Pa2Stencil {
    fn decode(p: Params) -> (usize, usize, u32) {
        (p[0] as usize, p[1] as usize, p[2] as u32)
    }

    fn key(tx: usize, ty: usize, t: u32) -> TaskKey {
        TaskKey::new(CLASS, [tx as i32, ty as i32, t as i32, 0])
    }

    fn is_remote(&self, tx: usize, ty: usize, nx: usize, ny: usize) -> bool {
        self.geo.node_of_tile(tx, ty) != self.geo.node_of_tile(nx, ny)
    }

    fn is_boundary(&self, tx: usize, ty: usize) -> bool {
        self.geo.is_node_boundary(tx, ty)
    }

    fn phase(&self, t: u32) -> usize {
        (t as usize - 1) % self.steps
    }

    fn feeds_exchange(&self, t: u32) -> bool {
        (t as usize).is_multiple_of(self.steps)
    }

    /// Cells of tile `(tx, ty)` deferred at phase `k`: the bands of width
    /// `k` along each remote side (clipped union over the rectangle).
    fn deferred_cells(&self, tx: usize, ty: usize, k: usize) -> usize {
        let tile = self.geo.tile;
        let band = |side| {
            if self
                .geo
                .neighbor(tx, ty, side)
                .is_some_and(|(nx, ny)| self.is_remote(tx, ty, nx, ny))
            {
                k
            } else {
                0
            }
        };
        let w = band(Side::West);
        let e = band(Side::East);
        let n = band(Side::North);
        let s = band(Side::South);
        let inner_w = tile.saturating_sub(w + e);
        let inner_h = tile.saturating_sub(n + s);
        tile * tile - inner_w * inner_h
    }

    fn local_side_neighbors(&self, tx: usize, ty: usize) -> usize {
        Side::ALL
            .iter()
            .filter(|&&s| {
                self.geo
                    .neighbor(tx, ty, s)
                    .is_some_and(|(nx, ny)| !self.is_remote(tx, ty, nx, ny))
            })
            .count()
    }

    fn remote_side_neighbors(&self, tx: usize, ty: usize) -> usize {
        Side::ALL
            .iter()
            .filter(|&&s| {
                self.geo
                    .neighbor(tx, ty, s)
                    .is_some_and(|(nx, ny)| self.is_remote(tx, ty, nx, ny))
            })
            .count()
    }

    fn remote_diag_neighbors(&self, tx: usize, ty: usize) -> usize {
        Corner::ALL
            .iter()
            .filter(|&&c| {
                self.geo
                    .diagonal(tx, ty, c)
                    .is_some_and(|(nx, ny)| self.is_remote(tx, ty, nx, ny))
            })
            .count()
    }

    /// The rectangle task `(tx, ty, t)` actually updates, `t ≥ 1`:
    /// interior tiles and non-boundary phases update the tile; a boundary
    /// tile's quiet phase `k` updates the tile *shrunk* by `k` along each
    /// remote side (the deferred band), and its exchange phase catches up
    /// through the remote surfaces — modeled as the tile *extended* by
    /// `s − 1` along remote sides, the deepest layer the catch-up
    /// consults. Drives the read/write region declarations.
    fn updated_rect(&self, tx: usize, ty: usize, t: u32) -> Rect {
        let rect = self.geo.tile_rect(tx, ty);
        if !self.is_boundary(tx, ty) {
            return rect;
        }
        let k = self.phase(t);
        let remote = |side| {
            if self
                .geo
                .neighbor(tx, ty, side)
                .is_some_and(|(nx, ny)| self.is_remote(tx, ty, nx, ny))
            {
                1i64
            } else {
                0
            }
        };
        let (n, s) = (remote(Side::North), remote(Side::South));
        let (w, e) = (remote(Side::West), remote(Side::East));
        let grow = if k == 0 {
            self.steps as i64 - 1
        } else {
            -(k as i64)
        };
        Rect::new(
            rect.row - n * grow,
            rect.col - w * grow,
            (rect.rows as i64 + (n + s) * grow) as u32,
            (rect.cols as i64 + (w + e) * grow) as u32,
        )
    }

    fn enumerate_out(&self, p: Params) -> Vec<(OutFlow, TaskKey, usize)> {
        let (tx, ty, t) = Self::decode(p);
        if t >= self.iterations {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(9);
        out.push((OutFlow::SelfFlow, Self::key(tx, ty, t + 1), SLOT_SELF));
        let deep = self.feeds_exchange(t);
        for side in Side::ALL {
            if let Some((nx, ny)) = self.geo.neighbor(tx, ty, side) {
                if self.is_remote(tx, ty, nx, ny) {
                    if deep {
                        out.push((
                            OutFlow::Strip {
                                side,
                                depth: self.steps,
                            },
                            Self::key(nx, ny, t + 1),
                            slot_of_side(side.opposite()),
                        ));
                    }
                } else {
                    out.push((
                        OutFlow::Strip { side, depth: 1 },
                        Self::key(nx, ny, t + 1),
                        slot_of_side(side.opposite()),
                    ));
                }
            }
        }
        if deep {
            for corner in Corner::ALL {
                if let Some((dx, dy)) = self.geo.diagonal(tx, ty, corner) {
                    if self.is_remote(tx, ty, dx, dy) {
                        debug_assert!(
                            self.is_boundary(dx, dy),
                            "remote diagonal of a block distribution must be a boundary tile"
                        );
                        out.push((
                            OutFlow::Block {
                                corner,
                                depth: self.steps,
                            },
                            Self::key(dx, dy, t + 1),
                            slot_of_corner(corner.opposite()),
                        ));
                    }
                }
            }
        }
        out
    }
}

impl TaskClass for Pa2Stencil {
    fn name(&self) -> &str {
        "pa2-stencil"
    }

    fn node_of(&self, p: Params) -> NodeId {
        let (tx, ty, _) = Self::decode(p);
        self.geo.node_of_tile(tx, ty)
    }

    fn activation_count(&self, p: Params) -> usize {
        let (tx, ty, t) = Self::decode(p);
        if t == 0 {
            return 0;
        }
        if !self.is_boundary(tx, ty) {
            return 1 + self.geo.num_side_neighbors(tx, ty);
        }
        let locals = self.local_side_neighbors(tx, ty);
        if self.phase(t) == 0 {
            1 + locals + self.remote_side_neighbors(tx, ty) + self.remote_diag_neighbors(tx, ty)
        } else {
            1 + locals
        }
    }

    fn num_input_slots(&self, _p: Params) -> usize {
        NUM_SLOTS_CA
    }

    fn num_output_flows(&self, p: Params) -> usize {
        self.enumerate_out(p).len()
    }

    fn outputs(&self, p: Params) -> Vec<OutputDep> {
        self.enumerate_out(p)
            .into_iter()
            .enumerate()
            .map(|(flow, (_, consumer, slot))| OutputDep {
                flow,
                consumer,
                slot,
            })
            .collect()
    }

    fn execute(&self, p: Params, _inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
        // performance skeleton: sized flows only (see module docs)
        let tile = self.geo.tile;
        self.enumerate_out(p)
            .into_iter()
            .map(|(of, _, _)| FlowData::sized(of.bytes(tile)))
            .collect()
    }

    fn output_bytes(&self, p: Params, flow: usize) -> usize {
        self.enumerate_out(p)[flow].0.bytes(self.geo.tile)
    }

    fn cost(&self, p: Params) -> f64 {
        let (tx, ty, t) = Self::decode(p);
        let tile = self.geo.tile;
        if t == 0 {
            let cells: usize = self
                .enumerate_out(p)
                .iter()
                .map(|(of, _, _)| of.bytes(tile) / 8)
                .sum();
            return self.model.ghost_copy_time(cells);
        }
        let full = self.model.task_time(tile, tile, self.ratio);
        if !self.is_boundary(tx, ty) {
            return full;
        }
        let k = self.phase(t);
        let r2 = self.ratio * self.ratio;
        if k == 0 {
            // exchange phase: this iteration's full tile, plus the
            // catch-up of every band deferred in the previous cycle
            // (phases 1..s-1), serialized behind the surface message.
            let catchup: usize = (1..self.steps)
                .map(|kk| self.deferred_cells(tx, ty, kk))
                .sum();
            full + self.model.region_time(catchup as f64 * r2, tile, tile)
        } else {
            // quiet phase: the deferred band is *not* computed now
            let deferred = self.deferred_cells(tx, ty, k);
            let done = (tile * tile - deferred) as f64;
            self.model.task_overhead + self.model.region_time(done * r2, tile, tile)
        }
    }

    fn priority(&self, p: Params) -> i32 {
        // boundary tiles first: their strips reach the comm thread early
        let (tx, ty, _) = Self::decode(p);
        i32::from(self.is_boundary(tx, ty))
    }

    fn kind(&self, p: Params) -> u32 {
        let (tx, ty, t) = Self::decode(p);
        if t == 0 {
            KIND_INIT
        } else if self.is_boundary(tx, ty) {
            KIND_BOUNDARY
        } else {
            KIND_INTERIOR
        }
    }

    fn write_region(&self, p: Params) -> Option<WriteRegion> {
        let (tx, ty, t) = Self::decode(p);
        // PA2 defers instead of recomputing: writes never leave the tile.
        // Quiet phases honestly declare only the band they update (the
        // tile minus the deferred bands); exchange phases write the full
        // tile (current iterate plus the caught-up bands). The iterate-0
        // emission certifies the initial fill of the tile rectangle.
        let rect = if t == 0 || self.phase(t) == 0 {
            self.geo.tile_rect(tx, ty)
        } else {
            self.updated_rect(tx, ty, t)
        };
        Some(WriteRegion {
            space: self.geo.tile_space(tx, ty),
            rect,
        })
    }

    fn read_region(&self, p: Params) -> Option<ReadRegion> {
        let (tx, ty, t) = Self::decode(p);
        // t = 0 reads only the initial state it certifies itself: exempt.
        (t > 0).then(|| ReadRegion {
            space: self.geo.tile_space(tx, ty),
            rects: cross_rects(self.updated_rect(tx, ty, t)).to_vec(),
        })
    }

    fn pinned_region(&self, p: Params) -> Option<ReadRegion> {
        let (tx, ty, _) = Self::decode(p);
        // Boundary tiles' exchange reads reach `s − 1` cells past the
        // tile along remote sides, so where such a side meets the domain
        // edge the Dirichlet frame must be declared that wide too.
        let depth = if self.is_boundary(tx, ty) {
            self.steps
        } else {
            1
        };
        let rects = self.geo.dirichlet_rects(tx, ty, depth);
        (!rects.is_empty()).then(|| ReadRegion {
            space: self.geo.tile_space(tx, ty),
            rects,
        })
    }

    fn delivered_region(&self, p: Params, flow: usize) -> Option<ReadRegion> {
        let (tx, ty, _) = Self::decode(p);
        let (of, consumer, _) = self.enumerate_out(p).into_iter().nth(flow)?;
        let rect = of.region(self.geo.tile_origin(tx, ty), self.geo.tile)?;
        let (cx, cy) = (consumer.params[0] as usize, consumer.params[1] as usize);
        Some(ReadRegion::single(self.geo.tile_space(cx, cy), rect))
    }

    fn flops(&self, p: Params) -> f64 {
        // mirrors `cost`'s cell accounting at 9 flops per updated point:
        // quiet phases compute fewer cells, exchange phases catch up, and
        // the cycle total equals the nominal work — PA2's defining
        // property (no redundant flops, hence no `redundant_flops`).
        let (tx, ty, t) = Self::decode(p);
        let tile = self.geo.tile;
        if t == 0 {
            return 0.0;
        }
        let full = self.model.task_flops(tile, tile, self.ratio);
        if !self.is_boundary(tx, ty) {
            return full;
        }
        let k = self.phase(t);
        let r2 = self.ratio * self.ratio;
        if k == 0 {
            let catchup: usize = (1..self.steps)
                .map(|kk| self.deferred_cells(tx, ty, kk))
                .sum();
            full + catchup as f64 * r2 * 9.0
        } else {
            let done = tile * tile - self.deferred_cells(tx, ty, k);
            done as f64 * r2 * 9.0
        }
    }
}

/// Build the PA2 performance skeleton. `carry_data` must be false.
pub fn build_pa2(cfg: &StencilConfig, carry_data: bool) -> StencilBuild {
    assert!(
        !carry_data,
        "PA2 is a performance skeleton; it cannot carry data (see module docs)"
    );
    assert!(
        cfg.steps >= 1 && cfg.steps <= cfg.tile / 2,
        "PA2 step size {} must be in [1, tile/2 = {}] (deferred bands meet otherwise)",
        cfg.steps,
        cfg.tile / 2
    );
    let geo = cfg.geometry();
    let mut model = StencilCostModel::for_profile(&cfg.profile);
    if cfg.problem.op.is_variable() {
        model = model.with_variable_coefficients();
    }
    let class = Pa2Stencil {
        geo: geo.clone(),
        model,
        iterations: cfg.iterations,
        steps: cfg.steps,
        ratio: cfg.ratio,
    };
    let mut graph = TaskGraph::new();
    let id = graph.add_class(Arc::new(class));
    assert_eq!(id, CLASS, "PA2 program must have exactly one class");
    let roots = (0..geo.tiles_y)
        .flat_map(|ty| (0..geo.tiles_x).map(move |tx| Pa2Stencil::key(tx, ty, 0)))
        .collect();
    let total_tasks = geo.num_tiles() as u64 * (cfg.iterations as u64 + 1);
    StencilBuild {
        program: Program {
            graph: Arc::new(graph),
            roots,
            total_tasks,
        },
        store: None,
        geo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::build_ca;
    use crate::problem::Problem;
    use machine::MachineProfile;
    use netsim::ProcessGrid;
    use runtime::{run, RunConfig};

    fn cfg(n: usize, tile: usize, iters: u32, steps: usize) -> StencilConfig {
        StencilConfig::new(Problem::laplace(n), tile, iters, ProcessGrid::new(2, 2))
            .with_steps(steps)
    }

    #[test]
    fn graphs_analyze_clean_across_step_sizes() {
        for steps in [1usize, 2, 3] {
            let c = cfg(48, 8, 7, steps);
            let a = analyze::assert_clean(&build_pa2(&c, false).program);
            assert_eq!(a.flops.redundant, 0, "PA2 never recomputes");
        }
    }

    #[test]
    fn remote_traffic_identical_to_pa1() {
        let c = cfg(64, 8, 12, 4);
        let pa1 = run(
            &build_ca(&c, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), 4),
        );
        let pa2 = run(
            &build_pa2(&c, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), 4),
        );
        assert_eq!(pa1.remote_messages(), pa2.remote_messages());
        assert_eq!(pa1.remote_bytes(), pa2.remote_bytes());
    }

    #[test]
    fn pa2_does_less_total_work_than_pa1() {
        // total busy time = Σ occupancy × lanes × makespan per node
        let c = cfg(64, 8, 12, 4);
        let lanes = MachineProfile::nacl().compute_threads() as f64;
        let work = |r: &runtime::RunReport| -> f64 {
            r.node_occupancy
                .iter()
                .map(|o| o * lanes * r.makespan)
                .sum()
        };
        let pa1 = run(
            &build_ca(&c, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), 4),
        );
        let pa2 = run(
            &build_pa2(&c, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), 4),
        );
        assert!(
            work(&pa2) < work(&pa1),
            "PA2 work {} vs PA1 {}",
            work(&pa2),
            work(&pa1)
        );
    }

    #[test]
    fn deferred_band_geometry() {
        let c = cfg(64, 8, 2, 4);
        let geo = c.geometry();
        let class = Pa2Stencil {
            geo: geo.clone(),
            model: StencilCostModel::for_profile(&MachineProfile::nacl()),
            iterations: 2,
            steps: 4,
            ratio: 1.0,
        };
        // tile (3,1): east side remote only => band = k * tile
        assert_eq!(class.deferred_cells(3, 1, 0), 0);
        assert_eq!(class.deferred_cells(3, 1, 2), 2 * 8);
        // tile (3,3): east and south remote => L-shaped band
        assert_eq!(class.deferred_cells(3, 3, 2), 64 - 6 * 6);
        // interior tile: nothing deferred
        assert_eq!(class.deferred_cells(1, 1, 3), 0);
    }

    #[test]
    #[should_panic(expected = "performance skeleton")]
    fn carrying_data_rejected() {
        let c = cfg(48, 8, 2, 2);
        let _ = build_pa2(&c, true);
    }

    #[test]
    #[should_panic(expected = "tile/2")]
    fn oversized_steps_rejected() {
        let c = cfg(48, 8, 2, 5);
        let _ = build_pa2(&c, false);
    }
}
