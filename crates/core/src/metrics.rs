//! Analytic accounting: expected message counts and volumes for both
//! schemes, used to cross-check the simulator's counters and to reason
//! about the communication the CA scheme avoids (paper Section V, item 3:
//! "number of floating-point numbers communicated per processor, and the
//! number of messages sent per processor").

use crate::geometry::{Corner, Side, StencilGeometry};
use serde::Serialize;

/// Predicted communication of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CommPrediction {
    /// Total messages crossing the network.
    pub messages: u64,
    /// Total bytes crossing the network.
    pub bytes: u64,
}

impl CommPrediction {
    /// Average message size in bytes (0 when no messages).
    pub fn avg_message_bytes(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bytes as f64 / self.messages as f64
        }
    }
}

/// Remote side-neighbour pairs `(tile, side)` in the tiling.
fn remote_sides(geo: &StencilGeometry) -> u64 {
    let mut count = 0;
    for ty in 0..geo.tiles_y {
        for tx in 0..geo.tiles_x {
            let me = geo.node_of_tile(tx, ty);
            for side in Side::ALL {
                if let Some((nx, ny)) = geo.neighbor(tx, ty, side) {
                    if geo.node_of_tile(nx, ny) != me {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

/// Remote diagonal pairs `(tile, corner)` whose consumer is a boundary
/// tile (always true for remote diagonals on a block distribution, but
/// checked explicitly).
fn remote_corners(geo: &StencilGeometry) -> u64 {
    let mut count = 0;
    for ty in 0..geo.tiles_y {
        for tx in 0..geo.tiles_x {
            let me = geo.node_of_tile(tx, ty);
            for corner in Corner::ALL {
                if let Some((dx, dy)) = geo.diagonal(tx, ty, corner) {
                    if geo.node_of_tile(dx, dy) != me && geo.is_node_boundary(dx, dy) {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

/// Expected network traffic of the base scheme over `iterations`
/// iterations: every remote side pair carries one `tile × 8`-byte strip per
/// iteration (producers run at `t = 0 .. iterations`).
pub fn predict_base(geo: &StencilGeometry, iterations: u32) -> CommPrediction {
    let per_iter = remote_sides(geo);
    let messages = per_iter * iterations as u64;
    CommPrediction {
        messages,
        bytes: messages * (geo.tile as u64 * 8),
    }
}

/// Expected network traffic of the CA scheme with step size `steps`:
/// exchanges are fed by producers at `t = 0, s, 2s, …` below `iterations`,
/// each carrying `s`-deep strips on remote side pairs and `s × s` corner
/// blocks on remote diagonal pairs.
pub fn predict_ca(geo: &StencilGeometry, iterations: u32, steps: usize) -> CommPrediction {
    let exchanges = (iterations as u64).div_ceil(steps as u64);
    let strips = remote_sides(geo) * exchanges;
    let corners = remote_corners(geo) * exchanges;
    CommPrediction {
        messages: strips + corners,
        bytes: strips * (steps * geo.tile * 8) as u64 + corners * (steps * steps * 8) as u64,
    }
}

/// Expected redundant flops of the CA scheme: every node-boundary tile
/// recomputes its shrinking halo each iteration. At iteration `t ≥ 1`
/// with phase `k = (t − 1) mod s`, the valid region extends `e = s − 1 − k`
/// layers on each side that has a neighbour, so the halo holds
/// `region_points − tile²` points, each costing 9 flops scaled by
/// `ratio²` — the same per-task rounding the task class declares, summed
/// independently from the geometry (no task graph is built).
pub fn predict_ca_redundant_flops(
    geo: &StencilGeometry,
    iterations: u32,
    steps: usize,
    ratio: f64,
) -> u64 {
    let tile = geo.tile;
    let mut total = 0u64;
    for ty in 0..geo.tiles_y {
        for tx in 0..geo.tiles_x {
            if !geo.is_node_boundary(tx, ty) {
                continue;
            }
            let on = |side: Side| usize::from(geo.neighbor(tx, ty, side).is_some());
            let (n, s) = (on(Side::North), on(Side::South));
            let (w, e) = (on(Side::West), on(Side::East));
            for t in 1..=iterations {
                let ext = steps - 1 - ((t as usize - 1) % steps);
                let rows = tile + (n + s) * ext;
                let cols = tile + (w + e) * ext;
                let halo_points = (rows * cols - tile * tile) as f64;
                total += (halo_points * ratio * ratio * 9.0).round() as u64;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::build_base;
    use crate::ca::build_ca;
    use crate::config::StencilConfig;
    use crate::problem::Problem;
    use machine::MachineProfile;
    use netsim::ProcessGrid;
    use runtime::{run, RunConfig};

    #[test]
    fn base_prediction_matches_simulator() {
        let cfg = StencilConfig::new(Problem::laplace(32), 4, 6, ProcessGrid::new(2, 2));
        let geo = cfg.geometry();
        let pred = predict_base(&geo, 6);
        let r = run(
            &build_base(&cfg, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), 4),
        );
        assert_eq!(r.remote_messages(), pred.messages);
        assert_eq!(r.remote_bytes(), pred.bytes);
    }

    #[test]
    fn ca_prediction_matches_simulator() {
        for steps in [2, 3, 5] {
            let cfg = StencilConfig::new(Problem::laplace(64), 8, 11, ProcessGrid::new(2, 2))
                .with_steps(steps);
            let geo = cfg.geometry();
            let pred = predict_ca(&geo, 11, steps);
            let r = run(
                &build_ca(&cfg, false).program,
                &RunConfig::simulated(MachineProfile::nacl(), 4),
            );
            assert_eq!(r.remote_messages(), pred.messages, "steps = {steps}");
            assert_eq!(r.remote_bytes(), pred.bytes, "steps = {steps}");
        }
    }

    #[test]
    fn ca_divides_message_count_by_roughly_steps() {
        let geo = StencilGeometry::new(64, 4, ProcessGrid::new(2, 2));
        let base = predict_base(&geo, 60);
        // Strips drop by exactly s, but PA1's explicit corner blocks
        // (cheap in bytes, one message each) cap the count reduction at
        // roughly 0.4·s for this block shape.
        let ca = predict_ca(&geo, 60, 6);
        let ratio = base.messages as f64 / ca.messages as f64;
        assert!((2.0..=6.0).contains(&ratio), "ratio = {ratio}");
        // average message grows several-fold
        assert!(ca.avg_message_bytes() > 2.0 * base.avg_message_bytes());
        // and at the paper's s = 15 the reduction is larger still
        let ca15 = predict_ca(&geo, 60, 15);
        assert!(
            base.messages as f64 / ca15.messages as f64 > 4.0,
            "s=15 ratio = {}",
            base.messages as f64 / ca15.messages as f64
        );
    }

    #[test]
    fn redundant_flop_prediction_matches_static_analysis() {
        // the analytic sum and the task classes' per-task declarations are
        // independent implementations; they must agree exactly
        for (steps, ratio) in [(1usize, 1.0), (3, 1.0), (4, 0.5)] {
            let cfg = StencilConfig::new(Problem::laplace(32), 4, 7, ProcessGrid::new(2, 2))
                .with_steps(steps)
                .with_ratio(ratio);
            let geo = cfg.geometry();
            let a = analyze::assert_clean(&build_ca(&cfg, false).program);
            assert_eq!(
                a.flops.redundant,
                predict_ca_redundant_flops(&geo, 7, steps, ratio),
                "steps = {steps}, ratio = {ratio}"
            );
        }
        // s = 1 is the base cadence: no quiet phases, no redundant work
        let geo = StencilGeometry::new(32, 4, ProcessGrid::new(2, 2));
        assert_eq!(predict_ca_redundant_flops(&geo, 7, 1, 1.0), 0);
    }

    #[test]
    fn single_node_predicts_zero() {
        let geo = StencilGeometry::new(32, 4, ProcessGrid::new(1, 1));
        assert_eq!(predict_base(&geo, 10).messages, 0);
        assert_eq!(predict_ca(&geo, 10, 5).messages, 0);
        assert_eq!(predict_ca(&geo, 10, 5).avg_message_bytes(), 0.0);
    }
}
