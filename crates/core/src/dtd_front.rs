//! The base stencil expressed through the runtime's **Dynamic Task
//! Discovery** front-end instead of the parameterized task graph.
//!
//! The paper's background (Section III-B) presents PaRSEC's two DSLs: the
//! PTG ("concise, parameterized, task-graph description") used by
//! [`crate::base`]/[`crate::ca`], and DTD, "an API that allows for
//! sequential task insertion into the runtime". This module inserts the
//! same base-scheme DAG task by task, demonstrating that both front-ends
//! drive the identical dataflow — the simulated executions produce the
//! same remote-message counts and (up to the coarser per-task byte
//! accounting) the same makespans.

use crate::config::StencilConfig;
use crate::flows::{cross_rects, OutFlow, KIND_BOUNDARY, KIND_INIT, KIND_INTERIOR};
use crate::geometry::Side;
use machine::StencilCostModel;
use runtime::{DtdBuilder, DtdRegions, Program, ReadRegion, WriteRegion};

/// Build the base-scheme program by sequential task insertion.
/// Performance-only: DTD tasks carry sized flows, not tile data.
pub fn build_base_dtd(cfg: &StencilConfig) -> Program {
    let geo = cfg.geometry();
    let model = StencilCostModel::for_profile(&cfg.profile);
    let mut b = DtdBuilder::new();
    // id of the task for (tx, ty) at the previous iteration
    let mut prev: Vec<usize> = Vec::with_capacity(geo.num_tiles());
    let at = |tx: usize, ty: usize| ty * geo.tiles_x + tx;

    // iterate-0 emission tasks (the roots); their write declaration
    // certifies the initial fill of exactly the tile rectangle.
    for ty in 0..geo.tiles_y {
        for tx in 0..geo.tiles_x {
            let id = b.insert_with_regions(
                geo.node_of_tile(tx, ty),
                model.ghost_copy_time(4 * geo.tile),
                KIND_INIT,
                geo.tile * 8,
                &[],
                DtdRegions {
                    write: Some(WriteRegion {
                        space: geo.tile_space(tx, ty),
                        rect: geo.tile_rect(tx, ty),
                    }),
                    ..DtdRegions::default()
                },
            );
            prev.push(id);
        }
    }

    for _t in 1..=cfg.iterations {
        let mut current = prev.clone();
        for ty in 0..geo.tiles_y {
            for tx in 0..geo.tiles_x {
                // dependencies: own previous task plus the four previous
                // neighbour tasks — exactly the PTG version's self flow
                // and strips. `delivered_in` mirrors that ordering: the
                // self flow carries no data; each neighbour dep delivers
                // the depth-1 strip read off the producer's facing side.
                let space = geo.tile_space(tx, ty);
                let mut deps = vec![prev[at(tx, ty)]];
                let mut delivered_in = vec![None];
                for side in Side::ALL {
                    if let Some((nx, ny)) = geo.neighbor(tx, ty, side) {
                        deps.push(prev[at(nx, ny)]);
                        let strip = OutFlow::Strip {
                            side: side.opposite(),
                            depth: 1,
                        };
                        delivered_in.push(
                            strip
                                .region(geo.tile_origin(nx, ny), geo.tile)
                                .map(|r| ReadRegion::single(space, r)),
                        );
                    }
                }
                let kind = if geo.is_node_boundary(tx, ty) {
                    KIND_BOUNDARY
                } else {
                    KIND_INTERIOR
                };
                let tile_rect = geo.tile_rect(tx, ty);
                let pinned = geo.dirichlet_rects(tx, ty, 1);
                current[at(tx, ty)] = b.insert_with_regions(
                    geo.node_of_tile(tx, ty),
                    model.task_time(geo.tile, geo.tile, cfg.ratio),
                    kind,
                    geo.tile * 8,
                    &deps,
                    DtdRegions {
                        write: Some(WriteRegion {
                            space,
                            rect: tile_rect,
                        }),
                        read: Some(ReadRegion {
                            space,
                            rects: cross_rects(tile_rect).to_vec(),
                        }),
                        pinned: (!pinned.is_empty()).then_some(ReadRegion {
                            space,
                            rects: pinned,
                        }),
                        delivered_in,
                    },
                );
            }
        }
        prev = current;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::build_base;
    use crate::problem::Problem;
    use machine::MachineProfile;
    use netsim::ProcessGrid;
    use runtime::{run, RunConfig};

    fn cfg() -> StencilConfig {
        StencilConfig::new(Problem::laplace(32), 4, 6, ProcessGrid::new(2, 2))
    }

    #[test]
    fn dtd_program_analyzes_clean() {
        analyze::assert_clean(&build_base_dtd(&cfg()));
    }

    #[test]
    fn dtd_and_ptg_send_the_same_messages() {
        let c = cfg();
        let sim = RunConfig::simulated(MachineProfile::nacl(), 4);
        let ptg = run(&build_base(&c, false).program, &sim);
        let dtd = run(&build_base_dtd(&c), &sim);
        assert_eq!(ptg.remote_messages(), dtd.remote_messages());
        assert_eq!(ptg.remote_bytes(), dtd.remote_bytes());
        assert_eq!(ptg.tasks_executed, dtd.tasks_executed);
    }

    #[test]
    fn dtd_and_ptg_makespans_agree() {
        // identical task costs and dependencies => virtually identical
        // schedules (byte accounting differs only on local self-flows)
        let c = cfg();
        let sim = RunConfig::simulated(MachineProfile::nacl(), 4);
        let ptg = run(&build_base(&c, false).program, &sim).makespan;
        let dtd = run(&build_base_dtd(&c), &sim).makespan;
        let gap = (ptg - dtd).abs() / ptg;
        assert!(gap < 0.05, "PTG {ptg} vs DTD {dtd}");
    }
}
