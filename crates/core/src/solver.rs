//! A user-facing Jacobi solve driver: run the dataflow iteration in
//! chunks, check convergence between chunks, stop at a tolerance — the
//! interface a downstream application (the paper's "domain scientist")
//! would actually call.
//!
//! Between chunks the driver gathers the field and measures the maximum
//! point-wise change across the chunk (a stagnation residual); within a
//! chunk the iteration runs at full dataflow speed with no global
//! synchronization — exactly the structure the paper's Krylov motivation
//! implies: amortize the global check over many communication-avoided
//! sweeps.

use crate::base::build_base_on;
use crate::ca::build_ca_on;
use crate::config::StencilConfig;
use crate::reference::max_abs_diff;
use crate::store::TileStore;
use runtime::{run, RunConfig};
use serde::Serialize;
use std::sync::Arc;

/// Which scheme advances the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scheme {
    /// One-layer exchange every iteration.
    Base,
    /// PA1 communication avoidance with the configuration's step size.
    Ca,
}

/// Outcome of a chunked solve.
#[derive(Debug, Clone, Serialize)]
pub struct SolveReport {
    /// Total Jacobi iterations performed.
    pub iterations_run: u32,
    /// `(iterations so far, max point-wise change over the last chunk)`
    /// after each chunk.
    pub residual_history: Vec<(u32, f64)>,
    /// True when the last chunk's change dropped below the tolerance.
    pub converged: bool,
    /// Total wall-clock time in the executor, seconds.
    pub wall_time: f64,
}

/// The chunked solver.
#[derive(Debug, Clone)]
pub struct JacobiSolver {
    /// Problem and scheme parameters (`iterations` is ignored; the solver
    /// sets it per chunk).
    pub cfg: StencilConfig,
    /// Scheme to run.
    pub scheme: Scheme,
    /// Iterations per chunk between convergence checks.
    pub check_every: u32,
    /// Worker threads for the shared-memory executor.
    pub threads: usize,
}

impl JacobiSolver {
    /// A solver with the paper-ish defaults: CA scheme, convergence check
    /// every 4 × step size iterations, four threads.
    pub fn new(cfg: StencilConfig) -> Self {
        let check_every = (4 * cfg.steps as u32).max(1);
        JacobiSolver {
            cfg,
            scheme: Scheme::Ca,
            check_every,
            threads: 4,
        }
    }

    /// Run until the max point-wise change over a chunk drops below `tol`
    /// or `max_iters` iterations have run. Returns the final field and the
    /// report.
    pub fn solve(&self, tol: f64, max_iters: u32) -> (Vec<f64>, SolveReport) {
        assert!(
            self.check_every >= 1,
            "need at least one iteration per chunk"
        );
        assert!(tol >= 0.0, "tolerance must be non-negative");
        let geo = self.cfg.geometry();
        let steps = self.cfg.steps;
        let store = Arc::new(TileStore::new(
            &self.cfg.problem,
            geo.clone(),
            |tx, ty| match self.scheme {
                Scheme::Base => 1,
                Scheme::Ca => {
                    if geo.is_node_boundary(tx, ty) {
                        steps
                    } else {
                        1
                    }
                }
            },
        ));

        let mut report = SolveReport {
            iterations_run: 0,
            residual_history: Vec::new(),
            converged: false,
            wall_time: 0.0,
        };
        let mut field = store.gather();
        while report.iterations_run < max_iters {
            let chunk = self.check_every.min(max_iters - report.iterations_run);
            let mut cfg = self.cfg.clone();
            cfg.iterations = chunk;
            let build = match self.scheme {
                Scheme::Base => build_base_on(&cfg, Arc::clone(&store)),
                Scheme::Ca => build_ca_on(&cfg, Arc::clone(&store)),
            };
            let r = run(&build.program, &RunConfig::shared_memory(self.threads));
            report.wall_time += r.makespan;
            report.iterations_run += chunk;

            let new_field = store.gather();
            let change = max_abs_diff(&new_field, &field);
            field = new_field;
            report
                .residual_history
                .push((report.iterations_run, change));
            if change <= tol {
                report.converged = true;
                break;
            }
        }
        (field, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use crate::reference::jacobi_reference;
    use netsim::ProcessGrid;

    fn cfg() -> StencilConfig {
        StencilConfig::new(Problem::laplace(24), 4, 0, ProcessGrid::new(2, 2)).with_steps(3)
    }

    #[test]
    fn chunked_solve_equals_one_shot_bitwise() {
        // 3 chunks of 4 iterations == 12 straight iterations
        let mut solver = JacobiSolver::new(cfg());
        solver.check_every = 4;
        let (field, report) = solver.solve(0.0, 12);
        assert_eq!(report.iterations_run, 12);
        let want = jacobi_reference(&cfg().problem, 12);
        assert_eq!(max_abs_diff(&field, &want), 0.0);
        assert_eq!(report.residual_history.len(), 3);
    }

    #[test]
    fn converges_on_laplace() {
        let mut solver = JacobiSolver::new(cfg());
        solver.check_every = 50;
        let (_, report) = solver.solve(1e-10, 20_000);
        assert!(report.converged, "did not converge: {report:?}");
        // residuals decrease overall
        let first = report.residual_history.first().unwrap().1;
        let last = report.residual_history.last().unwrap().1;
        assert!(last < first / 10.0);
    }

    #[test]
    fn base_and_ca_schemes_agree() {
        let mut a = JacobiSolver::new(cfg());
        a.scheme = Scheme::Base;
        a.check_every = 5;
        let mut b = JacobiSolver::new(cfg());
        b.scheme = Scheme::Ca;
        b.check_every = 5;
        let (fa, _) = a.solve(0.0, 10);
        let (fb, _) = b.solve(0.0, 10);
        assert_eq!(max_abs_diff(&fa, &fb), 0.0);
    }

    #[test]
    fn max_iters_respected_without_convergence() {
        let mut solver = JacobiSolver::new(cfg());
        solver.check_every = 4;
        let (_, report) = solver.solve(0.0, 7); // tol 0 never converges
        assert_eq!(report.iterations_run, 7);
        assert!(!report.converged);
        // last chunk clipped to 3 iterations
        assert_eq!(report.residual_history.last().unwrap().0, 7);
    }
}
