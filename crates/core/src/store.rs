//! The distributed tile store: every tile's double-buffered data, keyed by
//! tile coordinates, with per-tile locking.
//!
//! The dataflow guarantees that at most one task touches a given tile at a
//! time (tasks on the same tile are serialized by the self-flow), so the
//! per-tile mutexes are uncontended; they exist to make the store `Sync`
//! for the shared-memory executor.

use crate::geometry::StencilGeometry;
use crate::problem::Problem;
use crate::tile::TileBuf;
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;

/// All tiles of one run.
pub struct TileStore {
    geo: StencilGeometry,
    tiles: HashMap<(usize, usize), Mutex<TileBuf>>,
}

impl TileStore {
    /// Build and initialize every tile. `ghost_of(tx, ty)` chooses each
    /// tile's ghost width (1 everywhere for the base scheme; the CA step
    /// size on node-boundary tiles).
    ///
    /// Every buffer cell is initialized from the problem: iterate-0 values
    /// inside the domain (so ghost copies of neighbour data start correct)
    /// and static boundary values outside (written to both buffers so they
    /// survive swaps).
    pub fn new<G>(problem: &Problem, geo: StencilGeometry, mut ghost_of: G) -> Self
    where
        G: FnMut(usize, usize) -> usize,
    {
        assert_eq!(problem.n, geo.n, "problem and geometry sizes differ");
        let mut tiles = HashMap::with_capacity(geo.num_tiles());
        for ty in 0..geo.tiles_y {
            for tx in 0..geo.tiles_x {
                let g = ghost_of(tx, ty);
                let mut buf = TileBuf::new(geo.tile, g);
                let (row0, col0) = geo.tile_origin(tx, ty);
                buf.fill_both(|r, c| problem.value_at(row0 + r, col0 + c));
                tiles.insert((tx, ty), Mutex::new(buf));
            }
        }
        TileStore { geo, tiles }
    }

    /// The geometry this store was built for.
    pub fn geometry(&self) -> &StencilGeometry {
        &self.geo
    }

    /// Lock one tile for reading/updating.
    pub fn lock(&self, tx: usize, ty: usize) -> MutexGuard<'_, TileBuf> {
        self.tiles
            .get(&(tx, ty))
            .unwrap_or_else(|| panic!("tile ({tx},{ty}) not in store"))
            .lock()
    }

    /// Assemble the full `n × n` current iterate, row-major.
    pub fn gather(&self) -> Vec<f64> {
        let n = self.geo.n;
        let t = self.geo.tile;
        let mut out = vec![0.0; n * n];
        for (&(tx, ty), tile) in &self.tiles {
            let buf = tile.lock();
            let vals = buf.interior();
            let (row0, col0) = self.geo.tile_origin(tx, ty);
            for r in 0..t {
                let dst = (row0 as usize + r) * n + col0 as usize;
                out[dst..dst + t].copy_from_slice(&vals[r * t..(r + 1) * t]);
            }
        }
        out
    }

    /// A simple order-independent checksum of the current iterate (sum of
    /// interior values) — cheap cross-run comparison for big grids.
    pub fn checksum(&self) -> f64 {
        self.tiles
            .values()
            .map(|t| t.lock().interior().iter().sum::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ProcessGrid;

    #[test]
    fn initializes_interior_and_ghosts_from_problem() {
        let p = Problem::scrambled(8, 1);
        let geo = StencilGeometry::new(8, 4, ProcessGrid::new(1, 1));
        let store = TileStore::new(&p, geo, |_, _| 2);
        let buf = store.lock(1, 0); // tile origin (row 0, col 4)
                                    // interior cell
        assert_eq!(buf.get(2, 2), p.value_at(2, 6));
        // in-domain ghost cell (left neighbour's data)
        assert_eq!(buf.get(0, -1), p.value_at(0, 3));
        // out-of-domain ghost cell (boundary ring)
        assert_eq!(buf.get(-1, 0), p.value_at(-1, 4));
    }

    #[test]
    fn gather_reconstructs_initial_field() {
        let p = Problem::scrambled(12, 9);
        let geo = StencilGeometry::new(12, 4, ProcessGrid::new(1, 1));
        let store = TileStore::new(&p, geo, |_, _| 1);
        let grid = store.gather();
        for r in 0..12 {
            for c in 0..12 {
                assert_eq!(grid[r * 12 + c], p.value_at(r as i64, c as i64));
            }
        }
    }

    #[test]
    fn checksum_matches_gather_sum() {
        let p = Problem::scrambled(8, 3);
        let geo = StencilGeometry::new(8, 2, ProcessGrid::new(2, 2));
        let store = TileStore::new(&p, geo, |_, _| 1);
        let direct: f64 = store.gather().iter().sum();
        assert!((store.checksum() - direct).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not in store")]
    fn missing_tile_panics() {
        let p = Problem::laplace(8);
        let geo = StencilGeometry::new(8, 4, ProcessGrid::new(1, 1));
        let store = TileStore::new(&p, geo, |_, _| 1);
        drop(store.lock(5, 5));
    }
}
