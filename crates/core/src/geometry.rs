//! Tiling geometry: how the global `n × n` grid decomposes into tiles,
//! how tiles map onto the node grid, and who neighbours whom.
//!
//! The paper's setup (Section V): the grid is cut into square tiles, tiles
//! are distributed in 2D blocks over a square node grid ("the data tiles
//! were allocated in a 2D block fashion to exploit the surface-to-volume
//! ratio effect"), and a tile is a *boundary tile* when it must exchange
//! data with a remote node.

use netsim::{NodeId, ProcessGrid};
use runtime::Rect;
use serde::Serialize;

/// One of the four edge directions of a tile. Rows grow southward, columns
/// grow eastward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Side {
    /// Towards smaller rows.
    North = 0,
    /// Towards larger rows.
    South = 1,
    /// Towards smaller columns.
    West = 2,
    /// Towards larger columns.
    East = 3,
}

impl Side {
    /// All sides, in slot order.
    pub const ALL: [Side; 4] = [Side::North, Side::South, Side::West, Side::East];

    /// The facing side (a strip sent out of `s` lands in the neighbour's
    /// `s.opposite()` ghost region).
    pub fn opposite(self) -> Side {
        match self {
            Side::North => Side::South,
            Side::South => Side::North,
            Side::West => Side::East,
            Side::East => Side::West,
        }
    }

    /// Tile-coordinate offset `(dx, dy)` towards this side.
    pub fn delta(self) -> (i64, i64) {
        match self {
            Side::North => (0, -1),
            Side::South => (0, 1),
            Side::West => (-1, 0),
            Side::East => (1, 0),
        }
    }
}

/// One of the four diagonal directions of a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Corner {
    /// North-west.
    Nw = 0,
    /// North-east.
    Ne = 1,
    /// South-west.
    Sw = 2,
    /// South-east.
    Se = 3,
}

impl Corner {
    /// All corners, in slot order.
    pub const ALL: [Corner; 4] = [Corner::Nw, Corner::Ne, Corner::Sw, Corner::Se];

    /// The facing corner (my NW block lands in the NW neighbour's SE ghost
    /// corner).
    pub fn opposite(self) -> Corner {
        match self {
            Corner::Nw => Corner::Se,
            Corner::Ne => Corner::Sw,
            Corner::Sw => Corner::Ne,
            Corner::Se => Corner::Nw,
        }
    }

    /// Tile-coordinate offset `(dx, dy)` towards this corner.
    pub fn delta(self) -> (i64, i64) {
        match self {
            Corner::Nw => (-1, -1),
            Corner::Ne => (1, -1),
            Corner::Sw => (-1, 1),
            Corner::Se => (1, 1),
        }
    }

    /// The two sides this corner touches, `(vertical, horizontal)` —
    /// e.g. NW touches North and West.
    pub fn sides(self) -> (Side, Side) {
        match self {
            Corner::Nw => (Side::North, Side::West),
            Corner::Ne => (Side::North, Side::East),
            Corner::Sw => (Side::South, Side::West),
            Corner::Se => (Side::South, Side::East),
        }
    }
}

/// The tiling of one problem instance.
#[derive(Debug, Clone, Serialize)]
pub struct StencilGeometry {
    /// Global grid dimension (the grid is `n × n`).
    pub n: usize,
    /// Tile edge length (tiles are `tile × tile`, the paper's `mb = nb`).
    pub tile: usize,
    /// Tiles per row of the grid.
    pub tiles_x: usize,
    /// Tiles per column of the grid.
    pub tiles_y: usize,
    /// The node grid.
    pub grid: ProcessGrid,
    /// Tiles per node in x.
    pub block_x: usize,
    /// Tiles per node in y.
    pub block_y: usize,
}

impl StencilGeometry {
    /// Build the tiling. The tile size must divide `n`, and the tile counts
    /// must divide evenly over the node grid — the paper's runs satisfy
    /// both (e.g. 23 040 = 80 × 288 over 4/16/64 nodes).
    pub fn new(n: usize, tile: usize, grid: ProcessGrid) -> Self {
        assert!(tile > 0 && n > 0, "grid and tile sizes must be positive");
        assert!(
            n.is_multiple_of(tile),
            "tile size {tile} does not divide problem size {n}"
        );
        let tiles = n / tile;
        assert!(
            tiles.is_multiple_of(grid.q as usize),
            "{tiles} tile columns do not distribute over {} node columns",
            grid.q
        );
        assert!(
            tiles.is_multiple_of(grid.p as usize),
            "{tiles} tile rows do not distribute over {} node rows",
            grid.p
        );
        StencilGeometry {
            n,
            tile,
            tiles_x: tiles,
            tiles_y: tiles,
            grid,
            block_x: tiles / grid.q as usize,
            block_y: tiles / grid.p as usize,
        }
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// The node that owns tile `(tx, ty)` under the 2D block distribution.
    pub fn node_of_tile(&self, tx: usize, ty: usize) -> NodeId {
        assert!(tx < self.tiles_x && ty < self.tiles_y, "tile out of range");
        self.grid
            .rank_of((ty / self.block_y) as u32, (tx / self.block_x) as u32)
    }

    /// The side neighbour of `(tx, ty)`, or `None` at the domain edge.
    pub fn neighbor(&self, tx: usize, ty: usize, side: Side) -> Option<(usize, usize)> {
        let (dx, dy) = side.delta();
        self.offset(tx, ty, dx, dy)
    }

    /// The diagonal neighbour of `(tx, ty)`, or `None` at the domain edge.
    pub fn diagonal(&self, tx: usize, ty: usize, corner: Corner) -> Option<(usize, usize)> {
        let (dx, dy) = corner.delta();
        self.offset(tx, ty, dx, dy)
    }

    fn offset(&self, tx: usize, ty: usize, dx: i64, dy: i64) -> Option<(usize, usize)> {
        let nx = tx as i64 + dx;
        let ny = ty as i64 + dy;
        (nx >= 0 && ny >= 0 && (nx as usize) < self.tiles_x && (ny as usize) < self.tiles_y)
            .then_some((nx as usize, ny as usize))
    }

    /// True when `(tx, ty)` has at least one side neighbour on another node
    /// — the paper's *boundary tile*, which the CA scheme treats specially.
    pub fn is_node_boundary(&self, tx: usize, ty: usize) -> bool {
        let me = self.node_of_tile(tx, ty);
        Side::ALL.iter().any(|&s| {
            self.neighbor(tx, ty, s)
                .is_some_and(|(nx, ny)| self.node_of_tile(nx, ny) != me)
        })
    }

    /// Number of existing side neighbours (2 at grid corners, 3 on grid
    /// edges, 4 inside).
    pub fn num_side_neighbors(&self, tx: usize, ty: usize) -> usize {
        Side::ALL
            .iter()
            .filter(|&&s| self.neighbor(tx, ty, s).is_some())
            .count()
    }

    /// Number of existing diagonal neighbours.
    pub fn num_diag_neighbors(&self, tx: usize, ty: usize) -> usize {
        Corner::ALL
            .iter()
            .filter(|&&c| self.diagonal(tx, ty, c).is_some())
            .count()
    }

    /// Count of boundary tiles per node for an interior node (diagnostics /
    /// message-count predictions).
    pub fn boundary_tiles(&self) -> usize {
        (0..self.tiles_y)
            .flat_map(|ty| (0..self.tiles_x).map(move |tx| (tx, ty)))
            .filter(|&(tx, ty)| self.is_node_boundary(tx, ty))
            .count()
    }

    /// Global coordinates of tile `(tx, ty)`'s top-left point.
    pub fn tile_origin(&self, tx: usize, ty: usize) -> (i64, i64) {
        ((ty * self.tile) as i64, (tx * self.tile) as i64)
    }

    /// The rectangle of global grid cells tile `(tx, ty)` covers, for
    /// static write-region declarations.
    pub fn tile_rect(&self, tx: usize, ty: usize) -> Rect {
        let (row, col) = self.tile_origin(tx, ty);
        Rect::new(row, col, self.tile as u32, self.tile as u32)
    }

    /// The Dirichlet frame segments of tile `(tx, ty)`'s private ghost
    /// region, `depth` cells deep: for each side of the tile facing the
    /// domain edge (no neighbour there), the ghost band beyond the domain
    /// holding the time-invariant boundary condition. These cells are
    /// never written by any task — the tile store pre-fills them once —
    /// so the dataflow pass treats them as *pinned* (always-valid) via
    /// [`runtime::TaskClass::pinned_region`]. Bands extend `depth` past
    /// the tile's corners so diagonal ghost corners at the domain edge
    /// are covered too; overlap at corners is fine, the analyzer unions.
    /// Empty for tiles nowhere near the domain edge.
    pub fn dirichlet_rects(&self, tx: usize, ty: usize, depth: usize) -> Vec<Rect> {
        let (top, left) = self.tile_origin(tx, ty);
        let t = self.tile as i64;
        let d = depth as i64;
        let wide = (self.tile + 2 * depth) as u32;
        let mut rects = Vec::new();
        if ty == 0 {
            rects.push(Rect::new(top - d, left - d, depth as u32, wide));
        }
        if ty == self.tiles_y - 1 {
            rects.push(Rect::new(top + t, left - d, depth as u32, wide));
        }
        if tx == 0 {
            rects.push(Rect::new(top - d, left - d, wide, depth as u32));
        }
        if tx == self.tiles_x - 1 {
            rects.push(Rect::new(top - d, left + t, wide, depth as u32));
        }
        rects
    }

    /// Stable scalar id of tile `(tx, ty)`'s private buffer, used as the
    /// [`runtime::WriteRegion`] address space: every tile owns its own
    /// buffer (including its ghost ring), so writes in different spaces
    /// never alias even when their global rectangles overlap.
    pub fn tile_space(&self, tx: usize, ty: usize) -> u64 {
        (ty * self.tiles_x + tx) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> StencilGeometry {
        // 8×8 tiles of 4 over a 2×2 node grid => 4×4 tiles per node
        StencilGeometry::new(32, 4, ProcessGrid::new(2, 2))
    }

    #[test]
    fn construction_and_counts() {
        let g = geo();
        assert_eq!(g.tiles_x, 8);
        assert_eq!(g.block_x, 4);
        assert_eq!(g.block_y, 4);
        assert_eq!(g.num_tiles(), 64);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn indivisible_tile_rejected() {
        StencilGeometry::new(30, 4, ProcessGrid::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "do not distribute")]
    fn indivisible_blocks_rejected() {
        StencilGeometry::new(12, 4, ProcessGrid::new(2, 2));
    }

    #[test]
    fn block_distribution() {
        let g = geo();
        assert_eq!(g.node_of_tile(0, 0), 0);
        assert_eq!(g.node_of_tile(3, 3), 0);
        assert_eq!(g.node_of_tile(4, 0), 1);
        assert_eq!(g.node_of_tile(0, 4), 2);
        assert_eq!(g.node_of_tile(7, 7), 3);
    }

    #[test]
    fn neighbors_at_domain_edges() {
        let g = geo();
        assert_eq!(g.neighbor(0, 0, Side::North), None);
        assert_eq!(g.neighbor(0, 0, Side::West), None);
        assert_eq!(g.neighbor(0, 0, Side::South), Some((0, 1)));
        assert_eq!(g.neighbor(0, 0, Side::East), Some((1, 0)));
        assert_eq!(g.num_side_neighbors(0, 0), 2);
        assert_eq!(g.num_side_neighbors(1, 0), 3);
        assert_eq!(g.num_side_neighbors(1, 1), 4);
        assert_eq!(g.num_diag_neighbors(0, 0), 1);
        assert_eq!(g.num_diag_neighbors(1, 1), 4);
    }

    #[test]
    fn diagonals() {
        let g = geo();
        assert_eq!(g.diagonal(1, 1, Corner::Nw), Some((0, 0)));
        assert_eq!(g.diagonal(1, 1, Corner::Se), Some((2, 2)));
        assert_eq!(g.diagonal(0, 0, Corner::Nw), None);
        assert_eq!(g.diagonal(7, 7, Corner::Se), None);
    }

    #[test]
    fn boundary_classification() {
        let g = geo();
        // node 0 holds tiles (0..4, 0..4); its east and south block edges
        // touch nodes 1 and 2
        assert!(g.is_node_boundary(3, 0)); // east edge of node 0
        assert!(g.is_node_boundary(0, 3)); // south edge of node 0
        assert!(g.is_node_boundary(3, 3)); // block corner
        assert!(!g.is_node_boundary(0, 0)); // domain corner, all local
        assert!(!g.is_node_boundary(1, 1)); // block interior
        assert!(g.is_node_boundary(4, 0)); // west edge of node 1
    }

    #[test]
    fn single_node_has_no_boundary_tiles() {
        let g = StencilGeometry::new(32, 4, ProcessGrid::new(1, 1));
        assert_eq!(g.boundary_tiles(), 0);
    }

    #[test]
    fn boundary_tile_count_on_2x2() {
        let g = geo();
        // every node's block is 4×4; boundary tiles per node: the two
        // block edges facing other nodes = 4 + 4 - 1 = 7; 4 nodes => 28
        assert_eq!(g.boundary_tiles(), 28);
    }

    #[test]
    fn sides_and_corners_are_consistent() {
        for s in Side::ALL {
            assert_eq!(s.opposite().opposite(), s);
            let (dx, dy) = s.delta();
            let (ox, oy) = s.opposite().delta();
            assert_eq!((dx + ox, dy + oy), (0, 0));
        }
        for c in Corner::ALL {
            assert_eq!(c.opposite().opposite(), c);
            let (dx, dy) = c.delta();
            let (ox, oy) = c.opposite().delta();
            assert_eq!((dx + ox, dy + oy), (0, 0));
            let (v, h) = c.sides();
            let (vdx, vdy) = v.delta();
            let (hdx, hdy) = h.delta();
            assert_eq!((vdx + hdx, vdy + hdy), (dx, dy));
        }
    }

    #[test]
    fn tile_origin_is_row_col() {
        let g = geo();
        assert_eq!(g.tile_origin(0, 0), (0, 0));
        assert_eq!(g.tile_origin(2, 1), (4, 8));
    }

    #[test]
    fn tile_rects_tile_the_grid() {
        let g = geo();
        assert_eq!(g.tile_rect(2, 1), Rect::new(4, 8, 4, 4));
        // adjacent tiles touch but do not intersect
        assert!(!g.tile_rect(2, 1).intersects(&g.tile_rect(3, 1)));
        assert!(!g.tile_rect(2, 1).intersects(&g.tile_rect(2, 2)));
        assert!(g.tile_rect(2, 1).intersects(&g.tile_rect(2, 1)));
    }

    #[test]
    fn tile_spaces_are_unique() {
        let g = geo();
        let mut seen = std::collections::HashSet::new();
        for ty in 0..g.tiles_y {
            for tx in 0..g.tiles_x {
                assert!(seen.insert(g.tile_space(tx, ty)));
            }
        }
        assert_eq!(seen.len(), g.num_tiles());
    }
}
