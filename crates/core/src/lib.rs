//! # ca-stencil — communication-avoiding 2D stencils over a dataflow runtime
//!
//! The paper's primary contribution, reimplemented on this repository's
//! PaRSEC-like [`runtime`]: the 2D five-point Jacobi iteration in two
//! flavours —
//!
//! * [`base`] — one task per tile per iteration, one-layer ghost exchange
//!   with every neighbour every iteration (Section IV-B1);
//! * [`ca`] — the PA1 communication-avoiding variant: node-boundary tiles
//!   keep `s`-deep ghost rings (plus corner blocks), communicate every `s`
//!   iterations and redundantly recompute the shrinking halo in between
//!   (Section IV-B2);
//! * [`pa2`] — a performance skeleton of Demmel's PA2 (no redundant
//!   flops, reduced overlap), which the paper describes but does not
//!   implement — included here as an ablation.
//!
//! Supporting modules: [`geometry`] (tiling and 2D block distribution),
//! [`tile`] (double-buffered tiles, ghost strips/corners, the 9-flop
//! generalized Jacobi kernel), [`store`] (per-tile data), [`problem`]
//! (Laplace instances and test fields), [`mod@reference`] (sequential ground
//! truth), [`flows`] (slot conventions), [`config`] (run configuration),
//! [`metrics`] (analytic message/flop accounting).
//!
//! Both schemes reproduce the sequential reference **bit for bit** — the
//! update expression is evaluated in the same order everywhere, so even
//! floating-point rounding agrees; the test suites assert exact equality.
//!
//! Configuration follows the workspace-wide builder convention:
//! [`StencilConfig::new`] fixes the required dimensions, chainable
//! `with_*` methods (`with_steps`, `with_ratio`, `with_profile`) set
//! everything optional — the same shape as `runtime::RunConfig`
//! (`with_policy`, `with_bodies`, `with_trace`) in the example below.
//!
//! ```
//! use ca_stencil::{build_base, Problem, StencilConfig};
//! use netsim::ProcessGrid;
//! use runtime::{run, RunConfig};
//!
//! let cfg = StencilConfig::new(Problem::laplace(16), 4, 3, ProcessGrid::new(2, 2));
//! let build = build_base(&cfg, true);
//! let report = run(
//!     &build.program,
//!     &RunConfig::simulated(machine::MachineProfile::nacl(), 4).with_bodies(),
//! );
//! assert_eq!(report.tasks_executed, 16 * 4); // 16 tiles × (3 iters + init)
//! ```

#![deny(missing_docs)]

pub mod base;
pub mod ca;
pub mod config;
pub mod dtd_front;
pub mod flows;
pub mod geometry;
pub mod metrics;
pub mod pa2;
pub mod problem;
pub mod reference;
pub mod solver;
pub mod store;
pub mod tile;

pub use base::{build_base, build_base_on};
pub use ca::{build_ca, build_ca_on, build_ca_shrunk};
pub use config::{StencilBuild, StencilConfig};
pub use dtd_front::build_base_dtd;
pub use flows::{kind_names, KIND_BOUNDARY, KIND_INIT, KIND_INTERIOR};
pub use geometry::{Corner, Side, StencilGeometry};
pub use pa2::build_pa2;
pub use problem::{CoefFn, Operator, Problem, ValueFn};
pub use reference::{jacobi_reference, laplace_residual, max_abs_diff};
pub use solver::{JacobiSolver, Scheme, SolveReport};
pub use store::TileStore;
pub use tile::{Extents, TileBuf, Weights};
