//! The base PaRSEC-style stencil (paper Section IV-B1): one task per tile
//! per iteration, a one-layer ghost exchange with every neighbour every
//! iteration. Interior tasks' flows stay on-node; tiles on the node-block
//! perimeter generate one message per remote side per iteration.

use crate::config::{StencilBuild, StencilConfig};
use crate::flows::{
    cross_rects, slot_of_side, OutFlow, KIND_BOUNDARY, KIND_INIT, KIND_INTERIOR, NUM_SLOTS_BASE,
    SLOT_SELF,
};
use crate::geometry::{Side, StencilGeometry};
use crate::problem::Operator;
use crate::store::TileStore;
use crate::tile::Extents;
use machine::StencilCostModel;
use netsim::NodeId;
use runtime::{
    FlowData, OutputDep, Params, Program, ReadRegion, TaskClass, TaskGraph, TaskKey, WriteRegion,
};
use std::sync::Arc;

/// The builders register exactly one class per program, so consumer keys
/// always reference class 0.
const CLASS: u16 = 0;

/// Task class of the base scheme.
pub struct BaseStencil {
    geo: StencilGeometry,
    store: Option<Arc<TileStore>>,
    model: StencilCostModel,
    op: Operator,
    iterations: u32,
    ratio: f64,
}

impl BaseStencil {
    fn decode(p: Params) -> (usize, usize, u32) {
        (p[0] as usize, p[1] as usize, p[2] as u32)
    }

    fn key(tx: usize, ty: usize, t: u32) -> TaskKey {
        TaskKey::new(CLASS, [tx as i32, ty as i32, t as i32, 0])
    }

    /// The output flows of task `p`, in flow-index order, with their
    /// consumers: the single source of truth used by `outputs`, `execute`
    /// and `output_bytes`.
    fn enumerate_out(&self, p: Params) -> Vec<(OutFlow, TaskKey, usize)> {
        let (tx, ty, t) = Self::decode(p);
        if t >= self.iterations {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(5);
        out.push((OutFlow::SelfFlow, Self::key(tx, ty, t + 1), SLOT_SELF));
        for side in Side::ALL {
            if let Some((nx, ny)) = self.geo.neighbor(tx, ty, side) {
                out.push((
                    OutFlow::Strip { side, depth: 1 },
                    Self::key(nx, ny, t + 1),
                    slot_of_side(side.opposite()),
                ));
            }
        }
        out
    }
}

impl TaskClass for BaseStencil {
    fn name(&self) -> &str {
        "base-stencil"
    }

    fn node_of(&self, p: Params) -> NodeId {
        let (tx, ty, _) = Self::decode(p);
        self.geo.node_of_tile(tx, ty)
    }

    fn activation_count(&self, p: Params) -> usize {
        let (tx, ty, t) = Self::decode(p);
        if t == 0 {
            0
        } else {
            1 + self.geo.num_side_neighbors(tx, ty)
        }
    }

    fn num_input_slots(&self, _p: Params) -> usize {
        NUM_SLOTS_BASE
    }

    fn num_output_flows(&self, p: Params) -> usize {
        self.enumerate_out(p).len()
    }

    fn outputs(&self, p: Params) -> Vec<OutputDep> {
        self.enumerate_out(p)
            .into_iter()
            .enumerate()
            .map(|(flow, (_, consumer, slot))| OutputDep {
                flow,
                consumer,
                slot,
            })
            .collect()
    }

    fn execute(&self, p: Params, inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
        let store = self
            .store
            .as_ref()
            .expect("base stencil built without data cannot execute bodies");
        let (tx, ty, t) = Self::decode(p);
        let mut buf = store.lock(tx, ty);
        if t > 0 {
            for side in Side::ALL {
                if let Some(flow) = inputs[slot_of_side(side)].take() {
                    buf.write_strip(side, 1, flow.expect_values());
                }
            }
            match &self.op {
                Operator::Constant(w) => buf.jacobi_step(w, Extents::ZERO),
                Operator::Variable(f) => {
                    buf.jacobi_step_var(|r, c| f(r, c), self.geo.tile_origin(tx, ty), Extents::ZERO)
                }
            }
        }
        self.enumerate_out(p)
            .into_iter()
            .map(|(of, _, _)| match of {
                OutFlow::SelfFlow => FlowData::values(Vec::new()),
                OutFlow::Strip { side, depth } => FlowData::values(buf.extract_strip(side, depth)),
                OutFlow::Block { .. } => unreachable!("base scheme has no corner flows"),
            })
            .collect()
    }

    fn output_bytes(&self, p: Params, flow: usize) -> usize {
        self.enumerate_out(p)[flow].0.bytes(self.geo.tile)
    }

    fn cost(&self, p: Params) -> f64 {
        let (_, _, t) = Self::decode(p);
        if t == 0 {
            // iterate-0 emission: strip copies only
            self.model.ghost_copy_time(4 * self.geo.tile)
        } else {
            self.model
                .task_time(self.geo.tile, self.geo.tile, self.ratio)
        }
    }

    fn priority(&self, p: Params) -> i32 {
        // boundary tiles first: their strips reach the comm thread early
        let (tx, ty, _) = Self::decode(p);
        i32::from(self.geo.is_node_boundary(tx, ty))
    }

    fn kind(&self, p: Params) -> u32 {
        let (tx, ty, t) = Self::decode(p);
        if t == 0 {
            KIND_INIT
        } else if self.geo.is_node_boundary(tx, ty) {
            KIND_BOUNDARY
        } else {
            KIND_INTERIOR
        }
    }

    fn write_region(&self, p: Params) -> Option<WriteRegion> {
        let (tx, ty, _) = Self::decode(p);
        // The iterate-0 emission "writes" the tile interior in the sense
        // the dataflow pass needs: it certifies the store's initial fill
        // of exactly the tile rectangle as valid. Deliberately NOT the
        // ghost ring — ghost validity must come from deliveries (or the
        // pinned Dirichlet frame), so a shrunken halo declaration shows
        // up as an uncovered read instead of hiding behind init.
        Some(WriteRegion {
            space: self.geo.tile_space(tx, ty),
            rect: self.geo.tile_rect(tx, ty),
        })
    }

    fn read_region(&self, p: Params) -> Option<ReadRegion> {
        let (tx, ty, t) = Self::decode(p);
        // t = 0 reads only the initial state it certifies itself: exempt.
        (t > 0).then(|| ReadRegion {
            space: self.geo.tile_space(tx, ty),
            rects: cross_rects(self.geo.tile_rect(tx, ty)).to_vec(),
        })
    }

    fn pinned_region(&self, p: Params) -> Option<ReadRegion> {
        let (tx, ty, _) = Self::decode(p);
        let rects = self.geo.dirichlet_rects(tx, ty, 1);
        (!rects.is_empty()).then(|| ReadRegion {
            space: self.geo.tile_space(tx, ty),
            rects,
        })
    }

    fn delivered_region(&self, p: Params, flow: usize) -> Option<ReadRegion> {
        let (tx, ty, _) = Self::decode(p);
        let (of, consumer, _) = self.enumerate_out(p).into_iter().nth(flow)?;
        let rect = of.region(self.geo.tile_origin(tx, ty), self.geo.tile)?;
        let (cx, cy) = (consumer.params[0] as usize, consumer.params[1] as usize);
        Some(ReadRegion::single(self.geo.tile_space(cx, cy), rect))
    }

    fn flops(&self, p: Params) -> f64 {
        let (_, _, t) = Self::decode(p);
        if t == 0 {
            0.0
        } else {
            self.model
                .task_flops(self.geo.tile, self.geo.tile, self.ratio)
        }
    }
}

/// Build the base-scheme program. With `carry_data`, a [`TileStore`] is
/// initialized from the problem and task bodies perform the real Jacobi
/// updates; without, the program is performance-only.
pub fn build_base(cfg: &StencilConfig, carry_data: bool) -> StencilBuild {
    let geo = cfg.geometry();
    let store = carry_data.then(|| Arc::new(TileStore::new(&cfg.problem, geo.clone(), |_, _| 1)));
    build_base_inner(cfg, geo, store)
}

/// Build the base-scheme program *over an existing store*, continuing from
/// whatever iterate the store currently holds (the iterate-0 emission
/// tasks read the store's current state). Used for chunked solves with
/// convergence checks between chunks.
pub fn build_base_on(cfg: &StencilConfig, store: Arc<TileStore>) -> StencilBuild {
    let geo = cfg.geometry();
    assert_eq!(
        store.geometry().num_tiles(),
        geo.num_tiles(),
        "store was built for a different tiling"
    );
    build_base_inner(cfg, geo, Some(store))
}

fn build_base_inner(
    cfg: &StencilConfig,
    geo: StencilGeometry,
    store: Option<Arc<TileStore>>,
) -> StencilBuild {
    let mut model = StencilCostModel::for_profile(&cfg.profile);
    if cfg.problem.op.is_variable() {
        model = model.with_variable_coefficients();
    }
    let class = BaseStencil {
        geo: geo.clone(),
        store: store.clone(),
        model,
        op: cfg.problem.op.clone(),
        iterations: cfg.iterations,
        ratio: cfg.ratio,
    };
    let mut graph = TaskGraph::new();
    let id = graph.add_class(Arc::new(class));
    assert_eq!(id, CLASS, "base program must have exactly one class");
    let roots = (0..geo.tiles_y)
        .flat_map(|ty| (0..geo.tiles_x).map(move |tx| BaseStencil::key(tx, ty, 0)))
        .collect();
    let total_tasks = geo.num_tiles() as u64 * (cfg.iterations as u64 + 1);
    StencilBuild {
        program: Program {
            graph: Arc::new(graph),
            roots,
            total_tasks,
        },
        store,
        geo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use crate::reference::{jacobi_reference, max_abs_diff};
    use netsim::ProcessGrid;
    use runtime::{run, RunConfig};

    fn cfg(n: usize, tile: usize, iters: u32, grid: ProcessGrid) -> StencilConfig {
        StencilConfig::new(Problem::scrambled(n, 77), tile, iters, grid)
    }

    #[test]
    fn graph_is_analysis_clean() {
        let c = cfg(12, 4, 3, ProcessGrid::new(1, 1));
        let b = build_base(&c, false);
        analyze::assert_clean(&b.program);
        let c = cfg(16, 4, 2, ProcessGrid::new(2, 2));
        let b = build_base(&c, false);
        let a = analyze::assert_clean(&b.program);
        // 16 tiles × (2 iters + init), no redundant work in the base scheme
        assert_eq!(a.tasks, 16 * 3);
        assert_eq!(a.flops.redundant, 0);
    }

    #[test]
    fn real_executor_matches_reference_bitwise() {
        let c = cfg(12, 4, 5, ProcessGrid::new(1, 1));
        let b = build_base(&c, true);
        run(&b.program, &RunConfig::shared_memory(4));
        let got = b.store.unwrap().gather();
        let want = jacobi_reference(&c.problem, 5);
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn simulated_executor_matches_reference_bitwise() {
        let c = cfg(16, 4, 4, ProcessGrid::new(2, 2));
        let b = build_base(&c, true);
        let r = run(
            &b.program,
            &RunConfig::simulated(machine::MachineProfile::nacl(), 4).with_bodies(),
        );
        assert_eq!(r.tasks_executed, 16 * 5);
        let got = b.store.unwrap().gather();
        let want = jacobi_reference(&c.problem, 4);
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn remote_message_count_matches_block_perimeter() {
        // 4×4 tiles over 2×2 nodes: each node block is 2×2 tiles; remote
        // side pairs: along each of the 4 internal block edges, 2 tile
        // pairs; each pair exchanges 2 strips (one each way) per
        // iteration; producers run at t = 0..iters.
        let iters = 3;
        let c = cfg(16, 4, iters, ProcessGrid::new(2, 2));
        let b = build_base(&c, false);
        let r = run(
            &b.program,
            &RunConfig::simulated(machine::MachineProfile::nacl(), 4),
        );
        let per_iter = 4 * 2 * 2;
        assert_eq!(r.remote_messages(), (per_iter * iters) as u64);
        // each strip is tile × 8 bytes
        assert_eq!(r.remote_bytes(), r.remote_messages() * (4 * 8));
    }

    #[test]
    fn single_node_run_has_no_messages() {
        let c = cfg(12, 4, 3, ProcessGrid::new(1, 1));
        let b = build_base(&c, false);
        let r = run(
            &b.program,
            &RunConfig::simulated(machine::MachineProfile::nacl(), 1),
        );
        assert_eq!(r.remote_messages(), 0);
        assert!(r.local_flows().unwrap() > 0);
    }

    #[test]
    fn boundary_kind_tags_follow_geometry() {
        let c = cfg(32, 4, 1, ProcessGrid::new(2, 2));
        let b = build_base(&c, false);
        let class = b.program.graph.class(0);
        // 8×8 tiles, 4×4 per node: (3,1) touches node 1; (1,1) is interior
        assert_eq!(class.kind([3, 1, 1, 0]), KIND_BOUNDARY);
        assert_eq!(class.kind([1, 1, 1, 0]), KIND_INTERIOR);
        assert_eq!(class.kind([3, 1, 0, 0]), KIND_INIT);
        // a 1×1 node grid has no boundary tiles
        let c1 = cfg(16, 4, 1, ProcessGrid::new(1, 1));
        let b1 = build_base(&c1, false);
        assert_eq!(b1.program.graph.class(0).kind([0, 0, 1, 0]), KIND_INTERIOR);
    }
}
