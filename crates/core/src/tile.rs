//! Tile storage and the 5-point Jacobi kernel.
//!
//! A [`TileBuf`] holds one tile's data twice (Jacobi reads `X^{t-1}` and
//! writes `X^t`) over a square buffer with a ghost ring of configurable
//! width: 1 for tiles that exchange every iteration, the CA step size `s`
//! for node-boundary tiles in the communication-avoiding scheme (paper
//! Section IV-B2: "boundary tiles will have ghost region of steps-layers").

use crate::geometry::{Corner, Side};
use serde::{Deserialize, Serialize};

/// The general 5-point stencil weights. The paper deliberately uses the
/// general (non-symmetric) form so every implementation performs the same
/// 9 flops per point: 5 multiplies + 4 adds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Weight of the point itself (`w_{0,0}`).
    pub center: f64,
    /// Weight of the northern neighbour (`w_{-1,0}`).
    pub north: f64,
    /// Weight of the southern neighbour (`w_{1,0}`).
    pub south: f64,
    /// Weight of the western neighbour (`w_{0,-1}`).
    pub west: f64,
    /// Weight of the eastern neighbour (`w_{0,1}`).
    pub east: f64,
}

impl Weights {
    /// Jacobi weights for Laplace's equation: the four-neighbour average.
    pub fn laplace_jacobi() -> Self {
        Weights {
            center: 0.0,
            north: 0.25,
            south: 0.25,
            west: 0.25,
            east: 0.25,
        }
    }

    /// An asymmetric weight set used by tests so that orientation mistakes
    /// (north/south or row/column swaps) change the answer.
    pub fn skewed() -> Self {
        Weights {
            center: 0.05,
            north: 0.3,
            south: 0.2,
            west: 0.25,
            east: 0.2,
        }
    }
}

/// Per-side widths of an update region extension beyond the tile proper.
/// All zeros means "update exactly the tile" (the base scheme); the CA
/// scheme uses shrinking extents over its deep halos.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extents {
    /// Extra rows updated above the tile.
    pub north: usize,
    /// Extra rows updated below the tile.
    pub south: usize,
    /// Extra columns updated left of the tile.
    pub west: usize,
    /// Extra columns updated right of the tile.
    pub east: usize,
}

impl Extents {
    /// No extension.
    pub const ZERO: Extents = Extents {
        north: 0,
        south: 0,
        west: 0,
        east: 0,
    };

    /// The same extent on every side.
    pub fn uniform(e: usize) -> Self {
        Extents {
            north: e,
            south: e,
            west: e,
            east: e,
        }
    }

    /// Points in the extended region for a `tile × tile` tile.
    pub fn region_points(&self, tile: usize) -> usize {
        (tile + self.north + self.south) * (tile + self.west + self.east)
    }
}

/// One tile's double-buffered storage with a ghost ring of width `ghost`.
///
/// Local coordinates: `(row, col)` with the tile proper at
/// `[0, tile) × [0, tile)` and the ghost ring at negative / `≥ tile`
/// indices down to `-ghost` / up to `tile + ghost - 1`.
#[derive(Debug, Clone)]
pub struct TileBuf {
    tile: usize,
    ghost: usize,
    stride: usize,
    cur: Vec<f64>,
    next: Vec<f64>,
}

impl TileBuf {
    /// A zero-initialized tile with the given ghost width.
    pub fn new(tile: usize, ghost: usize) -> Self {
        assert!(tile > 0, "tile size must be positive");
        assert!(ghost >= 1, "ghost width must be at least 1");
        let stride = tile + 2 * ghost;
        TileBuf {
            tile,
            ghost,
            stride,
            cur: vec![0.0; stride * stride],
            next: vec![0.0; stride * stride],
        }
    }

    /// Tile edge length.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Ghost ring width.
    pub fn ghost(&self) -> usize {
        self.ghost
    }

    #[inline]
    fn idx(&self, r: i64, c: i64) -> usize {
        let g = self.ghost as i64;
        debug_assert!(
            r >= -g && c >= -g && r < self.tile as i64 + g && c < self.tile as i64 + g,
            "local coordinate ({r},{c}) outside buffer (tile {}, ghost {})",
            self.tile,
            self.ghost
        );
        ((r + g) as usize) * self.stride + (c + g) as usize
    }

    /// Read a value from the current iterate.
    #[inline]
    pub fn get(&self, r: i64, c: i64) -> f64 {
        self.cur[self.idx(r, c)]
    }

    /// Write a value into the current iterate.
    #[inline]
    pub fn set(&mut self, r: i64, c: i64, v: f64) {
        let i = self.idx(r, c);
        self.cur[i] = v;
    }

    /// Write a value into both buffers (static boundary cells must survive
    /// every swap).
    #[inline]
    pub fn set_both(&mut self, r: i64, c: i64, v: f64) {
        let i = self.idx(r, c);
        self.cur[i] = v;
        self.next[i] = v;
    }

    /// Initialize every buffer cell from `f(local_row, local_col)`,
    /// writing both buffers.
    pub fn fill_both<F: FnMut(i64, i64) -> f64>(&mut self, mut f: F) {
        let g = self.ghost as i64;
        let t = self.tile as i64;
        for r in -g..t + g {
            for c in -g..t + g {
                let v = f(r, c);
                self.set_both(r, c, v);
            }
        }
    }

    /// Apply one generalized 5-point Jacobi step over the tile extended by
    /// `ext`, then swap buffers so the new iterate becomes current. Reads
    /// must stay inside the buffer: `ext + 1 ≤ ghost` on every used side.
    pub fn jacobi_step(&mut self, w: &Weights, ext: Extents) {
        let g = self.ghost;
        assert!(
            ext.north < g && ext.south < g && ext.west < g && ext.east < g,
            "extents {ext:?} exceed ghost width {g}"
        );
        let t = self.tile as i64;
        let (r0, r1) = (-(ext.north as i64), t + ext.south as i64);
        let (c0, c1) = (-(ext.west as i64), t + ext.east as i64);
        for r in r0..r1 {
            let base = self.idx(r, c0);
            let up = self.idx(r - 1, c0);
            let down = self.idx(r + 1, c0);
            let width = (c1 - c0) as usize;
            for k in 0..width {
                // 5 multiplies + 4 adds: the paper's 9 flops per point.
                self.next[base + k] = w.center * self.cur[base + k]
                    + w.north * self.cur[up + k]
                    + w.south * self.cur[down + k]
                    + w.west * self.cur[base + k - 1]
                    + w.east * self.cur[base + k + 1];
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Variable-coefficient variant of [`TileBuf::jacobi_step`]: the weights
    /// at each point come from `coef(global_row, global_col)`, where
    /// `origin` is the global coordinate of the tile's `(0, 0)` point. The
    /// update expression is evaluated in the same term order as the
    /// constant-coefficient kernel, so results stay bitwise schedule-
    /// independent.
    pub fn jacobi_step_var<F>(&mut self, coef: F, origin: (i64, i64), ext: Extents)
    where
        F: Fn(i64, i64) -> Weights,
    {
        let g = self.ghost;
        assert!(
            ext.north < g && ext.south < g && ext.west < g && ext.east < g,
            "extents {ext:?} exceed ghost width {g}"
        );
        let t = self.tile as i64;
        let (row0, col0) = origin;
        let (r0, r1) = (-(ext.north as i64), t + ext.south as i64);
        let (c0, c1) = (-(ext.west as i64), t + ext.east as i64);
        for r in r0..r1 {
            let base = self.idx(r, c0);
            let up = self.idx(r - 1, c0);
            let down = self.idx(r + 1, c0);
            let width = (c1 - c0) as usize;
            for k in 0..width {
                let w = coef(row0 + r, col0 + c0 + k as i64);
                self.next[base + k] = w.center * self.cur[base + k]
                    + w.north * self.cur[up + k]
                    + w.south * self.cur[down + k]
                    + w.west * self.cur[base + k - 1]
                    + w.east * self.cur[base + k + 1];
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Copy out the `depth` rows/columns of the tile adjacent to `side`
    /// (row-major), e.g. `extract_strip(North, d)` is rows `0..d`.
    pub fn extract_strip(&self, side: Side, depth: usize) -> Vec<f64> {
        assert!(depth <= self.tile, "strip depth exceeds tile");
        let t = self.tile as i64;
        let d = depth as i64;
        let (rows, cols) = match side {
            Side::North => (0..d, 0..t),
            Side::South => (t - d..t, 0..t),
            Side::West => (0..t, 0..d),
            Side::East => (0..t, t - d..t),
        };
        let mut out = Vec::with_capacity((rows.end - rows.start) as usize * depth.max(1));
        for r in rows {
            for c in cols.clone() {
                out.push(self.get(r, c));
            }
        }
        out
    }

    /// Write a strip (as produced by the neighbour's
    /// `extract_strip(side.opposite(), depth)`) into the ghost region on
    /// `side` of the current iterate.
    pub fn write_strip(&mut self, side: Side, depth: usize, vals: &[f64]) {
        assert!(depth <= self.ghost, "strip depth exceeds ghost width");
        assert_eq!(vals.len(), depth * self.tile, "strip length mismatch");
        let t = self.tile as i64;
        let d = depth as i64;
        let (rows, cols) = match side {
            Side::North => (-d..0, 0..t),
            Side::South => (t..t + d, 0..t),
            Side::West => (0..t, -d..0),
            Side::East => (0..t, t..t + d),
        };
        let mut it = vals.iter();
        for r in rows {
            for c in cols.clone() {
                self.set(r, c, *it.next().expect("length checked"));
            }
        }
    }

    /// Copy out the `depth × depth` block of the tile at `corner`
    /// (row-major), e.g. `extract_corner(Nw, d)` is rows `0..d` × cols
    /// `0..d`.
    pub fn extract_corner(&self, corner: Corner, depth: usize) -> Vec<f64> {
        assert!(depth <= self.tile, "corner depth exceeds tile");
        let t = self.tile as i64;
        let d = depth as i64;
        let (rows, cols) = match corner {
            Corner::Nw => (0..d, 0..d),
            Corner::Ne => (0..d, t - d..t),
            Corner::Sw => (t - d..t, 0..d),
            Corner::Se => (t - d..t, t - d..t),
        };
        let mut out = Vec::with_capacity(depth * depth);
        for r in rows {
            for c in cols.clone() {
                out.push(self.get(r, c));
            }
        }
        out
    }

    /// Write a corner block (as produced by the diagonal neighbour's
    /// `extract_corner(corner.opposite(), depth)`) into the ghost corner at
    /// `corner`.
    pub fn write_corner(&mut self, corner: Corner, depth: usize, vals: &[f64]) {
        assert!(depth <= self.ghost, "corner depth exceeds ghost width");
        assert_eq!(vals.len(), depth * depth, "corner length mismatch");
        let t = self.tile as i64;
        let d = depth as i64;
        let (rows, cols) = match corner {
            Corner::Nw => (-d..0, -d..0),
            Corner::Ne => (-d..0, t..t + d),
            Corner::Sw => (t..t + d, -d..0),
            Corner::Se => (t..t + d, t..t + d),
        };
        let mut it = vals.iter();
        for r in rows {
            for c in cols.clone() {
                self.set(r, c, *it.next().expect("length checked"));
            }
        }
    }

    /// The tile-proper values of the current iterate, row-major.
    pub fn interior(&self) -> Vec<f64> {
        let t = self.tile as i64;
        let mut out = Vec::with_capacity(self.tile * self.tile);
        for r in 0..t {
            for c in 0..t {
                out.push(self.get(r, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_index() {
        let mut b = TileBuf::new(4, 2);
        b.fill_both(|r, c| (r * 100 + c) as f64);
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(b.get(-2, -2), -202.0);
        assert_eq!(b.get(3, 3), 303.0);
        assert_eq!(b.get(5, 5), 505.0);
    }

    #[test]
    fn jacobi_step_matches_hand_computation() {
        let mut b = TileBuf::new(2, 1);
        b.fill_both(|r, c| (r * 10 + c) as f64);
        let w = Weights::skewed();
        b.jacobi_step(&w, Extents::ZERO);
        // point (0,0): center 0, north -10, south 10, west -1, east 1
        let expected = 0.05 * 0.0 + 0.3 * (-10.0) + 0.2 * 10.0 - 0.25 * 1.0 + 0.2 * 1.0;
        assert!((b.get(0, 0) - expected).abs() < 1e-15);
        // ghost cells keep their static values after the swap
        assert_eq!(b.get(-1, 0), -10.0);
    }

    #[test]
    fn laplace_average_of_constant_is_constant() {
        let mut b = TileBuf::new(8, 1);
        b.fill_both(|_, _| 7.5);
        b.jacobi_step(&Weights::laplace_jacobi(), Extents::ZERO);
        assert!(b.interior().iter().all(|&v| (v - 7.5).abs() < 1e-15));
    }

    #[test]
    fn extended_update_region() {
        let mut b = TileBuf::new(4, 3);
        b.fill_both(|r, c| (r + c) as f64);
        b.jacobi_step(&Weights::laplace_jacobi(), Extents::uniform(2));
        // the updated halo cell (-2, 0): average of (-3,0), (-1,0), (-2,-1), (-2,1)
        let expected = 0.25 * ((-3.0) + (-1.0) + (-3.0) + (-1.0));
        assert!((b.get(-2, 0) - expected).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "exceed ghost width")]
    fn extents_beyond_ghost_rejected() {
        let mut b = TileBuf::new(4, 1);
        b.jacobi_step(&Weights::laplace_jacobi(), Extents::uniform(1));
    }

    #[test]
    fn strip_roundtrip_between_neighbors() {
        // a's south strip lands in b's... a is NORTH of b: a sends
        // extract_strip(South), b receives write_strip(North).
        let mut a = TileBuf::new(4, 1);
        a.fill_both(|r, c| (1000 + r * 10 + c) as f64);
        let mut b = TileBuf::new(4, 2);
        b.fill_both(|_, _| 0.0);
        let strip = a.extract_strip(Side::South, 2);
        assert_eq!(strip.len(), 8);
        b.write_strip(Side::North, 2, &strip);
        // b's ghost row -1 = a's row 3; row -2 = a's row 2 (global order)
        assert_eq!(b.get(-1, 0), 1030.0);
        assert_eq!(b.get(-2, 0), 1020.0);
        assert_eq!(b.get(-1, 3), 1033.0);
    }

    #[test]
    fn east_west_strip_roundtrip() {
        let mut a = TileBuf::new(4, 1);
        a.fill_both(|r, c| (r * 10 + c) as f64);
        let mut b = TileBuf::new(4, 2);
        b.fill_both(|_, _| 0.0);
        // a is WEST of b: a sends its East columns, b writes its West ghost
        let strip = a.extract_strip(Side::East, 2);
        b.write_strip(Side::West, 2, &strip);
        // b's ghost col -1 = a's col 3; col -2 = a's col 2
        assert_eq!(b.get(0, -1), 3.0);
        assert_eq!(b.get(0, -2), 2.0);
        assert_eq!(b.get(3, -1), 33.0);
    }

    #[test]
    fn corner_roundtrip() {
        let mut a = TileBuf::new(4, 1);
        a.fill_both(|r, c| (r * 10 + c) as f64);
        let mut b = TileBuf::new(4, 2);
        b.fill_both(|_, _| 0.0);
        // a is NW of b: a sends its SE corner, b writes its NW ghost corner
        let block = a.extract_corner(Corner::Se, 2);
        b.write_corner(Corner::Nw, 2, &block);
        // b's (-1,-1) = a's (3,3); b's (-2,-2) = a's (2,2)
        assert_eq!(b.get(-1, -1), 33.0);
        assert_eq!(b.get(-2, -2), 22.0);
        assert_eq!(b.get(-2, -1), 23.0);
    }

    #[test]
    fn strip_lengths_validated() {
        let mut b = TileBuf::new(4, 2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.write_strip(Side::North, 2, &[0.0; 3]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn extents_region_points() {
        assert_eq!(Extents::ZERO.region_points(4), 16);
        assert_eq!(Extents::uniform(2).region_points(4), 64);
        let e = Extents {
            north: 1,
            south: 0,
            west: 2,
            east: 0,
        };
        assert_eq!(e.region_points(4), 30);
    }
}
