//! Sequential ground truth: the whole-grid Jacobi iteration with no tiling,
//! no tasks and no communication. Both distributed schemes must reproduce
//! it bit for bit (the update expression is evaluated in the same order
//! everywhere, so even floating-point rounding agrees).

use crate::problem::Problem;

/// Run `iterations` Jacobi sweeps of `problem` and return the final
/// interior, row-major `n × n`.
pub fn jacobi_reference(problem: &Problem, iterations: u32) -> Vec<f64> {
    let n = problem.n;
    let stride = n + 2;
    let mut cur = vec![0.0; stride * stride];
    let mut next = vec![0.0; stride * stride];
    // Fill the frame (static) and the interior (iterate 0).
    for r in -1..=n as i64 {
        for c in -1..=n as i64 {
            let v = problem.value_at(r, c);
            let i = (r + 1) as usize * stride + (c + 1) as usize;
            cur[i] = v;
            next[i] = v; // frame cells must survive swaps
        }
    }
    for _ in 0..iterations {
        for r in 1..=n {
            for c in 1..=n {
                let i = r * stride + c;
                let w = problem.op.weights_at(r as i64 - 1, c as i64 - 1);
                next[i] = w.center * cur[i]
                    + w.north * cur[i - stride]
                    + w.south * cur[i + stride]
                    + w.west * cur[i - 1]
                    + w.east * cur[i + 1];
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let mut out = Vec::with_capacity(n * n);
    for r in 1..=n {
        out.extend_from_slice(&cur[r * stride + 1..r * stride + 1 + n]);
    }
    out
}

/// Maximum absolute difference between two fields; panics on length
/// mismatch.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "field size mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// The residual `max |x - reference|` of Laplace's-equation convergence:
/// distance of the field from the harmonic boundary extension. Used by
/// examples to show the solver actually converges.
pub fn laplace_residual(problem: &Problem, field: &[f64]) -> f64 {
    let n = problem.n;
    assert_eq!(field.len(), n * n, "field size mismatch");
    let mut worst = 0.0f64;
    for r in 0..n {
        for c in 0..n {
            let exact = (problem.bc)(r as i64, c as i64);
            worst = worst.max((field[r * n + c] - exact).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_iterations_returns_initial_field() {
        let p = Problem::scrambled(6, 5);
        let f = jacobi_reference(&p, 0);
        for r in 0..6 {
            for c in 0..6 {
                assert_eq!(f[r * 6 + c], p.value_at(r as i64, c as i64));
            }
        }
    }

    #[test]
    fn harmonic_function_is_a_fixed_point() {
        let p = Problem::harmonic_fixed_point(8);
        let f0 = jacobi_reference(&p, 0);
        let f50 = jacobi_reference(&p, 50);
        assert!(max_abs_diff(&f0, &f50) < 1e-12);
    }

    #[test]
    fn laplace_jacobi_converges_towards_boundary_extension() {
        let p = Problem::laplace(16);
        let early = jacobi_reference(&p, 5);
        let late = jacobi_reference(&p, 500);
        assert!(laplace_residual(&p, &late) < laplace_residual(&p, &early));
        assert!(laplace_residual(&p, &late) < 0.05);
    }

    #[test]
    fn one_step_hand_check() {
        // 2×2 grid, scrambled; verify one point by hand.
        let p = Problem::scrambled(2, 11);
        let f = jacobi_reference(&p, 1);
        let w = p.op.constant();
        let expected = w.center * p.value_at(0, 0)
            + w.north * p.value_at(-1, 0)
            + w.south * p.value_at(1, 0)
            + w.west * p.value_at(0, -1)
            + w.east * p.value_at(0, 1);
        assert!((f[0] - expected).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn diff_requires_equal_lengths() {
        max_abs_diff(&[1.0], &[1.0, 2.0]);
    }
}
