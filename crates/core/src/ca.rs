//! The communication-avoiding stencil (paper Section IV-B2): Demmel et
//! al.'s PA1 scheme applied at node boundaries, on top of the dataflow
//! runtime.
//!
//! Node-boundary tiles keep a ghost ring `s` layers deep. Every `s`
//! iterations they receive `s`-deep edge strips from all four neighbours
//! **and** `s × s` corner blocks from the four diagonal neighbours ("we
//! need to buffer additional data from the four corner neighbors"); in the
//! `s − 1` iterations in between they fire on the self-flow alone,
//! redundantly recomputing their shrinking halo instead of communicating.
//! Interior tiles behave exactly as in the base scheme.
//!
//! With phase `k = (t − 1) mod s` counted from the exchange iteration, a
//! boundary tile's current iterate is valid `s − k` layers beyond the tile
//! on every side that has a neighbour, it updates `s − 1 − k` layers, and
//! after `s` phases the ring is empty and refilled — the classic PA1
//! trapezoid, expressed as per-side extents (domain sides never extend:
//! the static Dirichlet ring is always valid at depth 1).

use crate::config::{StencilBuild, StencilConfig};
use crate::flows::{
    cross_rects, slot_of_corner, slot_of_side, OutFlow, KIND_BOUNDARY, KIND_INIT, KIND_INTERIOR,
    NUM_SLOTS_CA, SLOT_SELF,
};
use crate::geometry::{Corner, Side, StencilGeometry};
use crate::problem::Operator;
use crate::store::TileStore;
use crate::tile::Extents;
use machine::StencilCostModel;
use netsim::NodeId;
use runtime::{
    FlowData, OutputDep, Params, Program, ReadRegion, Rect, TaskClass, TaskGraph, TaskKey,
    WriteRegion,
};
use std::sync::Arc;

const CLASS: u16 = 0;

/// Task class of the CA scheme.
pub struct CaStencil {
    geo: StencilGeometry,
    store: Option<Arc<TileStore>>,
    model: StencilCostModel,
    op: Operator,
    iterations: u32,
    steps: usize,
    ratio: f64,
    /// [`build_ca_shrunk`]'s fault injection: mis-declare deep South
    /// strips one layer shallower than the wire actually carries.
    shrunk: bool,
}

impl CaStencil {
    fn decode(p: Params) -> (usize, usize, u32) {
        (p[0] as usize, p[1] as usize, p[2] as u32)
    }

    fn key(tx: usize, ty: usize, t: u32) -> TaskKey {
        TaskKey::new(CLASS, [tx as i32, ty as i32, t as i32, 0])
    }

    fn is_boundary(&self, tx: usize, ty: usize) -> bool {
        self.geo.is_node_boundary(tx, ty)
    }

    /// Phase within the CA cycle for an iteration `t ≥ 1`: 0 on exchange
    /// iterations.
    fn phase(&self, t: u32) -> usize {
        (t as usize - 1) % self.steps
    }

    /// Producer-side condition: tasks at iteration `t` feed the next
    /// exchange when `t` is a multiple of `s` (consumers at `t + 1` have
    /// phase 0).
    fn feeds_exchange(&self, t: u32) -> bool {
        (t as usize).is_multiple_of(self.steps)
    }

    /// Update-region extents of a boundary tile at iteration `t`:
    /// `s − 1 − k` on sides with a neighbour, 0 towards the domain edge.
    fn extents(&self, tx: usize, ty: usize, t: u32) -> Extents {
        let e = self.steps - 1 - self.phase(t);
        let on = |side| {
            if self.geo.neighbor(tx, ty, side).is_some() {
                e
            } else {
                0
            }
        };
        Extents {
            north: on(Side::North),
            south: on(Side::South),
            west: on(Side::West),
            east: on(Side::East),
        }
    }

    /// The rectangle task `(tx, ty, t)` updates: the tile, extended by
    /// the current extents into the private ghost ring for boundary
    /// tiles. Shared by `write_region` and `read_region`.
    fn update_rect(&self, tx: usize, ty: usize, t: u32) -> Rect {
        let mut rect = self.geo.tile_rect(tx, ty);
        if self.is_boundary(tx, ty) {
            let ext = self.extents(tx, ty, t);
            rect = Rect::new(
                rect.row - ext.north as i64,
                rect.col - ext.west as i64,
                rect.rows + (ext.north + ext.south) as u32,
                rect.cols + (ext.west + ext.east) as u32,
            );
        }
        rect
    }

    /// Apply one Jacobi step on a tile with the given update extents,
    /// dispatching on the operator kind.
    fn apply(&self, buf: &mut crate::tile::TileBuf, tx: usize, ty: usize, ext: Extents) {
        match &self.op {
            Operator::Constant(w) => buf.jacobi_step(w, ext),
            Operator::Variable(f) => {
                buf.jacobi_step_var(|r, c| f(r, c), self.geo.tile_origin(tx, ty), ext)
            }
        }
    }

    /// The output flows of task `p`, in flow-index order, with their
    /// consumers.
    fn enumerate_out(&self, p: Params) -> Vec<(OutFlow, TaskKey, usize)> {
        let (tx, ty, t) = Self::decode(p);
        if t >= self.iterations {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(9);
        out.push((OutFlow::SelfFlow, Self::key(tx, ty, t + 1), SLOT_SELF));
        let deep = self.feeds_exchange(t);
        for side in Side::ALL {
            if let Some((nx, ny)) = self.geo.neighbor(tx, ty, side) {
                if self.is_boundary(nx, ny) {
                    if deep {
                        out.push((
                            OutFlow::Strip {
                                side,
                                depth: self.steps,
                            },
                            Self::key(nx, ny, t + 1),
                            slot_of_side(side.opposite()),
                        ));
                    }
                } else {
                    out.push((
                        OutFlow::Strip { side, depth: 1 },
                        Self::key(nx, ny, t + 1),
                        slot_of_side(side.opposite()),
                    ));
                }
            }
        }
        if deep {
            for corner in Corner::ALL {
                if let Some((dx, dy)) = self.geo.diagonal(tx, ty, corner) {
                    if self.is_boundary(dx, dy) {
                        out.push((
                            OutFlow::Block {
                                corner,
                                depth: self.steps,
                            },
                            Self::key(dx, dy, t + 1),
                            slot_of_corner(corner.opposite()),
                        ));
                    }
                }
            }
        }
        out
    }
}

impl TaskClass for CaStencil {
    fn name(&self) -> &str {
        "ca-stencil"
    }

    fn node_of(&self, p: Params) -> NodeId {
        let (tx, ty, _) = Self::decode(p);
        self.geo.node_of_tile(tx, ty)
    }

    fn activation_count(&self, p: Params) -> usize {
        let (tx, ty, t) = Self::decode(p);
        if t == 0 {
            0
        } else if !self.is_boundary(tx, ty) {
            1 + self.geo.num_side_neighbors(tx, ty)
        } else if self.phase(t) == 0 {
            1 + self.geo.num_side_neighbors(tx, ty) + self.geo.num_diag_neighbors(tx, ty)
        } else {
            1 // self-flow only: the communication-avoided iterations
        }
    }

    fn num_input_slots(&self, _p: Params) -> usize {
        NUM_SLOTS_CA
    }

    fn num_output_flows(&self, p: Params) -> usize {
        self.enumerate_out(p).len()
    }

    fn outputs(&self, p: Params) -> Vec<OutputDep> {
        self.enumerate_out(p)
            .into_iter()
            .enumerate()
            .map(|(flow, (_, consumer, slot))| OutputDep {
                flow,
                consumer,
                slot,
            })
            .collect()
    }

    fn execute(&self, p: Params, inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
        let store = self
            .store
            .as_ref()
            .expect("CA stencil built without data cannot execute bodies");
        let (tx, ty, t) = Self::decode(p);
        let mut buf = store.lock(tx, ty);
        if t > 0 {
            if !self.is_boundary(tx, ty) {
                for side in Side::ALL {
                    if let Some(flow) = inputs[slot_of_side(side)].take() {
                        buf.write_strip(side, 1, flow.expect_values());
                    }
                }
                self.apply(&mut buf, tx, ty, Extents::ZERO);
            } else {
                if self.phase(t) == 0 {
                    for side in Side::ALL {
                        if let Some(flow) = inputs[slot_of_side(side)].take() {
                            buf.write_strip(side, self.steps, flow.expect_values());
                        }
                    }
                    for corner in Corner::ALL {
                        if let Some(flow) = inputs[slot_of_corner(corner)].take() {
                            buf.write_corner(corner, self.steps, flow.expect_values());
                        }
                    }
                }
                let ext = self.extents(tx, ty, t);
                self.apply(&mut buf, tx, ty, ext);
            }
        }
        self.enumerate_out(p)
            .into_iter()
            .map(|(of, _, _)| match of {
                OutFlow::SelfFlow => FlowData::values(Vec::new()),
                OutFlow::Strip { side, depth } => FlowData::values(buf.extract_strip(side, depth)),
                OutFlow::Block { corner, depth } => {
                    FlowData::values(buf.extract_corner(corner, depth))
                }
            })
            .collect()
    }

    fn output_bytes(&self, p: Params, flow: usize) -> usize {
        self.enumerate_out(p)[flow].0.bytes(self.geo.tile)
    }

    fn cost(&self, p: Params) -> f64 {
        let (tx, ty, t) = Self::decode(p);
        let tile = self.geo.tile;
        if t == 0 {
            let cells: usize = self
                .enumerate_out(p)
                .iter()
                .map(|(of, _, _)| of.bytes(tile) / 8)
                .sum();
            return self.model.ghost_copy_time(cells);
        }
        let base = self.model.task_time(tile, tile, self.ratio);
        if !self.is_boundary(tx, ty) {
            return base;
        }
        // Redundant halo work: the extended region beyond the tile, at the
        // same per-point cost (and the same ratio scaling) as the kernel.
        let ext = self.extents(tx, ty, t);
        let halo_points = (ext.region_points(tile) - tile * tile) as f64;
        let halo = self
            .model
            .region_time(halo_points * self.ratio * self.ratio, tile, tile);
        // Exchange iterations additionally copy the deep ghost ring in —
        // the "extra copies in the body" that make the paper's CA kernels'
        // median 153 ms versus 136 ms base (Section VI-E).
        let copies = if self.phase(t) == 0 {
            let mut cells = 0usize;
            for side in Side::ALL {
                if self.geo.neighbor(tx, ty, side).is_some() {
                    cells += self.steps * tile;
                }
            }
            for corner in Corner::ALL {
                if self.geo.diagonal(tx, ty, corner).is_some() {
                    cells += self.steps * self.steps;
                }
            }
            self.model.ghost_copy_time(cells)
        } else {
            0.0
        };
        base + halo + copies
    }

    fn priority(&self, p: Params) -> i32 {
        // boundary tiles first: their strips reach the comm thread early
        let (tx, ty, _) = Self::decode(p);
        i32::from(self.is_boundary(tx, ty))
    }

    fn kind(&self, p: Params) -> u32 {
        let (tx, ty, t) = Self::decode(p);
        if t == 0 {
            KIND_INIT
        } else if self.is_boundary(tx, ty) {
            KIND_BOUNDARY
        } else {
            KIND_INTERIOR
        }
    }

    fn write_region(&self, p: Params) -> Option<WriteRegion> {
        let (tx, ty, t) = Self::decode(p);
        // The iterate-0 emission certifies the store's initial fill of
        // the tile rectangle — never the ghost ring, so ghost validity
        // must be proven from deliveries (see base.rs for the rationale).
        //
        // Boundary tiles at t > 0 also update their halo: the written
        // rectangle extends beyond the tile by the current extents. Those
        // global coordinates overlap the neighbours' rectangles, but the
        // space is the tile's private buffer — the recompute writes its
        // own ghost ring, never the neighbour's cells — so no race is
        // declared.
        let rect = if t == 0 {
            self.geo.tile_rect(tx, ty)
        } else {
            self.update_rect(tx, ty, t)
        };
        Some(WriteRegion {
            space: self.geo.tile_space(tx, ty),
            rect,
        })
    }

    fn read_region(&self, p: Params) -> Option<ReadRegion> {
        let (tx, ty, t) = Self::decode(p);
        // t = 0 reads only the initial state it certifies itself: exempt.
        (t > 0).then(|| ReadRegion {
            space: self.geo.tile_space(tx, ty),
            rects: cross_rects(self.update_rect(tx, ty, t)).to_vec(),
        })
    }

    fn pinned_region(&self, p: Params) -> Option<ReadRegion> {
        let (tx, ty, _) = Self::decode(p);
        // The Dirichlet frame is pre-filled through the whole ghost ring:
        // `steps` deep on boundary tiles, 1 on interior ones.
        let depth = if self.is_boundary(tx, ty) {
            self.steps
        } else {
            1
        };
        let rects = self.geo.dirichlet_rects(tx, ty, depth);
        (!rects.is_empty()).then(|| ReadRegion {
            space: self.geo.tile_space(tx, ty),
            rects,
        })
    }

    fn delivered_region(&self, p: Params, flow: usize) -> Option<ReadRegion> {
        let (tx, ty, _) = Self::decode(p);
        let (of, consumer, _) = self.enumerate_out(p).into_iter().nth(flow)?;
        let mut rect = of.region(self.geo.tile_origin(tx, ty), self.geo.tile)?;
        if self.shrunk && self.steps > 1 {
            if let OutFlow::Strip {
                side: Side::South,
                depth,
            } = of
            {
                if depth == self.steps {
                    // Fault injection: claim one layer less than the wire
                    // carries — the consumer's deepest north-ghost row
                    // (`rect.row`) goes undeclared, which the coverage
                    // proof must expose as an uncovered read.
                    rect = Rect::new(rect.row + 1, rect.col, rect.rows - 1, rect.cols);
                }
            }
        }
        let (cx, cy) = (consumer.params[0] as usize, consumer.params[1] as usize);
        Some(ReadRegion::single(self.geo.tile_space(cx, cy), rect))
    }

    fn flops(&self, p: Params) -> f64 {
        let (_, _, t) = Self::decode(p);
        if t == 0 {
            0.0
        } else {
            // useful work only; the halo recompute is in `redundant_flops`
            self.model
                .task_flops(self.geo.tile, self.geo.tile, self.ratio)
        }
    }

    fn redundant_flops(&self, p: Params) -> u64 {
        let (tx, ty, t) = Self::decode(p);
        if t == 0 || !self.is_boundary(tx, ty) {
            return 0;
        }
        let tile = self.geo.tile;
        let ext = self.extents(tx, ty, t);
        let halo_points = (ext.region_points(tile) - tile * tile) as f64;
        // 9 flops per updated point, scaled by the kernel ratio like the
        // useful work (see machine::StencilCostModel::task_flops)
        (halo_points * self.ratio * self.ratio * 9.0).round() as u64
    }
}

/// Build the CA-scheme program. Boundary tiles get `s`-deep ghost rings;
/// interior tiles stay at depth 1 ("this version will use slightly more
/// memory", Section IV-B2).
pub fn build_ca(cfg: &StencilConfig, carry_data: bool) -> StencilBuild {
    assert!(
        cfg.steps >= 1 && cfg.steps <= cfg.tile,
        "CA step size {} must be in [1, tile = {}]",
        cfg.steps,
        cfg.tile
    );
    let geo = cfg.geometry();
    let steps = cfg.steps;
    let store = carry_data.then(|| {
        let geo2 = geo.clone();
        Arc::new(TileStore::new(&cfg.problem, geo.clone(), |tx, ty| {
            if geo2.is_node_boundary(tx, ty) {
                steps
            } else {
                1
            }
        }))
    });
    build_ca_inner(cfg, geo, store, false)
}

/// Build a CA program whose *declared* dataflow is deliberately wrong:
/// deep South strips claim one ghost layer less than the wire actually
/// carries (the graph, messages, and execution are untouched — only the
/// [`runtime::TaskClass::delivered_region`] declaration shrinks). The
/// `analyze` crate's halo-coverage proof must reject this program with an
/// uncovered-read witness naming the missing row; it exists as the
/// mutation fixture for that check (`stencil-lint --mutate-ca`). Requires
/// `steps > 1`.
pub fn build_ca_shrunk(cfg: &StencilConfig) -> StencilBuild {
    assert!(
        cfg.steps > 1,
        "the shrunk-halo mutation needs a deep ghost (steps > 1)"
    );
    build_ca_inner(cfg, cfg.geometry(), None, true)
}

/// Build the CA-scheme program over an existing store (continuation; see
/// [`crate::base::build_base_on`]). Boundary tiles in the store must have
/// ghost rings at least `steps` deep.
pub fn build_ca_on(cfg: &StencilConfig, store: Arc<TileStore>) -> StencilBuild {
    let geo = cfg.geometry();
    assert_eq!(
        store.geometry().num_tiles(),
        geo.num_tiles(),
        "store was built for a different tiling"
    );
    for ty in 0..geo.tiles_y {
        for tx in 0..geo.tiles_x {
            if geo.is_node_boundary(tx, ty) {
                assert!(
                    store.lock(tx, ty).ghost() >= cfg.steps,
                    "boundary tile ({tx},{ty}) has ghost < steps"
                );
            }
        }
    }
    build_ca_inner(cfg, geo, Some(store), false)
}

fn build_ca_inner(
    cfg: &StencilConfig,
    geo: StencilGeometry,
    store: Option<Arc<TileStore>>,
    shrunk: bool,
) -> StencilBuild {
    let steps = cfg.steps;
    let mut model = StencilCostModel::for_profile(&cfg.profile);
    if cfg.problem.op.is_variable() {
        model = model.with_variable_coefficients();
    }
    let class = CaStencil {
        geo: geo.clone(),
        store: store.clone(),
        model,
        op: cfg.problem.op.clone(),
        iterations: cfg.iterations,
        steps,
        ratio: cfg.ratio,
        shrunk,
    };
    let mut graph = TaskGraph::new();
    let id = graph.add_class(Arc::new(class));
    assert_eq!(id, CLASS, "CA program must have exactly one class");
    let roots = (0..geo.tiles_y)
        .flat_map(|ty| (0..geo.tiles_x).map(move |tx| CaStencil::key(tx, ty, 0)))
        .collect();
    let total_tasks = geo.num_tiles() as u64 * (cfg.iterations as u64 + 1);
    StencilBuild {
        program: Program {
            graph: Arc::new(graph),
            roots,
            total_tasks,
        },
        store,
        geo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::build_base;
    use crate::problem::Problem;
    use crate::reference::{jacobi_reference, max_abs_diff};
    use machine::MachineProfile;
    use netsim::ProcessGrid;
    use runtime::{run, RunConfig};

    fn cfg(n: usize, tile: usize, iters: u32, grid: ProcessGrid, steps: usize) -> StencilConfig {
        StencilConfig::new(Problem::scrambled(n, 123), tile, iters, grid).with_steps(steps)
    }

    #[test]
    fn graphs_analyze_clean_across_step_sizes() {
        for steps in [1, 2, 3, 4] {
            let c = cfg(16, 4, 7, ProcessGrid::new(2, 2), steps);
            let b = build_ca(&c, false);
            let a = analyze::assert_clean(&b.program);
            // the halo recompute is redundant work whenever s > 1
            assert_eq!(a.flops.redundant > 0, steps > 1, "steps = {steps}");
        }
    }

    #[test]
    fn graph_analyzes_clean_on_bigger_node_grid() {
        let c = cfg(36, 4, 5, ProcessGrid::new(3, 3), 3);
        analyze::assert_clean(&build_ca(&c, false).program);
    }

    #[test]
    fn simulated_matches_reference_bitwise() {
        // iteration count deliberately not a multiple of the step size
        for steps in [1, 2, 3] {
            let c = cfg(16, 4, 7, ProcessGrid::new(2, 2), steps);
            let b = build_ca(&c, true);
            run(
                &b.program,
                &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
            );
            let got = b.store.unwrap().gather();
            let want = jacobi_reference(&c.problem, 7);
            assert_eq!(
                max_abs_diff(&got, &want),
                0.0,
                "steps = {steps} diverged from reference"
            );
        }
    }

    #[test]
    fn real_executor_matches_reference_bitwise() {
        let c = cfg(16, 4, 6, ProcessGrid::new(2, 2), 3);
        let b = build_ca(&c, true);
        run(&b.program, &RunConfig::shared_memory(4));
        let got = b.store.unwrap().gather();
        let want = jacobi_reference(&c.problem, 6);
        assert_eq!(max_abs_diff(&got, &want), 0.0);
    }

    #[test]
    fn ca_matches_base_bitwise() {
        let c = cfg(24, 4, 9, ProcessGrid::new(2, 2), 4);
        let ca = build_ca(&c, true);
        run(
            &ca.program,
            &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
        );
        let base = build_base(&c, true);
        run(
            &base.program,
            &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
        );
        assert_eq!(
            max_abs_diff(&ca.store.unwrap().gather(), &base.store.unwrap().gather()),
            0.0
        );
    }

    #[test]
    fn ca_sends_fewer_messages_than_base() {
        // Note: PA1 with explicit corner buffering (as the paper describes)
        // reduces the message count by roughly 0.4·s, not the full s — the
        // small corner blocks cost extra messages. s = 6 gives > 2×.
        let iters = 12;
        let c = cfg(48, 8, iters, ProcessGrid::new(2, 2), 6);
        let ca = run(
            &build_ca(&c, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), 4),
        );
        let base = run(
            &build_base(&c, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), 4),
        );
        assert!(
            ca.remote_messages() < base.remote_messages() / 2,
            "CA {} vs base {}",
            ca.remote_messages(),
            base.remote_messages()
        );
        // but CA messages are bigger: average bytes per message grows
        let ca_avg = ca.remote_bytes() as f64 / ca.remote_messages() as f64;
        let base_avg = base.remote_bytes() as f64 / base.remote_messages() as f64;
        assert!(ca_avg > base_avg, "CA avg {ca_avg} vs base avg {base_avg}");
    }

    #[test]
    fn exchange_cadence_matches_step_size() {
        // With s = 4 and 12 iterations, exchanges are fed by producers at
        // t = 0, 4, 8: 3 rounds of remote strip+corner messages.
        let c = cfg(32, 4, 12, ProcessGrid::new(2, 2), 4);
        let ca = run(
            &build_ca(&c, false).program,
            &RunConfig::simulated(MachineProfile::nacl(), 4),
        );
        // Remote side pairs: 4 block edges × 4 tile pairs × 2 directions.
        // Remote corner flows: around the centre cross of the 2×2 node
        // grid; count via geometry below.
        let geo = c.geometry();
        let mut strips = 0u64;
        let mut corners = 0u64;
        for ty in 0..geo.tiles_y {
            for tx in 0..geo.tiles_x {
                let me = geo.node_of_tile(tx, ty);
                for side in Side::ALL {
                    if let Some((nx, ny)) = geo.neighbor(tx, ty, side) {
                        if geo.node_of_tile(nx, ny) != me {
                            strips += 1;
                        }
                    }
                }
                for corner in Corner::ALL {
                    if let Some((dx, dy)) = geo.diagonal(tx, ty, corner) {
                        if geo.node_of_tile(dx, dy) != me && geo.is_node_boundary(dx, dy) {
                            corners += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(ca.remote_messages(), 3 * (strips + corners));
    }

    #[test]
    fn boundary_tasks_cost_more_than_interior() {
        // 8×8 tiles, 4×4 per node: (3,1) is on node 0's east block edge,
        // (1,1) is block-interior.
        let c = cfg(32, 4, 8, ProcessGrid::new(2, 2), 4);
        let b = build_ca(&c, false);
        let class = b.program.graph.class(0);
        // tile (3,1) is on node 0's east block edge; (1,1) is interior
        let boundary_exchange = class.cost([3, 1, 1, 0]);
        let boundary_quiet = class.cost([3, 1, 2, 0]);
        let interior = class.cost([1, 1, 1, 0]);
        assert!(boundary_exchange > boundary_quiet);
        assert!(boundary_quiet > interior);
    }

    #[test]
    #[should_panic(expected = "must be in [1, tile")]
    fn steps_beyond_tile_rejected() {
        let c = cfg(16, 4, 2, ProcessGrid::new(2, 2), 5);
        build_ca(&c, false);
    }

    #[test]
    fn steps_equal_tile_is_valid_and_correct() {
        let c = cfg(16, 4, 6, ProcessGrid::new(2, 2), 4);
        let b = build_ca(&c, true);
        run(
            &b.program,
            &RunConfig::simulated(MachineProfile::nacl(), 4).with_bodies(),
        );
        let got = b.store.unwrap().gather();
        assert_eq!(max_abs_diff(&got, &jacobi_reference(&c.problem, 6)), 0.0);
    }
}
