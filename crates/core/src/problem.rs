//! Problem specification: the PDE instance behind the stencil sweep.
//!
//! The paper solves Laplace's equation by Jacobi iteration on an `n × n`
//! grid. A [`Problem`] supplies the initial interior values and the static
//! Dirichlet boundary ring around the domain; the generalized weights make
//! every implementation perform the paper's 9 flops per point.

use crate::tile::Weights;
use std::sync::Arc;

/// Global-coordinate value function: `(row, col) -> value`.
pub type ValueFn = Arc<dyn Fn(i64, i64) -> f64 + Send + Sync>;

/// Per-point weight function for variable-coefficient stencils.
pub type CoefFn = Arc<dyn Fn(i64, i64) -> Weights + Send + Sync>;

/// The stencil operator: the paper's background (Section III-A)
/// distinguishes constant-coefficient stencils ("the same across the
/// entire grid") from variable-coefficient ones ("differ at each grid
/// point"); both perform the same 9 flops per point.
#[derive(Clone)]
pub enum Operator {
    /// One weight set for the whole grid.
    Constant(Weights),
    /// Weights that vary per grid point.
    Variable(CoefFn),
}

impl Operator {
    /// The weights at a global grid point.
    pub fn weights_at(&self, r: i64, c: i64) -> Weights {
        match self {
            Operator::Constant(w) => *w,
            Operator::Variable(f) => f(r, c),
        }
    }

    /// The constant weights; panics for a variable-coefficient operator
    /// (callers that require constancy, e.g. hand-written cost formulas,
    /// should check [`Operator::is_variable`] first).
    pub fn constant(&self) -> Weights {
        match self {
            Operator::Constant(w) => *w,
            Operator::Variable(_) => panic!("operator has variable coefficients"),
        }
    }

    /// True for variable-coefficient operators.
    pub fn is_variable(&self) -> bool {
        matches!(self, Operator::Variable(_))
    }
}

impl std::fmt::Debug for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operator::Constant(w) => write!(f, "Constant({w:?})"),
            Operator::Variable(_) => write!(f, "Variable(..)"),
        }
    }
}

/// One PDE instance.
#[derive(Clone)]
pub struct Problem {
    /// Grid dimension (the domain is `[0, n) × [0, n)`).
    pub n: usize,
    /// The stencil operator.
    pub op: Operator,
    /// Initial interior values (iterate 0).
    pub init: ValueFn,
    /// Static boundary values for every cell outside the domain.
    pub bc: ValueFn,
}

impl Problem {
    /// Laplace's equation with a linear Dirichlet boundary (`g = r + 2c`,
    /// scaled into O(1)) and a zero initial guess — the canonical Jacobi
    /// test case: the iteration converges towards the same linear function,
    /// which is harmonic.
    pub fn laplace(n: usize) -> Self {
        let scale = 1.0 / n as f64;
        Problem {
            n,
            op: Operator::Constant(Weights::laplace_jacobi()),
            init: Arc::new(|_, _| 0.0),
            bc: Arc::new(move |r, c| (r as f64 + 2.0 * c as f64) * scale),
        }
    }

    /// A deterministic pseudo-random initial field with asymmetric weights;
    /// used by correctness tests so that any orientation or scheduling
    /// mistake changes the answer.
    pub fn scrambled(n: usize, seed: u64) -> Self {
        let init = move |r: i64, c: i64| hash_unit(seed, r, c);
        let bc = move |r: i64, c: i64| hash_unit(seed ^ 0xb0a7, r, c) - 0.5;
        Problem {
            n,
            op: Operator::Constant(Weights::skewed()),
            init: Arc::new(init),
            bc: Arc::new(bc),
        }
    }

    /// A steady-state check case: initial values already equal to the
    /// boundary extension of a harmonic (linear) function, so the Laplace
    /// Jacobi sweep is a fixed point.
    pub fn harmonic_fixed_point(n: usize) -> Self {
        let f = move |r: i64, c: i64| 0.5 * r as f64 - 0.25 * c as f64 + 3.0;
        Problem {
            n,
            op: Operator::Constant(Weights::laplace_jacobi()),
            init: Arc::new(f),
            bc: Arc::new(f),
        }
    }

    /// A variable-coefficient diffusion problem: smoothly varying,
    /// diagonally-dominant per-point weights (a heterogeneous-medium
    /// diffusion operator). The weights sum to at most 1 everywhere, so
    /// the sweep is a contraction.
    pub fn variable_diffusion(n: usize, seed: u64) -> Self {
        let coef = move |r: i64, c: i64| {
            // smooth positive fields in (0.1, 0.3) for each direction
            let f = |phase: f64| {
                0.2 + 0.1 * ((r as f64 * 0.37 + c as f64 * 0.23 + phase + seed as f64).sin() * 0.5)
            };
            let (wn, ws, ww, we) = (f(0.0), f(1.3), f(2.6), f(3.9));
            Weights {
                center: 1.0 - (wn + ws + ww + we),
                north: wn,
                south: ws,
                west: ww,
                east: we,
            }
        };
        let init = move |r: i64, c: i64| hash_unit(seed ^ 0x51ab, r, c);
        Problem {
            n,
            op: Operator::Variable(Arc::new(coef)),
            init: Arc::new(init),
            bc: Arc::new(|_, _| 0.0),
        }
    }

    /// The value of the initial global field at `(r, c)`: `init` inside the
    /// domain, `bc` outside.
    pub fn value_at(&self, r: i64, c: i64) -> f64 {
        let n = self.n as i64;
        if r >= 0 && c >= 0 && r < n && c < n {
            (self.init)(r, c)
        } else {
            (self.bc)(r, c)
        }
    }
}

impl std::fmt::Debug for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Problem")
            .field("n", &self.n)
            .field("op", &self.op)
            .finish_non_exhaustive()
    }
}

/// SplitMix64-style hash of `(seed, r, c)` mapped into `[0, 1)`.
/// Deterministic across platforms so tests are reproducible.
fn hash_unit(seed: u64, r: i64, c: i64) -> f64 {
    let mut z = seed
        .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(r as u64 ^ 0x5851f42d4c957f2d))
        .wrapping_add((c as u64).wrapping_mul(0x14057b7ef767814f));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_at_dispatches_between_init_and_bc() {
        let p = Problem::laplace(8);
        assert_eq!(p.value_at(3, 3), 0.0);
        let scale = 1.0 / 8.0;
        assert!((p.value_at(-1, 2) - (-1.0 + 4.0) * scale).abs() < 1e-15);
        assert!((p.value_at(8, 0) - 8.0 * scale).abs() < 1e-15);
    }

    #[test]
    fn scrambled_is_deterministic_and_varied() {
        let p = Problem::scrambled(8, 42);
        let a = p.value_at(1, 2);
        let b = p.value_at(1, 2);
        assert_eq!(a, b);
        assert_ne!(p.value_at(1, 2), p.value_at(2, 1));
        let q = Problem::scrambled(8, 43);
        assert_ne!(p.value_at(1, 2), q.value_at(1, 2));
    }

    #[test]
    fn hash_unit_in_range() {
        for r in -5..5 {
            for c in -5..5 {
                let v = hash_unit(7, r, c);
                assert!((0.0..1.0).contains(&v));
            }
        }
    }
}
