//! Run configuration shared by the base and CA builders.

use crate::geometry::StencilGeometry;
use crate::problem::Problem;
use crate::store::TileStore;
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::Program;
use std::sync::Arc;

/// Everything needed to instantiate one stencil run.
#[derive(Debug, Clone)]
pub struct StencilConfig {
    /// The PDE instance (grid size, weights, initial and boundary values).
    pub problem: Problem,
    /// Tile edge length.
    pub tile: usize,
    /// Jacobi iterations to run.
    pub iterations: u32,
    /// Node grid.
    pub grid: ProcessGrid,
    /// CA step size `s` (ignored by the base scheme).
    pub steps: usize,
    /// The paper's kernel adjustment ratio (Figures 8–9): service times
    /// scale with `ratio²`; numerics are unaffected.
    pub ratio: f64,
    /// Machine whose cost model prices the tasks.
    pub profile: MachineProfile,
}

impl StencilConfig {
    /// A configuration with the paper's defaults (`ratio = 1`, `s = 15` as
    /// in Figures 7–8).
    pub fn new(problem: Problem, tile: usize, iterations: u32, grid: ProcessGrid) -> Self {
        StencilConfig {
            problem,
            tile,
            iterations,
            grid,
            steps: 15,
            ratio: 1.0,
            profile: MachineProfile::nacl(),
        }
    }

    /// Override the CA step size.
    pub fn with_steps(mut self, steps: usize) -> Self {
        assert!(steps >= 1, "step size must be at least 1");
        self.steps = steps;
        self
    }

    /// Override the kernel adjustment ratio.
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        self.ratio = ratio;
        self
    }

    /// Override the machine profile.
    pub fn with_profile(mut self, profile: MachineProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The tiling implied by this configuration.
    pub fn geometry(&self) -> StencilGeometry {
        StencilGeometry::new(self.problem.n, self.tile, self.grid)
    }

    /// Nominal flops of the whole run as the paper counts them:
    /// `iterations × 9 n²` (redundant CA work excluded, like the paper's
    /// GFLOP/s figures which divide the same nominal work by time).
    pub fn nominal_flops(&self) -> f64 {
        self.iterations as f64 * 9.0 * (self.problem.n as f64) * (self.problem.n as f64)
    }

    /// GFLOP/s for a run of this configuration that took `seconds`.
    pub fn gflops(&self, seconds: f64) -> f64 {
        self.nominal_flops() / seconds / 1e9
    }
}

/// A built stencil program: the dataflow plus (optionally) the real tile
/// data it operates on.
pub struct StencilBuild {
    /// The runnable dataflow program.
    pub program: Program,
    /// The tile store, when the build carries real data (`None` for
    /// performance-only simulation).
    pub store: Option<Arc<TileStore>>,
    /// The tiling.
    pub geo: StencilGeometry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_flops_match_paper_formula() {
        let cfg = StencilConfig::new(Problem::laplace(100), 10, 7, ProcessGrid::new(1, 1));
        assert_eq!(cfg.nominal_flops(), 7.0 * 9.0 * 100.0 * 100.0);
        assert!((cfg.gflops(1.0) - 63e4 / 1e9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_steps_rejected() {
        let _ = StencilConfig::new(Problem::laplace(8), 4, 1, ProcessGrid::new(1, 1)).with_steps(0);
    }
}
