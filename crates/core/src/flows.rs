//! Flow and slot conventions shared by the base and CA task classes.
//!
//! Every stencil task `(tx, ty, t)` has up to nine input slots:
//!
//! | slot | content |
//! |------|---------|
//! | 0    | self-flow from `(tx, ty, t-1)` (serializes the tile, carries no data) |
//! | 1–4  | edge strips from the North/South/West/East neighbours |
//! | 5–8  | corner blocks from the NW/NE/SW/SE diagonal neighbours (CA only) |

use crate::geometry::{Corner, Side};

/// Input slot of the self-flow.
pub const SLOT_SELF: usize = 0;

/// Trace kind of interior-tile tasks.
pub const KIND_INTERIOR: u32 = 0;
/// Trace kind of node-boundary-tile tasks (the tiles that talk to remote
/// nodes — the distinction the paper's Figure 10 plots).
pub const KIND_BOUNDARY: u32 = 1;
/// Trace kind of the iterate-0 emission tasks.
pub const KIND_INIT: u32 = 2;

/// Human-readable names of the stencil trace kinds, in the shape
/// `runtime::RunConfig::with_kind_names` expects — register these so
/// exported traces label spans "interior"/"boundary"/"init" instead of
/// raw kind tags.
pub fn kind_names() -> Vec<(u32, String)> {
    vec![
        (KIND_INTERIOR, "interior".to_string()),
        (KIND_BOUNDARY, "boundary".to_string()),
        (KIND_INIT, "init".to_string()),
    ]
}

/// Input slot receiving the strip that fills the ghost region on `side`.
pub fn slot_of_side(side: Side) -> usize {
    1 + side as usize
}

/// Input slot receiving the block that fills the ghost corner at `corner`.
pub fn slot_of_corner(corner: Corner) -> usize {
    5 + corner as usize
}

/// Input slots of a base-scheme task (self + 4 strips).
pub const NUM_SLOTS_BASE: usize = 5;
/// Input slots of a CA-scheme task (self + 4 strips + 4 corners).
pub const NUM_SLOTS_CA: usize = 9;

/// One output flow of a stencil task, in geometric terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutFlow {
    /// The self-flow to the same tile's next-iteration task.
    SelfFlow,
    /// An edge strip of the given depth towards `side`.
    Strip {
        /// Which of this tile's edges the strip is read from.
        side: Side,
        /// Strip depth in rows/columns.
        depth: usize,
    },
    /// A corner block of the given depth towards `corner`.
    Block {
        /// Which of this tile's corners the block is read from.
        corner: Corner,
        /// Block edge length.
        depth: usize,
    },
}

impl OutFlow {
    /// Wire size of this flow for a `tile × tile` tile, in bytes.
    pub fn bytes(&self, tile: usize) -> usize {
        match *self {
            OutFlow::SelfFlow => 0,
            OutFlow::Strip { depth, .. } => depth * tile * 8,
            OutFlow::Block { depth, .. } => depth * depth * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint_and_dense() {
        let mut slots = vec![SLOT_SELF];
        slots.extend(Side::ALL.iter().map(|&s| slot_of_side(s)));
        slots.extend(Corner::ALL.iter().map(|&c| slot_of_corner(c)));
        slots.sort_unstable();
        assert_eq!(slots, (0..NUM_SLOTS_CA).collect::<Vec<_>>());
    }

    #[test]
    fn flow_sizes() {
        assert_eq!(OutFlow::SelfFlow.bytes(288), 0);
        assert_eq!(
            OutFlow::Strip {
                side: Side::North,
                depth: 1
            }
            .bytes(288),
            288 * 8
        );
        assert_eq!(
            OutFlow::Strip {
                side: Side::East,
                depth: 15
            }
            .bytes(288),
            15 * 288 * 8
        );
        assert_eq!(
            OutFlow::Block {
                corner: Corner::Nw,
                depth: 15
            }
            .bytes(288),
            15 * 15 * 8
        );
    }
}
