//! Flow and slot conventions shared by the base and CA task classes.
//!
//! Every stencil task `(tx, ty, t)` has up to nine input slots:
//!
//! | slot | content |
//! |------|---------|
//! | 0    | self-flow from `(tx, ty, t-1)` (serializes the tile, carries no data) |
//! | 1–4  | edge strips from the North/South/West/East neighbours |
//! | 5–8  | corner blocks from the NW/NE/SW/SE diagonal neighbours (CA only) |

use crate::geometry::{Corner, Side};
use runtime::Rect;

/// Input slot of the self-flow.
pub const SLOT_SELF: usize = 0;

/// Trace kind of interior-tile tasks.
pub const KIND_INTERIOR: u32 = 0;
/// Trace kind of node-boundary-tile tasks (the tiles that talk to remote
/// nodes — the distinction the paper's Figure 10 plots).
pub const KIND_BOUNDARY: u32 = 1;
/// Trace kind of the iterate-0 emission tasks.
pub const KIND_INIT: u32 = 2;

/// Human-readable names of the stencil trace kinds, in the shape
/// `runtime::RunConfig::with_kind_names` expects — register these so
/// exported traces label spans "interior"/"boundary"/"init" instead of
/// raw kind tags.
pub fn kind_names() -> Vec<(u32, String)> {
    vec![
        (KIND_INTERIOR, "interior".to_string()),
        (KIND_BOUNDARY, "boundary".to_string()),
        (KIND_INIT, "init".to_string()),
    ]
}

/// Input slot receiving the strip that fills the ghost region on `side`.
pub fn slot_of_side(side: Side) -> usize {
    1 + side as usize
}

/// Input slot receiving the block that fills the ghost corner at `corner`.
pub fn slot_of_corner(corner: Corner) -> usize {
    5 + corner as usize
}

/// Input slots of a base-scheme task (self + 4 strips).
pub const NUM_SLOTS_BASE: usize = 5;
/// Input slots of a CA-scheme task (self + 4 strips + 4 corners).
pub const NUM_SLOTS_CA: usize = 9;

/// One output flow of a stencil task, in geometric terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutFlow {
    /// The self-flow to the same tile's next-iteration task.
    SelfFlow,
    /// An edge strip of the given depth towards `side`.
    Strip {
        /// Which of this tile's edges the strip is read from.
        side: Side,
        /// Strip depth in rows/columns.
        depth: usize,
    },
    /// A corner block of the given depth towards `corner`.
    Block {
        /// Which of this tile's corners the block is read from.
        corner: Corner,
        /// Block edge length.
        depth: usize,
    },
}

impl OutFlow {
    /// Wire size of this flow for a `tile × tile` tile, in bytes.
    pub fn bytes(&self, tile: usize) -> usize {
        match *self {
            OutFlow::SelfFlow => 0,
            OutFlow::Strip { depth, .. } => depth * tile * 8,
            OutFlow::Block { depth, .. } => depth * depth * 8,
        }
    }

    /// The global-coordinate rectangle of cells this flow extracts from
    /// the producer tile whose top-left point is `origin` — which is the
    /// same set of cells the payload makes valid in the consumer's ghost
    /// region, so it doubles as the flow's *delivered region* for the
    /// `analyze` crate's dataflow pass. `None` for the self-flow (it
    /// carries no data).
    pub fn region(&self, origin: (i64, i64), tile: usize) -> Option<Rect> {
        let (row, col) = origin;
        let t = tile as i64;
        match *self {
            OutFlow::SelfFlow => None,
            OutFlow::Strip { side, depth } => {
                let d = depth as u32;
                Some(match side {
                    Side::North => Rect::new(row, col, d, tile as u32),
                    Side::South => Rect::new(row + t - depth as i64, col, d, tile as u32),
                    Side::West => Rect::new(row, col, tile as u32, d),
                    Side::East => Rect::new(row, col + t - depth as i64, tile as u32, d),
                })
            }
            OutFlow::Block { corner, depth } => {
                let d = depth as u32;
                let far = t - depth as i64;
                Some(match corner {
                    Corner::Nw => Rect::new(row, col, d, d),
                    Corner::Ne => Rect::new(row, col + far, d, d),
                    Corner::Sw => Rect::new(row + far, col, d, d),
                    Corner::Se => Rect::new(row + far, col + far, d, d),
                })
            }
        }
    }
}

/// The read footprint of one 5-point stencil sweep over the updated
/// rectangle `u`: a vertical expansion (one row beyond `u` on each side)
/// plus a horizontal expansion (one column beyond on each side). Their
/// union is exactly the cells touched — no diagonal corners, which is
/// what makes the CA corner blocks' far cells dead on the wire.
pub fn cross_rects(u: Rect) -> [Rect; 2] {
    [
        Rect::new(u.row - 1, u.col, u.rows + 2, u.cols),
        Rect::new(u.row, u.col - 1, u.rows, u.cols + 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint_and_dense() {
        let mut slots = vec![SLOT_SELF];
        slots.extend(Side::ALL.iter().map(|&s| slot_of_side(s)));
        slots.extend(Corner::ALL.iter().map(|&c| slot_of_corner(c)));
        slots.sort_unstable();
        assert_eq!(slots, (0..NUM_SLOTS_CA).collect::<Vec<_>>());
    }

    #[test]
    fn flow_sizes() {
        assert_eq!(OutFlow::SelfFlow.bytes(288), 0);
        assert_eq!(
            OutFlow::Strip {
                side: Side::North,
                depth: 1
            }
            .bytes(288),
            288 * 8
        );
        assert_eq!(
            OutFlow::Strip {
                side: Side::East,
                depth: 15
            }
            .bytes(288),
            15 * 288 * 8
        );
        assert_eq!(
            OutFlow::Block {
                corner: Corner::Nw,
                depth: 15
            }
            .bytes(288),
            15 * 15 * 8
        );
    }
}
