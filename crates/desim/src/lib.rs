//! # desim — deterministic discrete-event simulation engine
//!
//! The substrate beneath the distributed experiments in this repository.
//! The paper ran on two real clusters (NaCL and Stampede2); this crate
//! provides the virtual machinery on which we replay the same executions:
//!
//! * [`time`] — integral nanosecond [`VirtualTime`]/[`VirtualDuration`], so
//!   simulations are bit-reproducible;
//! * [`engine`] — a typed event loop ([`Engine`], [`Model`], [`Scheduler`])
//!   with stable FIFO ordering of simultaneous events;
//! * [`resource`] — k-server FIFO queues ([`Resource`], [`Gate`]) modelling
//!   worker cores and NIC engines, with utilization accounting;
//! * [`stats`] — time-weighted means, sample summaries, histograms;
//! * [`trace`] — span recording and occupancy analysis (paper Figure 10).
//!
//! The engine is callback-free and coroutine-free: a model is a state
//! machine over its own event enum. This keeps the hot loop allocation-light
//! and makes model logic unit-testable in isolation.
//!
//! ```
//! use desim::{Engine, Model, Scheduler, VirtualDuration, VirtualTime};
//!
//! /// Count pings until a deadline.
//! struct Ping { count: u32 }
//! impl Model for Ping {
//!     type Event = ();
//!     fn handle(&mut self, _now: VirtualTime, _ev: (), sched: &mut Scheduler<()>) {
//!         self.count += 1;
//!         if self.count < 5 {
//!             sched.schedule_in(VirtualDuration::from_micros(10), ());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Ping { count: 0 });
//! engine.prime(());
//! let end = engine.run();
//! assert_eq!(engine.model().count, 5);
//! assert_eq!(end.as_nanos(), 4 * 10_000);
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod resource;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, Model, Scheduler};
pub use resource::{Gate, Resource};
pub use stats::{percentile_sorted, Pow2Histogram, Summary, TimeWeighted};
pub use time::{VirtualDuration, VirtualTime};
pub use trace::{Span, TraceBuffer};
