//! Execution-trace recording: timestamped spans of named activities on
//! (node, lane) pairs, mirroring PaRSEC's profiling subsystem that produced
//! the paper's Figure 10.

use crate::stats::Summary;
use crate::time::{VirtualDuration, VirtualTime};
use serde::Serialize;

/// One recorded activity: a half-open interval `[start, end)` of a given
/// kind executing on `lane` (a core or the communication thread) of `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Span {
    /// Node rank the activity ran on.
    pub node: u32,
    /// Execution lane within the node (core index, or a dedicated lane for
    /// the communication thread).
    pub lane: u32,
    /// Activity class, interpreted by the producer (e.g. interior task,
    /// boundary task, message send).
    pub kind: u32,
    /// Inclusive start time.
    pub start: VirtualTime,
    /// Exclusive end time.
    pub end: VirtualTime,
}

impl Span {
    /// Duration of the span.
    pub fn duration(&self) -> VirtualDuration {
        self.end.duration_since(self.start)
    }
}

/// Append-only buffer of spans with analysis helpers.
#[derive(Debug, Default, Clone, Serialize)]
pub struct TraceBuffer {
    spans: Vec<Span>,
}

impl TraceBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span. `end` must not precede `start`.
    pub fn push(&mut self, span: Span) {
        assert!(span.end >= span.start, "span ends before it starts");
        self.spans.push(span);
    }

    /// All recorded spans, in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans on one node.
    pub fn node_spans(&self, node: u32) -> impl Iterator<Item = &Span> + '_ {
        self.spans.iter().filter(move |s| s.node == node)
    }

    /// Busy fraction of `lanes` lanes on `node` over `[0, horizon]`:
    /// total busy time / (lanes × horizon). The paper's "CPU occupancy".
    pub fn occupancy(&self, node: u32, lanes: u32, horizon: VirtualTime) -> f64 {
        let span_time = horizon.as_secs_f64() * lanes as f64;
        if span_time == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .node_spans(node)
            .filter(|s| s.lane < lanes)
            .map(|s| s.duration().as_secs_f64())
            .sum();
        busy / span_time
    }

    /// Summary of span durations (in seconds) of one kind on one node, or
    /// across all nodes when `node` is `None`.
    pub fn duration_summary(&self, node: Option<u32>, kind: u32) -> Option<Summary> {
        let durations: Vec<f64> = self
            .spans
            .iter()
            .filter(|s| s.kind == kind && node.is_none_or(|n| s.node == n))
            .map(|s| s.duration().as_secs_f64())
            .collect();
        Summary::of(&durations)
    }

    /// Latest end time over all spans (the trace horizon); zero when empty.
    pub fn horizon(&self) -> VirtualTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(VirtualTime::ZERO)
    }

    /// Merge another buffer's spans into this one.
    pub fn absorb(&mut self, other: TraceBuffer) {
        self.spans.extend(other.spans);
    }

    /// Render the trace as JSON-lines text, one span per line — the format
    /// the Figure 10 harness writes to disk.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            // Serialization of a Copy struct with integer fields cannot fail.
            out.push_str(&serde_json::to_string(s).expect("span serialization"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(node: u32, lane: u32, kind: u32, start: u64, end: u64) -> Span {
        Span {
            node,
            lane,
            kind,
            start: VirtualTime(start),
            end: VirtualTime(end),
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = TraceBuffer::new();
        t.push(span(0, 0, 1, 0, 10));
        t.push(span(0, 1, 2, 5, 25));
        t.push(span(1, 0, 1, 0, 50));
        assert_eq!(t.len(), 3);
        assert_eq!(t.node_spans(0).count(), 2);
        assert_eq!(t.horizon(), VirtualTime(50));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn inverted_span_panics() {
        let mut t = TraceBuffer::new();
        t.push(span(0, 0, 0, 10, 5));
    }

    #[test]
    fn occupancy_counts_only_requested_lanes() {
        let mut t = TraceBuffer::new();
        // two lanes, horizon 100: lane 0 busy 60, lane 1 busy 20, lane 7 ignored
        t.push(span(0, 0, 0, 0, 60));
        t.push(span(0, 1, 0, 10, 30));
        t.push(span(0, 7, 0, 0, 100));
        let occ = t.occupancy(0, 2, VirtualTime(100));
        assert!((occ - 0.4).abs() < 1e-12, "occ = {occ}");
        // other node: nothing recorded
        assert_eq!(t.occupancy(3, 2, VirtualTime(100)), 0.0);
    }

    #[test]
    fn occupancy_zero_horizon() {
        let t = TraceBuffer::new();
        assert_eq!(t.occupancy(0, 4, VirtualTime::ZERO), 0.0);
    }

    #[test]
    fn duration_summary_filters_kind_and_node() {
        let mut t = TraceBuffer::new();
        t.push(span(0, 0, 1, 0, 10));
        t.push(span(0, 0, 1, 10, 30));
        t.push(span(0, 0, 2, 0, 1000));
        t.push(span(1, 0, 1, 0, 100));
        let s = t.duration_summary(Some(0), 1).unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean - 15e-9).abs() < 1e-18);
        let all = t.duration_summary(None, 1).unwrap();
        assert_eq!(all.count, 3);
        assert!(t.duration_summary(Some(2), 1).is_none());
    }

    #[test]
    fn absorb_merges() {
        let mut a = TraceBuffer::new();
        a.push(span(0, 0, 0, 0, 1));
        let mut b = TraceBuffer::new();
        b.push(span(1, 0, 0, 0, 2));
        a.absorb(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn jsonl_one_line_per_span() {
        let mut t = TraceBuffer::new();
        t.push(span(0, 0, 1, 0, 10));
        t.push(span(1, 2, 3, 4, 5));
        let text = t.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().next().unwrap().contains("\"kind\":1"));
    }
}
