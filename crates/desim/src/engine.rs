//! The event loop: a typed, deterministic discrete-event engine.
//!
//! A simulation is a [`Model`] (your state) plus an [`Engine`] that owns the
//! pending-event heap and the virtual clock. The model handles one event at
//! a time and schedules future events through the [`Scheduler`] handle it is
//! given. Events at equal timestamps are delivered in the order they were
//! scheduled (a monotone sequence number breaks ties), so a given model and
//! input always replays identically.

use crate::time::{VirtualDuration, VirtualTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation state machine: holds the model-specific state and reacts to
/// its own event type.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle `event` occurring at `now`, scheduling any follow-up events
    /// on `sched`.
    fn handle(&mut self, now: VirtualTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct Entry<E> {
    at: VirtualTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle through which a [`Model`] schedules future events.
///
/// Separated from [`Engine`] so that `Model::handle` can borrow the model
/// mutably while still enqueueing events.
pub struct Scheduler<E> {
    now: VirtualTime,
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    events_processed: u64,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: VirtualTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            events_processed: 0,
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: VirtualDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at an absolute time. Panics if `at` is in the past —
    /// a model that rewinds the clock is a bug, not a recoverable state.
    pub fn schedule_at(&mut self, at: VirtualTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at}, now={now}",
            at = at,
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` to fire immediately (at the current time, after any
    /// events already queued for this instant).
    pub fn schedule_now(&mut self, event: E) {
        self.schedule_at(self.now, event);
    }

    /// Number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        let e = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "event heap yielded a past event");
        self.now = e.at;
        self.events_processed += 1;
        Some(e)
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|e| e.at)
    }
}

/// The simulation driver: owns a model and its scheduler.
pub struct Engine<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    /// Safety valve against runaway models. `None` disables the check.
    max_events: Option<u64>,
}

impl<M: Model> Engine<M> {
    /// Create an engine around `model` with an empty event queue.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            sched: Scheduler::new(),
            max_events: None,
        }
    }

    /// Cap the total number of events the engine will deliver; exceeding it
    /// panics with a diagnostic. Useful in tests of potentially divergent
    /// models.
    pub fn with_max_events(mut self, cap: u64) -> Self {
        self.max_events = Some(cap);
        self
    }

    /// Seed the queue with an initial event at time zero.
    pub fn prime(&mut self, event: M::Event) {
        self.sched.schedule_at(VirtualTime::ZERO, event);
    }

    /// Seed the queue with an initial event at an arbitrary time.
    pub fn prime_at(&mut self, at: VirtualTime, event: M::Event) {
        self.sched.schedule_at(at, event);
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (for pre/post-run setup and inspection).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.sched.now()
    }

    /// Deliver the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        if let Some(cap) = self.max_events {
            assert!(
                self.sched.events_processed() < cap,
                "simulation exceeded event cap of {cap}"
            );
        }
        match self.sched.pop() {
            Some(e) => {
                self.model.handle(e.at, e.event, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains. Returns the final virtual time.
    pub fn run(&mut self) -> VirtualTime {
        while self.step() {}
        self.now()
    }

    /// Run until the queue drains or the next event would be after
    /// `deadline`. Events exactly at `deadline` are delivered.
    pub fn run_until(&mut self, deadline: VirtualTime) -> VirtualTime {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now()
    }

    /// Consume the engine, returning the model (for result extraction).
    pub fn into_model(self) -> M {
        self.model
    }

    /// Total number of events delivered.
    pub fn events_processed(&self) -> u64 {
        self.sched.events_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records (time, tag) pairs in delivery order.
    struct Recorder {
        log: Vec<(u64, u32)>,
    }

    enum Ev {
        Tag(u32),
        Chain { tag: u32, next_in: u64, count: u32 },
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: VirtualTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(t) => self.log.push((now.as_nanos(), t)),
                Ev::Chain {
                    tag,
                    next_in,
                    count,
                } => {
                    self.log.push((now.as_nanos(), tag));
                    if count > 0 {
                        sched.schedule_in(
                            VirtualDuration::from_nanos(next_in),
                            Ev::Chain {
                                tag: tag + 1,
                                next_in,
                                count: count - 1,
                            },
                        );
                    }
                }
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder { log: Vec::new() })
    }

    #[test]
    fn delivers_in_time_order() {
        let mut e = engine();
        e.prime_at(VirtualTime(30), Ev::Tag(3));
        e.prime_at(VirtualTime(10), Ev::Tag(1));
        e.prime_at(VirtualTime(20), Ev::Tag(2));
        e.run();
        assert_eq!(e.model().log, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn equal_times_delivered_fifo() {
        let mut e = engine();
        for i in 0..100 {
            e.prime_at(VirtualTime(5), Ev::Tag(i));
        }
        e.run();
        let tags: Vec<u32> = e.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut e = engine();
        e.prime(Ev::Chain {
            tag: 0,
            next_in: 7,
            count: 4,
        });
        let end = e.run();
        assert_eq!(end.as_nanos(), 28);
        assert_eq!(e.model().log.len(), 5);
        assert_eq!(e.events_processed(), 5);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = engine();
        e.prime(Ev::Chain {
            tag: 0,
            next_in: 10,
            count: 10,
        });
        e.run_until(VirtualTime(35));
        // events at t = 0, 10, 20, 30 delivered; t = 40 onwards pending
        assert_eq!(e.model().log.len(), 4);
        assert_eq!(e.now().as_nanos(), 30);
        e.run();
        assert_eq!(e.model().log.len(), 11);
    }

    #[test]
    fn run_until_delivers_events_exactly_at_deadline() {
        let mut e = engine();
        e.prime_at(VirtualTime(50), Ev::Tag(9));
        e.run_until(VirtualTime(50));
        assert_eq!(e.model().log, vec![(50, 9)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        enum BadEv {
            Go,
        }
        impl Model for Bad {
            type Event = BadEv;
            fn handle(&mut self, _: VirtualTime, _: BadEv, sched: &mut Scheduler<BadEv>) {
                sched.schedule_at(VirtualTime::ZERO, BadEv::Go);
            }
        }
        let mut e = Engine::new(Bad);
        e.prime_at(VirtualTime(10), BadEv::Go);
        e.run();
    }

    #[test]
    #[should_panic(expected = "event cap")]
    fn event_cap_trips_on_runaway() {
        struct Loopy;
        impl Model for Loopy {
            type Event = ();
            fn handle(&mut self, _: VirtualTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_in(VirtualDuration::from_nanos(1), ());
            }
        }
        let mut e = Engine::new(Loopy).with_max_events(1000);
        e.prime(());
        e.run();
    }

    #[test]
    fn schedule_now_runs_after_current_instant_queue() {
        struct M {
            order: Vec<u32>,
        }
        enum E2 {
            First,
            Second,
            Injected,
        }
        impl Model for M {
            type Event = E2;
            fn handle(&mut self, _: VirtualTime, ev: E2, sched: &mut Scheduler<E2>) {
                match ev {
                    E2::First => {
                        self.order.push(1);
                        sched.schedule_now(E2::Injected);
                    }
                    E2::Second => self.order.push(2),
                    E2::Injected => self.order.push(3),
                }
            }
        }
        let mut e = Engine::new(M { order: vec![] });
        e.prime(E2::First);
        e.prime(E2::Second);
        e.run();
        // Injected was scheduled at the same instant but after Second.
        assert_eq!(e.model().order, vec![1, 2, 3]);
    }

    #[test]
    fn empty_engine_runs_to_zero() {
        let mut e = engine();
        assert_eq!(e.run(), VirtualTime::ZERO);
        assert!(!e.step());
    }
}
