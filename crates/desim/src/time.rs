//! Virtual time for the discrete-event engine.
//!
//! All simulation timestamps are nanoseconds held in a `u64`, giving ~584
//! years of range — far beyond any experiment in this repository. Keeping
//! time integral makes event ordering exact and simulations bit-reproducible
//! (no floating-point drift in the clock).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualDuration(pub u64);

impl VirtualTime {
    /// The origin of simulated time.
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Milliseconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is
    /// in the future, which callers treat as "no elapsed time".
    #[inline]
    pub fn duration_since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: VirtualDuration) -> Option<VirtualTime> {
        self.0.checked_add(d.0).map(VirtualTime)
    }
}

impl VirtualDuration {
    /// Zero-length duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Build from whole nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        VirtualDuration(ns)
    }

    /// Build from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        VirtualDuration(us * 1_000)
    }

    /// Build from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms * 1_000_000)
    }

    /// Build from fractional seconds, rounding to the nearest nanosecond.
    /// Negative and non-finite inputs clamp to zero — model code computes
    /// durations from measured rates and must never panic on a degenerate
    /// parameter combination.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return VirtualDuration(0);
        }
        VirtualDuration((s * 1e9).round() as u64)
    }

    /// Whole nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in seconds, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// True if the duration is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, d: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + d.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    #[inline]
    fn add_assign(&mut self, d: VirtualDuration) {
        self.0 += d.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    #[inline]
    fn sub(self, other: VirtualTime) -> VirtualDuration {
        self.duration_since(other)
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn add(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + other.0)
    }
}

impl AddAssign for VirtualDuration {
    #[inline]
    fn add_assign(&mut self, other: VirtualDuration) {
        self.0 += other.0;
    }
}

impl SubAssign for VirtualDuration {
    #[inline]
    fn sub_assign(&mut self, other: VirtualDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn sub(self, other: VirtualDuration) -> VirtualDuration {
        self.saturating_sub(other)
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn mul(self, k: u64) -> VirtualDuration {
        VirtualDuration(self.0 * k)
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    #[inline]
    fn div(self, k: u64) -> VirtualDuration {
        VirtualDuration(self.0 / k)
    }
}

impl Sum for VirtualDuration {
    fn sum<I: Iterator<Item = VirtualDuration>>(iter: I) -> VirtualDuration {
        iter.fold(VirtualDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = VirtualTime::ZERO + VirtualDuration::from_micros(3);
        assert_eq!(t.as_nanos(), 3_000);
    }

    #[test]
    fn duration_since_saturates() {
        let a = VirtualTime(100);
        let b = VirtualTime(200);
        assert_eq!(a.duration_since(b), VirtualDuration::ZERO);
        assert_eq!(b.duration_since(a), VirtualDuration(100));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(VirtualDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(VirtualDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(
            VirtualDuration::from_secs_f64(2.0).as_nanos(),
            2_000_000_000
        );
    }

    #[test]
    fn from_secs_f64_clamps_degenerate() {
        assert_eq!(VirtualDuration::from_secs_f64(-1.0), VirtualDuration::ZERO);
        assert_eq!(
            VirtualDuration::from_secs_f64(f64::NAN),
            VirtualDuration::ZERO
        );
        assert_eq!(
            VirtualDuration::from_secs_f64(f64::INFINITY),
            VirtualDuration::ZERO
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtualDuration(5).to_string(), "5ns");
        assert_eq!(VirtualDuration(5_000).to_string(), "5.000us");
        assert_eq!(VirtualDuration(5_000_000).to_string(), "5.000ms");
        assert_eq!(VirtualDuration(5_000_000_000).to_string(), "5.000000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: VirtualDuration = (1..=4).map(VirtualDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(VirtualTime(1) < VirtualTime(2));
        assert!(VirtualDuration(1) < VirtualDuration(2));
    }

    #[test]
    fn mul_div_duration() {
        let d = VirtualDuration::from_nanos(10);
        assert_eq!((d * 3).as_nanos(), 30);
        assert_eq!((d / 4).as_nanos(), 2);
    }

    #[test]
    fn checked_add_overflow() {
        assert!(VirtualTime::MAX.checked_add(VirtualDuration(1)).is_none());
        assert_eq!(
            VirtualTime(1).checked_add(VirtualDuration(1)),
            Some(VirtualTime(2))
        );
    }
}
