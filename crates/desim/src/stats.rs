//! Statistics helpers used across the simulator: time-weighted means,
//! sample summaries, and power-of-two histograms.

use crate::time::VirtualTime;
use serde::Serialize;

/// Accumulates the time integral of a piecewise-constant signal.
///
/// Call [`record`](TimeWeighted::record) *with the value that has been in
/// effect since the previous record* each time the signal changes; query the
/// mean with [`mean_until`](TimeWeighted::mean_until), supplying the value in
/// effect since the last change.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    integral: f64,
    last_change: VirtualTime,
}

impl TimeWeighted {
    /// Fresh accumulator starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The signal held `value` from the previous change until `now`.
    pub fn record(&mut self, now: VirtualTime, value: f64) {
        let dt = now.duration_since(self.last_change).as_secs_f64();
        self.integral += value * dt;
        self.last_change = now;
    }

    /// Integral of the signal over `[0, now]`, where `current` is the value
    /// in effect since the last recorded change.
    pub fn integral_until(&self, now: VirtualTime, current: f64) -> f64 {
        self.integral + current * now.duration_since(self.last_change).as_secs_f64()
    }

    /// Time-average of the signal over `[0, now]`; zero when `now == 0`.
    pub fn mean_until(&self, now: VirtualTime, current: f64) -> f64 {
        let span = now.as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.integral_until(now, current) / span
        }
    }
}

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Summary {
    /// Summarize `samples`. Returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in Summary::of"));
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var: f64 = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            median: percentile_sorted(&sorted, 50.0),
            stddev: var.sqrt(),
        })
    }
}

/// Percentile (0..=100) of an ascending-sorted slice, with linear
/// interpolation between adjacent ranks. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Histogram over power-of-two buckets of `u64` values (bucket `i` holds
/// values in `[2^i, 2^(i+1))`, bucket 0 also holds 0).
#[derive(Debug, Clone, Default, Serialize)]
pub struct Pow2Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Pow2Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// (bucket lower bound, count) pairs for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_piecewise_mean() {
        let mut tw = TimeWeighted::new();
        // value 2 on [0s, 1s), 4 on [1s, 3s), then 0
        tw.record(VirtualTime(1_000_000_000), 2.0);
        tw.record(VirtualTime(3_000_000_000), 4.0);
        // integral = 2 + 8 = 10 over 5s
        let mean = tw.mean_until(VirtualTime(5_000_000_000), 0.0);
        assert!((mean - 2.0).abs() < 1e-12, "mean = {mean}");
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean_until(VirtualTime::ZERO, 7.0), 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.stddev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.median, 42.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 100.0), 50.0);
        assert_eq!(percentile_sorted(&v, 50.0), 30.0);
        assert!((percentile_sorted(&v, 25.0) - 20.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 90.0) - 46.0).abs() < 1e-12);
    }

    #[test]
    fn pow2_histogram_buckets() {
        let mut h = Pow2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        // 0 and 1 land in bucket 0; 2,3 in bucket 2; 4..7 in bucket 4; 8 in 8; 1024 in 1024
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 2), (8, 1), (1024, 1)]);
        assert!((h.mean() - (1 + 2 + 3 + 4 + 7 + 8 + 1024) as f64 / 8.0).abs() < 1e-12);
    }
}
