//! Multi-server FIFO resources with utilization accounting.
//!
//! A [`Resource`] models `k` identical servers (worker cores, NIC engines,
//! memory-bandwidth tokens) in front of a FIFO queue of jobs. The resource
//! itself is passive — it never schedules events. The owning [`Model`](crate::engine::Model)
//! (see [`crate::engine::Model`]) calls [`Resource::request`] when a job
//! arrives and [`Resource::release`] when a job it started finishes; both
//! return the job(s) that may start service *now*, and the model schedules
//! their completion events.
//!
//! Utilization is tracked as a time integral of busy servers so experiments
//! can report core occupancy (paper Figure 10).

use crate::stats::TimeWeighted;
use crate::time::{VirtualDuration, VirtualTime};
use std::collections::VecDeque;

/// A `k`-server FIFO queueing resource holding jobs of type `J`.
#[derive(Debug)]
pub struct Resource<J> {
    servers: usize,
    busy: usize,
    queue: VecDeque<J>,
    utilization: TimeWeighted,
    total_started: u64,
}

impl<J> Resource<J> {
    /// Create a resource with `servers` identical servers. Panics when
    /// `servers == 0`: a zero-capacity resource deadlocks every caller.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a resource needs at least one server");
        Resource {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            utilization: TimeWeighted::new(),
            total_started: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Servers currently serving a job.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Servers currently idle.
    pub fn idle(&self) -> usize {
        self.servers - self.busy
    }

    /// Jobs waiting for a server.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Total jobs that have entered service since construction.
    pub fn total_started(&self) -> u64 {
        self.total_started
    }

    /// Offer a job at time `now`. If a server is free the job enters
    /// service immediately and is returned; the caller must schedule its
    /// completion. Otherwise the job queues and `None` is returned.
    #[must_use = "a returned job has entered service; schedule its completion"]
    pub fn request(&mut self, now: VirtualTime, job: J) -> Option<J> {
        if self.busy < self.servers {
            self.start(now);
            Some(job)
        } else {
            self.queue.push_back(job);
            None
        }
    }

    /// Signal that one in-service job finished at time `now`. If a job was
    /// queued it enters service immediately and is returned; the caller must
    /// schedule its completion.
    ///
    /// Panics when no job was in service — releasing an idle resource means
    /// the model double-counted a completion.
    #[must_use = "a returned job has entered service; schedule its completion"]
    pub fn release(&mut self, now: VirtualTime) -> Option<J> {
        assert!(self.busy > 0, "release() on a resource with no busy server");
        self.utilization.record(now, self.busy as f64);
        self.busy -= 1;
        if let Some(job) = self.queue.pop_front() {
            self.start(now);
            Some(job)
        } else {
            None
        }
    }

    fn start(&mut self, now: VirtualTime) {
        self.utilization.record(now, self.busy as f64);
        self.busy += 1;
        self.total_started += 1;
    }

    /// Mean number of busy servers over `[0, now]`.
    pub fn mean_busy(&self, now: VirtualTime) -> f64 {
        self.utilization.mean_until(now, self.busy as f64)
    }

    /// Mean utilization in `[0, 1]` over `[0, now]` (mean busy / servers).
    pub fn mean_utilization(&self, now: VirtualTime) -> f64 {
        self.mean_busy(now) / self.servers as f64
    }

    /// Drain all queued jobs without starting them (for shutdown paths).
    pub fn drain_queue(&mut self) -> impl Iterator<Item = J> + '_ {
        self.queue.drain(..)
    }
}

/// A single-token gate: a binary resource with an attached FIFO of waiters.
/// Convenience wrapper over `Resource<J>` with one server, used for e.g. a
/// one-message-at-a-time NIC send engine.
#[derive(Debug)]
pub struct Gate<J> {
    inner: Resource<J>,
}

impl<J> Gate<J> {
    /// Create an open gate.
    pub fn new() -> Self {
        Gate {
            inner: Resource::new(1),
        }
    }

    /// True when a job is in service.
    pub fn is_busy(&self) -> bool {
        self.inner.busy() == 1
    }

    /// Jobs waiting for the gate.
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// Offer a job; see [`Resource::request`].
    #[must_use = "a returned job has entered service; schedule its completion"]
    pub fn request(&mut self, now: VirtualTime, job: J) -> Option<J> {
        self.inner.request(now, job)
    }

    /// Complete the in-service job; see [`Resource::release`].
    #[must_use = "a returned job has entered service; schedule its completion"]
    pub fn release(&mut self, now: VirtualTime) -> Option<J> {
        self.inner.release(now)
    }

    /// Mean utilization in `[0, 1]` over `[0, now]`.
    pub fn mean_utilization(&self, now: VirtualTime) -> f64 {
        self.inner.mean_utilization(now)
    }
}

impl<J> Default for Gate<J> {
    fn default() -> Self {
        Gate::new()
    }
}

/// Round a busy period up: given a service demand, when `k` jobs share a
/// serially-reusable resource the effective span is `demand * k`. Helper for
/// coarse contention models.
pub fn serialized_span(demand: VirtualDuration, jobs: u64) -> VirtualDuration {
    demand * jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_service_when_idle() {
        let mut r: Resource<u32> = Resource::new(2);
        assert_eq!(r.request(VirtualTime(0), 1), Some(1));
        assert_eq!(r.request(VirtualTime(0), 2), Some(2));
        assert_eq!(r.busy(), 2);
        assert_eq!(r.idle(), 0);
    }

    #[test]
    fn queues_when_full_and_fifo_on_release() {
        let mut r: Resource<u32> = Resource::new(1);
        assert_eq!(r.request(VirtualTime(0), 10), Some(10));
        assert_eq!(r.request(VirtualTime(1), 11), None);
        assert_eq!(r.request(VirtualTime(2), 12), None);
        assert_eq!(r.queued(), 2);
        assert_eq!(r.release(VirtualTime(5)), Some(11));
        assert_eq!(r.release(VirtualTime(9)), Some(12));
        assert_eq!(r.release(VirtualTime(12)), None);
        assert_eq!(r.busy(), 0);
        assert_eq!(r.total_started(), 3);
    }

    #[test]
    #[should_panic(expected = "no busy server")]
    fn release_idle_panics() {
        let mut r: Resource<u32> = Resource::new(1);
        let _ = r.release(VirtualTime(0));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _: Resource<u32> = Resource::new(0);
    }

    #[test]
    fn utilization_integral() {
        let mut r: Resource<u32> = Resource::new(2);
        // one server busy on [0, 10), both on [10, 20), none after 20
        assert_eq!(r.request(VirtualTime(0), 1), Some(1));
        assert_eq!(r.request(VirtualTime(10), 2), Some(2));
        assert_eq!(r.release(VirtualTime(20)), None);
        assert_eq!(r.release(VirtualTime(20)), None);
        // busy integral = 1*10 + 2*10 = 30 over [0, 40] => mean 0.75 busy
        let mean = r.mean_busy(VirtualTime(40));
        assert!((mean - 0.75).abs() < 1e-12, "mean = {mean}");
        assert!((r.mean_utilization(VirtualTime(40)) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn gate_serializes() {
        let mut g: Gate<&'static str> = Gate::new();
        assert_eq!(g.request(VirtualTime(0), "a"), Some("a"));
        assert!(g.is_busy());
        assert_eq!(g.request(VirtualTime(1), "b"), None);
        assert_eq!(g.queued(), 1);
        assert_eq!(g.release(VirtualTime(4)), Some("b"));
        assert_eq!(g.release(VirtualTime(8)), None);
        assert!(!g.is_busy());
    }

    #[test]
    fn drain_queue_empties() {
        let mut r: Resource<u32> = Resource::new(1);
        assert_eq!(r.request(VirtualTime(0), 1), Some(1));
        assert_eq!(r.request(VirtualTime(0), 2), None);
        assert_eq!(r.request(VirtualTime(0), 3), None);
        let drained: Vec<u32> = r.drain_queue().collect();
        assert_eq!(drained, vec![2, 3]);
        assert_eq!(r.queued(), 0);
    }

    #[test]
    fn serialized_span_multiplies() {
        assert_eq!(
            serialized_span(VirtualDuration::from_nanos(5), 4).as_nanos(),
            20
        );
    }
}
