//! Property tests for the discrete-event engine: ordering, determinism,
//! and resource conservation under arbitrary workloads.

use desim::{Engine, Model, Resource, Scheduler, VirtualTime};
use proptest::prelude::*;

/// A model that records every delivery (time, id).
struct Recorder {
    log: Vec<(u64, usize)>,
}

impl Model for Recorder {
    type Event = usize;
    fn handle(&mut self, now: VirtualTime, id: usize, _sched: &mut Scheduler<usize>) {
        self.log.push((now.as_nanos(), id));
    }
}

proptest! {
    /// Deliveries are sorted by time; ties preserve scheduling order.
    #[test]
    fn deliveries_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut e = Engine::new(Recorder { log: Vec::new() });
        for (id, &t) in times.iter().enumerate() {
            e.prime_at(VirtualTime(t), id);
        }
        e.run();
        let log = &e.model().log;
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "out of order: {:?}", w);
            if w[0].0 == w[1].0 {
                // FIFO among equal timestamps == ascending id (we primed in id order)
                prop_assert!(w[0].1 < w[1].1, "tie broken wrongly: {:?}", w);
            }
        }
    }

    /// Running the same workload twice yields the identical log.
    #[test]
    fn runs_are_deterministic(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let run = |times: &[u64]| {
            let mut e = Engine::new(Recorder { log: Vec::new() });
            for (id, &t) in times.iter().enumerate() {
                e.prime_at(VirtualTime(t), id);
            }
            e.run();
            e.into_model().log
        };
        prop_assert_eq!(run(&times), run(&times));
    }

    /// run_until never delivers an event past the deadline, and the
    /// remainder still delivers afterwards.
    #[test]
    fn run_until_respects_deadline(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        deadline in 0u64..1_000,
    ) {
        let mut e = Engine::new(Recorder { log: Vec::new() });
        for (id, &t) in times.iter().enumerate() {
            e.prime_at(VirtualTime(t), id);
        }
        e.run_until(VirtualTime(deadline));
        for &(t, _) in &e.model().log {
            prop_assert!(t <= deadline);
        }
        let delivered_early = e.model().log.len();
        e.run();
        prop_assert_eq!(e.model().log.len(), times.len());
        let late = &e.model().log[delivered_early..];
        for &(t, _) in late {
            prop_assert!(t > deadline);
        }
    }

    /// A k-server resource never serves more than k jobs at once, never
    /// loses a job, and serves queued jobs FIFO.
    #[test]
    fn resource_conserves_jobs(
        servers in 1usize..6,
        arrivals in proptest::collection::vec((0u64..500, 1u64..50), 1..100),
    ) {
        // Sort arrivals by time; drive the resource directly, simulating a
        // simple event loop by tracking completion times.
        let mut arr: Vec<(u64, u64)> = arrivals.clone();
        arr.sort();
        let mut res: Resource<u64> = Resource::new(servers);
        // (completion_time, seq) min-heap via sorted Vec
        let mut in_service: Vec<u64> = Vec::new(); // completion times
        let mut started = 0u64;
        let mut completed = 0u64;
        let total = arr.len() as u64;
        let mut now = 0u64;
        let mut queue_order: Vec<u64> = Vec::new(); // durations as identity
        let mut idx = 0usize;
        while completed < total {
            // next event: either an arrival or a completion
            let next_arrival = arr.get(idx).map(|&(t, _)| t);
            let next_completion = in_service.iter().min().copied();
            let (t, is_arrival) = match (next_arrival, next_completion) {
                (Some(a), Some(c)) if a <= c => (a, true),
                (Some(_), Some(c)) => (c, false),
                (Some(a), None) => (a, true),
                (None, Some(c)) => (c, false),
                (None, None) => break,
            };
            prop_assert!(t >= now);
            now = t;
            if is_arrival {
                let (_, dur) = arr[idx];
                idx += 1;
                if let Some(d) = res.request(VirtualTime(now), dur) {
                    started += 1;
                    in_service.push(now + d);
                } else {
                    queue_order.push(dur);
                }
            } else {
                let pos = in_service
                    .iter()
                    .position(|&c| Some(c) == next_completion)
                    .unwrap();
                in_service.swap_remove(pos);
                completed += 1;
                if let Some(d) = res.release(VirtualTime(now)) {
                    // FIFO: must be the head of our shadow queue
                    prop_assert_eq!(d, queue_order.remove(0));
                    started += 1;
                    in_service.push(now + d);
                }
            }
            prop_assert!(in_service.len() <= servers);
            prop_assert_eq!(res.busy(), in_service.len());
        }
        prop_assert_eq!(started, total);
        prop_assert_eq!(completed, total);
        prop_assert_eq!(res.queued(), 0);
    }
}
