//! Loom model tests for the shared scheduling state.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (see `ci.sh`). With the
//! real `loom` crate these closures are re-executed under every schedulable
//! interleaving; with the vendored stub they run once as a plain
//! concurrency smoke test. Either way they pin down the invariants the
//! executors rely on:
//!
//! * [`PendingTable::deliver`] hands a task to **exactly one** caller, no
//!   matter how concurrent deliveries of its input flows interleave.
//! * [`ReadyQueue`] conserves tasks: everything pushed is popped exactly
//!   once, across selection disciplines.
//! * [`StealDeque`] conserves tasks between the owner's bottom end and a
//!   concurrent thief: every push is claimed exactly once, by exactly one
//!   side.
//! * [`ShardedPending::deliver_batch`] fires each multi-input task
//!   exactly once when its activations race across concurrent batches.

use crate::deque::{Steal, StealDeque};
use crate::pending::{Delivery, PendingTable, ReadyTask, ShardedPending};
use crate::ready_queue::ReadyQueue;
use crate::scheduler::{FifoSelector, LifoSelector, StaticRanks, TaskSelector};
use crate::task::testutil::ExplicitDag;
use crate::task::{FlowData, TaskGraph, TaskKey};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::HashMap;

fn two_input_graph() -> TaskGraph {
    let mut g = TaskGraph::new();
    g.add_class(std::sync::Arc::new(ExplicitDag {
        name: "t".into(),
        edges: HashMap::new(),
        indeg: [(1, 2)].into_iter().collect(),
        node: HashMap::new(),
        cost: 0.0,
        bytes: 8,
    }));
    g
}

#[test]
fn concurrent_deliveries_fire_task_exactly_once() {
    loom::model(|| {
        let graph = std::sync::Arc::new(two_input_graph());
        let table = Arc::new(Mutex::new(PendingTable::new()));
        let consumer = TaskKey::new(0, [1, 0, 0, 0]);

        let handles: Vec<_> = (0..2usize)
            .map(|slot| {
                let table = Arc::clone(&table);
                let graph = std::sync::Arc::clone(&graph);
                thread::spawn(move || {
                    let ready =
                        table
                            .lock()
                            .unwrap()
                            .deliver(&graph, consumer, slot, FlowData::sized(8));
                    ready.is_some()
                })
            })
            .collect();

        let fired: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(fired, 1, "exactly one deliverer must receive the task");

        let table = table.lock().unwrap();
        assert!(table.is_empty(), "fired task must leave the table");
        assert_eq!(table.flows_delivered(), 2);
    });
}

#[test]
fn ready_queue_conserves_tasks_under_concurrent_pushes() {
    loom::model(|| {
        // Rank the keys the producers will push, so the rank discipline
        // exercises its heap path.
        let ranks: HashMap<TaskKey, i64> = (0..2)
            .flat_map(|p| (0..2).map(move |i| (TaskKey::new(0, [p, i, 0, 0]), i as i64)))
            .collect();
        let selectors: [std::sync::Arc<dyn TaskSelector>; 3] = [
            std::sync::Arc::new(FifoSelector),
            std::sync::Arc::new(LifoSelector),
            std::sync::Arc::new(StaticRanks::new(ranks)),
        ];
        for selector in selectors {
            let queue = Arc::new(Mutex::new(ReadyQueue::new(selector)));
            let handles: Vec<_> = (0..2i32)
                .map(|producer| {
                    let queue = Arc::clone(&queue);
                    thread::spawn(move || {
                        for i in 0..2i32 {
                            let task = ReadyTask {
                                key: TaskKey::new(0, [producer, i, 0, 0]),
                                inputs: Vec::new(),
                            };
                            queue.lock().unwrap().push(task);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }

            let mut queue = queue.lock().unwrap();
            assert_eq!(queue.len(), 4);
            let mut seen: Vec<[i32; 4]> = Vec::new();
            while let Some(t) = queue.pop() {
                seen.push(t.key.params);
            }
            assert!(queue.is_empty());
            seen.sort();
            let mut expect: Vec<[i32; 4]> = (0..2)
                .flat_map(|p| (0..2).map(move |i| [p, i, 0, 0]))
                .collect();
            expect.sort();
            assert_eq!(seen, expect, "every pushed task pops exactly once");
        }
    });
}

#[test]
fn deque_conserves_elements_between_owner_and_thief() {
    // Kept deliberately tiny (2 elements, 1 thief) so the real loom can
    // enumerate every interleaving of the push/pop/steal orderings —
    // including the single-element race where the owner's `pop` and the
    // thief's `steal` CAS-duel over `top`.
    loom::model(|| {
        let d = Arc::new(StealDeque::with_capacity(4));
        for i in 0..2u64 {
            d.push(Box::new(i)).unwrap();
        }

        let thief = {
            let d = Arc::clone(&d);
            thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    match d.steal() {
                        Steal::Success(v) => got.push(*v),
                        Steal::Retry | Steal::Empty => {}
                    }
                }
                got
            })
        };

        let mut owner_got = Vec::new();
        while let Some(v) = d.pop() {
            owner_got.push(*v);
        }
        let mut all = thief.join().unwrap();
        all.extend(owner_got);
        // Drain stragglers the thief's bounded attempts left behind.
        while let Some(v) = d.pop() {
            all.push(*v);
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1], "each element claimed exactly once");
    });
}

#[test]
fn sharded_pending_fires_each_task_exactly_once_across_batches() {
    loom::model(|| {
        let graph = std::sync::Arc::new(two_input_graph());
        let pending = Arc::new(ShardedPending::new(2));
        let consumer = TaskKey::new(0, [1, 0, 0, 0]);

        // Two batches race: each carries one of the consumer's two input
        // activations, so exactly one batch must return it ready.
        let handles: Vec<_> = (0..2usize)
            .map(|slot| {
                let pending = Arc::clone(&pending);
                let graph = std::sync::Arc::clone(&graph);
                thread::spawn(move || {
                    let batch = vec![Delivery {
                        consumer,
                        slot,
                        data: FlowData::sized(8),
                    }];
                    pending.deliver_batch(&graph, batch).len()
                })
            })
            .collect();

        let fired: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(fired, 1, "exactly one batch must receive the task");
        assert!(pending.is_empty(), "fired task must leave the table");
        assert_eq!(pending.flows_delivered(), 2);
    });
}
