//! Activation counting: the dynamic DAG-unfolding bookkeeping shared by
//! both executors.
//!
//! A task is *pending* from the moment its first input flow arrives until
//! all of its inputs have arrived, at which point it becomes *ready* and
//! leaves the table. This mirrors PaRSEC's activation counters: no global
//! graph is ever built, memory is proportional to the wavefront.

use crate::task::{FlowData, TaskGraph, TaskKey};
use std::collections::HashMap;

/// A task whose inputs are all present, ready for dispatch.
pub struct ReadyTask {
    /// The task.
    pub key: TaskKey,
    /// Input slots, indexed as the producers' [`crate::task::OutputDep::slot`]s.
    pub inputs: Vec<Option<FlowData>>,
}

impl std::fmt::Debug for ReadyTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReadyTask({:?}, {} inputs)", self.key, self.inputs.len())
    }
}

struct Pending {
    remaining: usize,
    inputs: Vec<Option<FlowData>>,
}

/// The activation table.
#[derive(Default)]
pub struct PendingTable {
    map: HashMap<TaskKey, Pending>,
    delivered: u64,
}

impl PendingTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver one flow into `consumer`'s input `slot`. Returns the ready
    /// task when this was the last missing input.
    ///
    /// Panics if the slot is out of range or already filled — both indicate
    /// an inconsistent task graph (see [`crate::unfold`]).
    pub fn deliver(
        &mut self,
        graph: &TaskGraph,
        consumer: TaskKey,
        slot: usize,
        data: FlowData,
    ) -> Option<ReadyTask> {
        self.delivered += 1;
        let entry = self.map.entry(consumer).or_insert_with(|| {
            let class = graph.class(consumer.class);
            let remaining = class.activation_count(consumer.params);
            assert!(
                remaining > 0,
                "{:?} received a flow but declares zero inputs",
                consumer
            );
            Pending {
                remaining,
                inputs: vec![None; class.num_input_slots(consumer.params)],
            }
        });
        assert!(
            slot < entry.inputs.len(),
            "{consumer:?}: slot {slot} out of range ({} slots)",
            entry.inputs.len()
        );
        assert!(
            entry.inputs[slot].is_none(),
            "{consumer:?}: slot {slot} delivered twice"
        );
        entry.inputs[slot] = Some(data);
        entry.remaining -= 1;
        if entry.remaining == 0 {
            let p = self.map.remove(&consumer).expect("entry just touched");
            Some(ReadyTask {
                key: consumer,
                inputs: p.inputs,
            })
        } else {
            None
        }
    }

    /// Make a root task (zero activation count) ready directly.
    pub fn root(graph: &TaskGraph, key: TaskKey) -> ReadyTask {
        let class = graph.class(key.class);
        assert_eq!(
            class.activation_count(key.params),
            0,
            "{key:?} is not a root (activation count nonzero)"
        );
        ReadyTask {
            key,
            inputs: vec![None; class.num_input_slots(key.params)],
        }
    }

    /// Number of tasks currently waiting for more inputs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no task is waiting.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total flows delivered through this table.
    pub fn flows_delivered(&self) -> u64 {
        self.delivered
    }

    /// Keys of tasks stuck waiting (diagnostics for deadlocked graphs).
    pub fn stuck_tasks(&self) -> Vec<TaskKey> {
        self.map.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::testutil::ExplicitDag;
    use crate::task::TaskGraph;
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn graph_with_indeg(indeg: &[(i32, usize)]) -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges: Map::new(),
            indeg: indeg.iter().copied().collect(),
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        g
    }

    fn key(i: i32) -> TaskKey {
        TaskKey::new(0, [i, 0, 0, 0])
    }

    #[test]
    fn task_fires_when_all_inputs_arrive() {
        let g = graph_with_indeg(&[(1, 3)]);
        let mut t = PendingTable::new();
        assert!(t.deliver(&g, key(1), 0, FlowData::sized(8)).is_none());
        assert!(t.deliver(&g, key(1), 2, FlowData::sized(8)).is_none());
        assert_eq!(t.len(), 1);
        let ready = t.deliver(&g, key(1), 1, FlowData::sized(8)).unwrap();
        assert_eq!(ready.key, key(1));
        assert_eq!(ready.inputs.len(), 3);
        assert!(ready.inputs.iter().all(Option::is_some));
        assert!(t.is_empty());
        assert_eq!(t.flows_delivered(), 3);
    }

    #[test]
    fn single_input_task_fires_immediately() {
        let g = graph_with_indeg(&[(7, 1)]);
        let mut t = PendingTable::new();
        assert!(t.deliver(&g, key(7), 0, FlowData::sized(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "delivered twice")]
    fn double_delivery_panics() {
        let g = graph_with_indeg(&[(1, 2)]);
        let mut t = PendingTable::new();
        let _ = t.deliver(&g, key(1), 0, FlowData::sized(8));
        let _ = t.deliver(&g, key(1), 0, FlowData::sized(8));
    }

    #[test]
    #[should_panic(expected = "slot 5 out of range")]
    fn out_of_range_slot_panics() {
        let g = graph_with_indeg(&[(1, 2)]);
        let mut t = PendingTable::new();
        let _ = t.deliver(&g, key(1), 5, FlowData::sized(8));
    }

    #[test]
    #[should_panic(expected = "zero inputs")]
    fn delivering_to_root_panics() {
        let g = graph_with_indeg(&[(1, 0)]);
        let mut t = PendingTable::new();
        let _ = t.deliver(&g, key(1), 0, FlowData::sized(8));
    }

    #[test]
    fn root_constructs_ready_task() {
        let g = graph_with_indeg(&[(4, 0)]);
        let r = PendingTable::root(&g, key(4));
        assert_eq!(r.key, key(4));
        assert!(r.inputs.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a root")]
    fn root_on_dependent_task_panics() {
        let g = graph_with_indeg(&[(4, 2)]);
        let _ = PendingTable::root(&g, key(4));
    }

    #[test]
    fn stuck_tasks_reported() {
        let g = graph_with_indeg(&[(1, 2), (2, 2)]);
        let mut t = PendingTable::new();
        let _ = t.deliver(&g, key(1), 0, FlowData::sized(8));
        let _ = t.deliver(&g, key(2), 0, FlowData::sized(8));
        let mut stuck = t.stuck_tasks();
        stuck.sort_by_key(|k| k.params[0]);
        assert_eq!(stuck, vec![key(1), key(2)]);
    }
}
