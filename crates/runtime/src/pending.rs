//! Activation counting: the dynamic DAG-unfolding bookkeeping shared by
//! both executors.
//!
//! A task is *pending* from the moment its first input flow arrives until
//! all of its inputs have arrived, at which point it becomes *ready* and
//! leaves the table. This mirrors PaRSEC's activation counters: no global
//! graph is ever built, memory is proportional to the wavefront.
//!
//! Two containers implement the bookkeeping:
//!
//! * [`PendingTable`] — the single-threaded table (the simulator's, and
//!   the unit under every invariant test);
//! * [`ShardedPending`] — the real executors' concurrent wrapper: the
//!   key space is split across power-of-two lock shards by task-key
//!   hash, and [`ShardedPending::deliver_batch`] delivers *all* of a
//!   completing task's output flows with one lock acquisition per
//!   touched shard instead of one per flow.

use crate::task::{FlowData, TaskGraph, TaskKey};
use parking_lot::Mutex;
use std::collections::HashMap;

/// A task whose inputs are all present, ready for dispatch.
///
/// Invariant: `inputs.len()` equals the class's declared
/// `num_input_slots`, and — when produced by [`PendingTable::deliver`] —
/// every slot a producer references is `Some` (root tasks keep their
/// declared slots all-`None`).
pub struct ReadyTask {
    /// The task.
    pub key: TaskKey,
    /// Input slots, indexed as the producers' [`crate::task::OutputDep::slot`]s.
    pub inputs: Vec<Option<FlowData>>,
}

impl std::fmt::Debug for ReadyTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReadyTask({:?}, {} inputs)", self.key, self.inputs.len())
    }
}

struct Pending {
    remaining: usize,
    inputs: Vec<Option<FlowData>>,
}

/// The activation table.
///
/// # Example
///
/// A two-input task becomes ready exactly when its second flow lands:
///
/// ```
/// use runtime::{DtdBuilder, FlowData, PendingTable, TaskKey};
///
/// let mut b = DtdBuilder::new();
/// let a = b.insert(0, 0.0, &[]);
/// let c = b.insert(0, 0.0, &[]);
/// let _join = b.insert(0, 0.0, &[a, c]); // task 2, two input slots
/// let program = b.build();
///
/// let mut table = PendingTable::new();
/// let join = TaskKey::new(0, [2, 0, 0, 0]);
/// assert!(table
///     .deliver(&program.graph, join, 0, FlowData::sized(8))
///     .is_none());
/// let ready = table
///     .deliver(&program.graph, join, 1, FlowData::sized(8))
///     .expect("second flow completes the activation count");
/// assert_eq!(ready.key, join);
/// assert!(table.is_empty());
/// ```
#[derive(Default)]
pub struct PendingTable {
    map: HashMap<TaskKey, Pending>,
    delivered: u64,
}

impl PendingTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver one flow into `consumer`'s input `slot`. Returns the ready
    /// task when this was the last missing input.
    ///
    /// Panics if the slot is out of range or already filled — both indicate
    /// an inconsistent task graph (see [`crate::unfold`]).
    pub fn deliver(
        &mut self,
        graph: &TaskGraph,
        consumer: TaskKey,
        slot: usize,
        data: FlowData,
    ) -> Option<ReadyTask> {
        self.delivered += 1;
        let entry = self.map.entry(consumer).or_insert_with(|| {
            let class = graph.class(consumer.class);
            let remaining = class.activation_count(consumer.params);
            assert!(
                remaining > 0,
                "{:?} received a flow but declares zero inputs",
                consumer
            );
            Pending {
                remaining,
                inputs: vec![None; class.num_input_slots(consumer.params)],
            }
        });
        assert!(
            slot < entry.inputs.len(),
            "{consumer:?}: slot {slot} out of range ({} slots)",
            entry.inputs.len()
        );
        assert!(
            entry.inputs[slot].is_none(),
            "{consumer:?}: slot {slot} delivered twice"
        );
        entry.inputs[slot] = Some(data);
        entry.remaining -= 1;
        if entry.remaining == 0 {
            let p = self.map.remove(&consumer).expect("entry just touched");
            Some(ReadyTask {
                key: consumer,
                inputs: p.inputs,
            })
        } else {
            None
        }
    }

    /// Make a root task (zero activation count) ready directly.
    pub fn root(graph: &TaskGraph, key: TaskKey) -> ReadyTask {
        let class = graph.class(key.class);
        assert_eq!(
            class.activation_count(key.params),
            0,
            "{key:?} is not a root (activation count nonzero)"
        );
        ReadyTask {
            key,
            inputs: vec![None; class.num_input_slots(key.params)],
        }
    }

    /// Number of tasks currently waiting for more inputs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no task is waiting.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total flows delivered through this table.
    pub fn flows_delivered(&self) -> u64 {
        self.delivered
    }

    /// Keys of tasks stuck waiting (diagnostics for deadlocked graphs).
    pub fn stuck_tasks(&self) -> Vec<TaskKey> {
        self.map.keys().copied().collect()
    }
}

/// One flow bound for a consumer's input slot — the unit of
/// [`ShardedPending::deliver_batch`].
pub struct Delivery {
    /// The consuming task.
    pub consumer: TaskKey,
    /// Its input slot (the producer's [`crate::task::OutputDep::slot`]).
    pub slot: usize,
    /// The flow payload.
    pub data: FlowData,
}

/// The concurrent activation table of the real executors: a
/// [`PendingTable`] per lock shard, shard chosen by task-key hash.
///
/// Invariants (each inherited per shard from [`PendingTable`], which the
/// loom model in `loom_model.rs` exercises under concurrent delivery):
///
/// * a task's activations all land in the *same* shard — the shard is a
///   pure function of the key — so the exactly-once "last flow fires the
///   task" property is a single-shard property;
/// * [`ShardedPending::deliver_batch`] locks each touched shard exactly
///   once per batch, and returns the newly ready tasks **in batch
///   order** (not shard order), so a completing task releases its
///   successors in the same order the class declared its outputs — the
///   order the FIFO dispatch contract keys on;
/// * aggregate queries ([`ShardedPending::len`],
///   [`ShardedPending::flows_delivered`], …) sum the shards; they are
///   exact only at quiescence, which is when the executors consult them.
pub struct ShardedPending {
    shards: Box<[Mutex<PendingTable>]>,
    mask: u64,
}

impl ShardedPending {
    /// A table with `shards` lock shards (rounded up to a power of two,
    /// minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedPending {
            shards: (0..n).map(|_| Mutex::new(PendingTable::new())).collect(),
            mask: n as u64 - 1,
        }
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` maps to (pure: same key, same shard).
    pub fn shard_of(&self, key: TaskKey) -> usize {
        // Fibonacci scramble of the stable instance id: cheap,
        // deterministic across runs, spreads consecutive task indices.
        (key.instance_id().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32 & self.mask) as usize
    }

    /// Deliver one flow (the comm-thread path). Same contract and panics
    /// as [`PendingTable::deliver`].
    pub fn deliver(
        &self,
        graph: &TaskGraph,
        consumer: TaskKey,
        slot: usize,
        data: FlowData,
    ) -> Option<ReadyTask> {
        self.shards[self.shard_of(consumer)]
            .lock()
            .deliver(graph, consumer, slot, data)
    }

    /// Deliver a completing task's whole output batch: one lock
    /// acquisition per touched shard, ready tasks returned in batch
    /// order (see the type-level invariants).
    pub fn deliver_batch(&self, graph: &TaskGraph, batch: Vec<Delivery>) -> Vec<ReadyTask> {
        let shards: Vec<usize> = batch.iter().map(|d| self.shard_of(d.consumer)).collect();
        let mut slots: Vec<Option<Delivery>> = batch.into_iter().map(Some).collect();
        let mut ready: Vec<Option<ReadyTask>> =
            std::iter::repeat_with(|| None).take(slots.len()).collect();
        let mut touched: Vec<usize> = shards.clone();
        touched.sort_unstable();
        touched.dedup();
        for s in touched {
            let mut guard = self.shards[s].lock();
            for i in 0..slots.len() {
                if shards[i] == s {
                    let d = slots[i].take().expect("each delivery is consumed once");
                    ready[i] = guard.deliver(graph, d.consumer, d.slot, d.data);
                }
            }
        }
        ready.into_iter().flatten().collect()
    }

    /// Tasks currently waiting for more inputs, summed over the shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no task is waiting in any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Total flows delivered through all shards.
    pub fn flows_delivered(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().flows_delivered()).sum()
    }

    /// Keys of tasks stuck waiting, across all shards (deadlock
    /// diagnostics).
    pub fn stuck_tasks(&self) -> Vec<TaskKey> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().stuck_tasks())
            .collect()
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;
    use crate::task::testutil::ExplicitDag;
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn graph_with_indeg(indeg: &[(i32, usize)]) -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges: Map::new(),
            indeg: indeg.iter().copied().collect(),
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        g
    }

    fn key(i: i32) -> TaskKey {
        TaskKey::new(0, [i, 0, 0, 0])
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let t = ShardedPending::new(8);
        assert_eq!(t.shard_count(), 8);
        for i in 0..100 {
            let s = t.shard_of(key(i));
            assert!(s < 8);
            assert_eq!(s, t.shard_of(key(i)));
        }
    }

    #[test]
    fn batch_delivery_fires_in_batch_order() {
        // Three single-input consumers: all become ready, in the order
        // the batch listed them, regardless of shard assignment.
        let g = graph_with_indeg(&[(1, 1), (2, 1), (3, 1)]);
        let t = ShardedPending::new(4);
        let ready = t.deliver_batch(
            &g,
            vec![
                Delivery {
                    consumer: key(2),
                    slot: 0,
                    data: FlowData::sized(8),
                },
                Delivery {
                    consumer: key(1),
                    slot: 0,
                    data: FlowData::sized(8),
                },
                Delivery {
                    consumer: key(3),
                    slot: 0,
                    data: FlowData::sized(8),
                },
            ],
        );
        let order: Vec<i32> = ready.iter().map(|r| r.key.params[0]).collect();
        assert_eq!(order, vec![2, 1, 3]);
        assert!(t.is_empty());
        assert_eq!(t.flows_delivered(), 3);
    }

    #[test]
    fn partial_batches_leave_tasks_pending() {
        let g = graph_with_indeg(&[(1, 2)]);
        let t = ShardedPending::new(2);
        let ready = t.deliver_batch(
            &g,
            vec![Delivery {
                consumer: key(1),
                slot: 0,
                data: FlowData::sized(8),
            }],
        );
        assert!(ready.is_empty());
        assert_eq!(t.len(), 1);
        assert_eq!(t.stuck_tasks(), vec![key(1)]);
        let ready = t.deliver(&g, key(1), 1, FlowData::sized(8)).unwrap();
        assert_eq!(ready.key, key(1));
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_deliveries_fire_each_task_exactly_once() {
        // 64 two-input tasks, the two flows delivered from two racing
        // threads: every task fires exactly once, on whichever thread
        // completed it.
        let g = Arc::new(graph_with_indeg(
            &(0..64).map(|i| (i, 2)).collect::<Vec<_>>(),
        ));
        let t = Arc::new(ShardedPending::new(8));
        let fire = |slot: usize, t: Arc<ShardedPending>, g: Arc<TaskGraph>| {
            std::thread::spawn(move || {
                let mut fired = 0u32;
                for i in 0..64 {
                    let batch = vec![Delivery {
                        consumer: key(i),
                        slot,
                        data: FlowData::sized(8),
                    }];
                    fired += t.deliver_batch(&g, batch).len() as u32;
                }
                fired
            })
        };
        let a = fire(0, Arc::clone(&t), Arc::clone(&g));
        let b = fire(1, Arc::clone(&t), Arc::clone(&g));
        let total = a.join().unwrap() + b.join().unwrap();
        assert_eq!(total, 64);
        assert!(t.is_empty());
        assert_eq!(t.flows_delivered(), 128);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::testutil::ExplicitDag;
    use crate::task::TaskGraph;
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn graph_with_indeg(indeg: &[(i32, usize)]) -> TaskGraph {
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges: Map::new(),
            indeg: indeg.iter().copied().collect(),
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        g
    }

    fn key(i: i32) -> TaskKey {
        TaskKey::new(0, [i, 0, 0, 0])
    }

    #[test]
    fn task_fires_when_all_inputs_arrive() {
        let g = graph_with_indeg(&[(1, 3)]);
        let mut t = PendingTable::new();
        assert!(t.deliver(&g, key(1), 0, FlowData::sized(8)).is_none());
        assert!(t.deliver(&g, key(1), 2, FlowData::sized(8)).is_none());
        assert_eq!(t.len(), 1);
        let ready = t.deliver(&g, key(1), 1, FlowData::sized(8)).unwrap();
        assert_eq!(ready.key, key(1));
        assert_eq!(ready.inputs.len(), 3);
        assert!(ready.inputs.iter().all(Option::is_some));
        assert!(t.is_empty());
        assert_eq!(t.flows_delivered(), 3);
    }

    #[test]
    fn single_input_task_fires_immediately() {
        let g = graph_with_indeg(&[(7, 1)]);
        let mut t = PendingTable::new();
        assert!(t.deliver(&g, key(7), 0, FlowData::sized(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "delivered twice")]
    fn double_delivery_panics() {
        let g = graph_with_indeg(&[(1, 2)]);
        let mut t = PendingTable::new();
        let _ = t.deliver(&g, key(1), 0, FlowData::sized(8));
        let _ = t.deliver(&g, key(1), 0, FlowData::sized(8));
    }

    #[test]
    #[should_panic(expected = "slot 5 out of range")]
    fn out_of_range_slot_panics() {
        let g = graph_with_indeg(&[(1, 2)]);
        let mut t = PendingTable::new();
        let _ = t.deliver(&g, key(1), 5, FlowData::sized(8));
    }

    #[test]
    #[should_panic(expected = "zero inputs")]
    fn delivering_to_root_panics() {
        let g = graph_with_indeg(&[(1, 0)]);
        let mut t = PendingTable::new();
        let _ = t.deliver(&g, key(1), 0, FlowData::sized(8));
    }

    #[test]
    fn root_constructs_ready_task() {
        let g = graph_with_indeg(&[(4, 0)]);
        let r = PendingTable::root(&g, key(4));
        assert_eq!(r.key, key(4));
        assert!(r.inputs.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a root")]
    fn root_on_dependent_task_panics() {
        let g = graph_with_indeg(&[(4, 2)]);
        let _ = PendingTable::root(&g, key(4));
    }

    #[test]
    fn stuck_tasks_reported() {
        let g = graph_with_indeg(&[(1, 2), (2, 2)]);
        let mut t = PendingTable::new();
        let _ = t.deliver(&g, key(1), 0, FlowData::sized(8));
        let _ = t.deliver(&g, key(2), 0, FlowData::sized(8));
        let mut stuck = t.stuck_tasks();
        stuck.sort_by_key(|k| k.params[0]);
        assert_eq!(stuck, vec![key(1), key(2)]);
    }
}
