//! A bounded Chase–Lev work-stealing deque: the lock-free per-worker
//! queue at the heart of the real executors' dispatch loop.
//!
//! Each worker owns one [`StealDeque`]: it pushes and pops at the
//! *bottom* end without taking any lock, while thieves (other workers
//! that ran dry) remove elements from the *top* end with a single
//! compare-and-swap. This is the classic Chase–Lev layout ("Dynamic
//! circular work-stealing deque", SPAA '05) with one deliberate
//! simplification: the ring does **not** grow. A full deque rejects the
//! push and the caller spills the task to the shared overflow queue (see
//! `crate::dispatch`) — which is exactly the role the global
//! `Mutex<ReadyQueue>` retains after the work-stealing overhaul, and it
//! sidesteps the memory-reclamation problem that dynamic resizing drags
//! in (no epochs, no hazard pointers: a slot is only reused after `top`
//! has moved past it, and a stale read is always discarded by the failing
//! CAS).
//!
//! Why this is memory-safe without garbage collection, in brief:
//!
//! * elements are heap-allocated (`Box<T>`), the ring stores raw
//!   pointers; ownership transfers exactly once, at the moment a
//!   `pop`/`steal` *wins* its race (the CAS on `top`, or for the owner,
//!   holding `bottom` strictly above `top`);
//! * a thief may read a pointer from a slot that the owner is about to
//!   reuse, but reuse requires `bottom` to lap the ring, which the
//!   bounded-capacity push check forbids until `top` has advanced — and
//!   once `top` advanced, the thief's CAS on the old `top` fails and the
//!   stale pointer is dropped *without being dereferenced*;
//! * `Drop` drains whatever remains through `&mut self`, so no element
//!   leaks.
//!
//! Under `--cfg loom` the atomics come from the `loom` facade so the
//! model in `crate::loom_model` can drive the same code.

#[cfg(loom)]
use loom::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

/// Outcome of a [`StealDeque::steal`] attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying on a
    /// later sweep (the deque was *not* observed empty).
    Retry,
    /// Won the element at the top of the deque.
    Success(Box<T>),
}

/// A bounded lock-free work-stealing deque (see the module docs for the
/// algorithm and its safety argument).
///
/// One thread — the *owner* — may call [`push`](StealDeque::push),
/// [`pop`](StealDeque::pop) and [`pop_top`](StealDeque::pop_top); any
/// number of threads may call [`steal`](StealDeque::steal) and
/// [`len`](StealDeque::len) concurrently.
pub struct StealDeque<T> {
    buf: Box<[AtomicPtr<T>]>,
    mask: isize,
    /// Steal end; only ever incremented, via CAS.
    top: AtomicIsize,
    /// Owner end; written only by the owner.
    bottom: AtomicIsize,
}

// SAFETY: the deque hands each Box<T> to exactly one winner (see the
// module docs); T itself crosses threads, hence the Send bound.
unsafe impl<T: Send> Sync for StealDeque<T> {}
// SAFETY: moving the whole deque moves ownership of the boxed elements.
unsafe impl<T: Send> Send for StealDeque<T> {}

impl<T> StealDeque<T> {
    /// An empty deque holding at most `capacity` elements (rounded up to
    /// the next power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        StealDeque {
            buf,
            mask: cap as isize - 1,
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
        }
    }

    /// Ring capacity (elements the deque can hold before spilling).
    pub fn capacity(&self) -> usize {
        self.mask as usize + 1
    }

    /// Number of elements currently queued. Racy by nature when called
    /// by a non-owner — a snapshot, good for telemetry and victim
    /// selection, never for correctness decisions.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        b.saturating_sub(t).max(0) as usize
    }

    /// True when nothing is queued (same snapshot caveat as
    /// [`len`](StealDeque::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: append at the bottom. Returns the element back when
    /// the ring is full so the caller can spill it to the overflow queue.
    pub fn push(&self, value: Box<T>) -> Result<(), Box<T>> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t > self.mask {
            // Full. A stale (small) `t` only makes this check more
            // conservative, never less — reuse of a live slot is
            // impossible.
            return Err(value);
        }
        let ptr = Box::into_raw(value);
        self.buf[(b & self.mask) as usize].store(ptr, Ordering::Relaxed);
        // Publish the slot before publishing the new bottom, so a thief
        // that observes `bottom = b + 1` also observes the pointer.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: take from the bottom (LIFO — the task most recently
    /// released, the cache-warm end).
    pub fn pop(&self) -> Option<Box<T>> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // Announce the claim on slot `b` before reading `top`: the SeqCst
        // fence pairs with the one in `steal`, so either the thief sees
        // the decremented bottom (and backs off) or we see its
        // incremented top.
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let ptr = self.buf[(b & self.mask) as usize].load(Ordering::Relaxed);
        if b > t {
            // More than one element: thieves target `t < b`, no race on
            // slot `b`.
            // SAFETY: `ptr` was written by a successful `push` at index
            // `b` and no other thread can claim slot `b` while
            // `top <= b - 1 < b`; ownership transfers to us exactly once.
            return Some(unsafe { Box::from_raw(ptr) });
        }
        // Exactly one element: race thieves for it via the CAS on top.
        let won = self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.bottom.store(b + 1, Ordering::Relaxed);
        if won {
            // SAFETY: winning the CAS on `top == t == b` makes us the
            // unique claimant of slot `b`; the pointer came from `push`.
            Some(unsafe { Box::from_raw(ptr) })
        } else {
            None
        }
    }

    /// Owner-only: take from the *top* (FIFO — the oldest queued task).
    /// Shares the steal path, so FIFO dispatch order is preserved even
    /// while thieves are active. Retries internally on CAS contention.
    pub fn pop_top(&self) -> Option<Box<T>> {
        loop {
            match self.steal() {
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
                Steal::Success(v) => return Some(v),
            }
        }
    }

    /// Thief: try to take the element at the top of the deque.
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Pair with the SeqCst fence in `pop`: see the claim ordering
        // argument there.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let ptr = self.buf[(t & self.mask) as usize].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the CAS succeeded on the `top` we read the slot
            // under, so the slot cannot have been reused (reuse requires
            // `top` to have advanced first — module docs) and we are the
            // unique claimant of index `t`.
            Steal::Success(unsafe { Box::from_raw(ptr) })
        } else {
            Steal::Retry
        }
    }
}

impl<T> Drop for StealDeque<T> {
    fn drop(&mut self) {
        // &mut self: no concurrent owner or thieves; drain what remains.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        for i in t..b {
            let ptr = self.buf[(i & self.mask) as usize].load(Ordering::Relaxed);
            if !ptr.is_null() {
                // SAFETY: indices in [top, bottom) hold live elements
                // pushed by `push` and claimed by nobody; exclusive
                // access via &mut self.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lifo_pop_order() {
        let d = StealDeque::with_capacity(8);
        for i in 0..4 {
            d.push(Box::new(i)).unwrap();
        }
        assert_eq!(d.len(), 4);
        let popped: Vec<i32> = std::iter::from_fn(|| d.pop().map(|b| *b)).collect();
        assert_eq!(popped, vec![3, 2, 1, 0]);
        assert!(d.is_empty());
        assert!(d.pop().is_none());
    }

    #[test]
    fn fifo_pop_top_order() {
        let d = StealDeque::with_capacity(8);
        for i in 0..4 {
            d.push(Box::new(i)).unwrap();
        }
        let popped: Vec<i32> = std::iter::from_fn(|| d.pop_top().map(|b| *b)).collect();
        assert_eq!(popped, vec![0, 1, 2, 3]);
    }

    #[test]
    fn steal_takes_the_oldest() {
        let d = StealDeque::with_capacity(8);
        for i in 0..3 {
            d.push(Box::new(i)).unwrap();
        }
        match d.steal() {
            Steal::Success(v) => assert_eq!(*v, 0),
            other => panic!("expected success, got {other:?}"),
        }
        // Owner still sees the newest at the bottom.
        assert_eq!(*d.pop().unwrap(), 2);
    }

    #[test]
    fn full_deque_rejects_push_and_returns_the_element() {
        let d = StealDeque::with_capacity(2);
        assert_eq!(d.capacity(), 2);
        d.push(Box::new(0)).unwrap();
        d.push(Box::new(1)).unwrap();
        let back = d.push(Box::new(2)).unwrap_err();
        assert_eq!(*back, 2);
        // Freeing a slot re-enables pushing.
        assert_eq!(*d.pop_top().unwrap(), 0);
        d.push(Box::new(2)).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn steal_empty_reports_empty() {
        let d: StealDeque<i32> = StealDeque::with_capacity(4);
        assert!(matches!(d.steal(), Steal::Empty));
    }

    #[test]
    fn drop_frees_remaining_elements() {
        #[derive(Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let d = StealDeque::with_capacity(8);
            for _ in 0..5 {
                d.push(Box::new(Counted(Arc::clone(&drops)))).unwrap();
            }
            drop(d.pop()); // one explicit
        }
        assert_eq!(drops.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn concurrent_steals_conserve_elements() {
        // 2 thieves + the owner drain 10_000 elements; every element is
        // claimed exactly once (sum check) and none is lost.
        const N: u64 = 10_000;
        let d = Arc::new(StealDeque::with_capacity(16));
        let claimed = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let d = Arc::clone(&d);
                let claimed = Arc::clone(&claimed);
                let sum = Arc::clone(&sum);
                let done = Arc::clone(&done);
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            claimed.fetch_add(1, Ordering::SeqCst);
                            sum.fetch_add(*v, Ordering::SeqCst);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) && d.is_empty() {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for next in 0..N {
            let mut item = Box::new(next);
            loop {
                match d.push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        // Ring full: the owner drains one from its own
                        // bottom to make room, then retries the same box.
                        item = back;
                        if let Some(v) = d.pop() {
                            claimed.fetch_add(1, Ordering::SeqCst);
                            sum.fetch_add(*v, Ordering::SeqCst);
                        }
                    }
                }
            }
        }
        done.store(true, Ordering::SeqCst);
        for h in thieves {
            h.join().unwrap();
        }
        while let Some(v) = d.pop() {
            claimed.fetch_add(1, Ordering::SeqCst);
            sum.fetch_add(*v, Ordering::SeqCst);
        }
        assert_eq!(claimed.load(Ordering::SeqCst) as u64, N);
        assert_eq!(sum.load(Ordering::SeqCst), N * (N - 1) / 2);
    }
}
