//! The work-stealing dispatch substrate shared by the real executors.
//!
//! One [`NodeQueues`] per node replaces the old central
//! `Mutex<ReadyQueue>` + token channel: each worker lane owns a local
//! queue it pushes and pops without contention, the global
//! [`ReadyQueue`] survives only as the *injector* — the overflow and
//! external-release queue — and a worker that runs dry sweeps the other
//! lanes' queues as a thief, in a victim order drawn from a seeded
//! per-worker RNG so a fixed [`crate::RunConfig::steal_seed`] reproduces
//! the same victim sequence run over run.
//!
//! The local queue comes in two flavors, chosen by the selector's
//! [`SelectMode`]:
//!
//! * **Fifo / Lifo** — a lock-free bounded Chase–Lev [`StealDeque`];
//!   the owner pops the top (FIFO) or bottom (LIFO) end, thieves always
//!   steal the top (oldest) end. A full deque spills to the injector
//!   (counted as an overflow push).
//! * **Rank** — a per-lane `Mutex<ReadyQueue>` heap: rank order with
//!   FIFO-by-seq ties is preserved *per queue* (the PR 7 scheduler
//!   contract), which a lock-free ring cannot express; sharding the lock
//!   per lane keeps contention off the hot path, and a thief simply pops
//!   the victim's best-ranked task.
//!
//! Parking uses a `Condvar` gate: a producer pushes, then acquires the
//! gate to notify, while a consumer checks emptiness *while holding the
//! gate* before waiting — so a wakeup can never fall into the
//! check-then-wait window. The wait still carries a timeout so stall
//! detection and shutdown flags are observed even without a notify.
//!
//! Every lane keeps three cumulative counters — `steals`,
//! `steal_fails`, `overflow_pushes` — surfaced per node in
//! [`obs::LiveSample`] and as end-of-run metrics.

use crate::deque::{Steal, StealDeque};
use crate::pending::ReadyTask;
use crate::ready_queue::ReadyQueue;
use crate::scheduler::{SelectMode, TaskSelector};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as GateMutex};
use std::time::Duration;

/// Capacity of each worker's local deque before pushes spill to the
/// injector. Sized so a stencil wavefront per worker fits comfortably;
/// spilling is correct, just slower, so this is a performance knob, not
/// a correctness bound.
pub(crate) const LOCAL_QUEUE_CAP: usize = 256;

/// Cumulative per-lane dispatch counters (relaxed atomics: telemetry,
/// not synchronization).
#[derive(Default)]
pub(crate) struct LaneStats {
    /// Tasks this lane obtained from another lane's queue.
    pub steals: AtomicU64,
    /// Full sweeps (own queue + injector + every victim) that found
    /// nothing — the "no work anywhere" signal starvation attribution
    /// keys on.
    pub steal_fails: AtomicU64,
    /// Local pushes that found the deque full and spilled to the
    /// injector.
    pub overflow_pushes: AtomicU64,
}

/// Totals of the per-lane counters, for samplers and end-of-run metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StealTotals {
    pub steals: u64,
    pub steal_fails: u64,
    pub overflow_pushes: u64,
}

/// `xorshift64*` per-worker RNG for victim selection: deterministic for
/// a fixed `(seed, lane)`, decorrelated across lanes by a splitmix64
/// scramble of the lane index.
pub(crate) struct WorkerRng {
    state: u64,
}

impl WorkerRng {
    pub(crate) fn new(seed: u64, lane: u64) -> Self {
        // splitmix64 of seed ^ lane; never zero (xorshift fixpoint).
        let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        WorkerRng { state: z.max(1) }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

enum LocalQueue {
    Stealable(StealDeque<ReadyTask>),
    Ranked(Mutex<ReadyQueue>),
}

struct Lane {
    queue: LocalQueue,
    stats: LaneStats,
}

/// One node's dispatch state: per-lane local queues, the injector, and
/// the parking gate.
pub(crate) struct NodeQueues {
    lanes: Vec<Lane>,
    injector: Mutex<ReadyQueue>,
    mode: SelectMode,
    gate: GateMutex<()>,
    cv: Condvar,
}

impl NodeQueues {
    /// Queues for `lanes` workers consulting `selector`.
    pub(crate) fn new(selector: Arc<dyn TaskSelector>, lanes: usize) -> Self {
        let mode = selector.mode();
        let lanes = (0..lanes)
            .map(|_| Lane {
                queue: match mode {
                    SelectMode::Fifo | SelectMode::Lifo => {
                        LocalQueue::Stealable(StealDeque::with_capacity(LOCAL_QUEUE_CAP))
                    }
                    SelectMode::Rank => {
                        LocalQueue::Ranked(Mutex::new(ReadyQueue::new(Arc::clone(&selector))))
                    }
                },
                stats: LaneStats::default(),
            })
            .collect();
        NodeQueues {
            lanes,
            injector: Mutex::new(ReadyQueue::new(selector)),
            mode,
            gate: GateMutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Publish one queued-task wakeup. The gate acquisition orders the
    /// preceding push before the notify relative to a parking consumer
    /// (see the module docs).
    fn notify_one(&self) {
        let _g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_one();
    }

    /// Wake every parked worker (shutdown / final-task broadcast).
    pub(crate) fn wake_all(&self) {
        let _g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    /// A worker submits a task released by its own completion: lands in
    /// the lane's local queue, spilling to the injector when the deque
    /// is full.
    pub(crate) fn push_local(&self, lane: usize, task: ReadyTask) {
        match &self.lanes[lane].queue {
            LocalQueue::Stealable(d) => {
                if let Err(task) = d.push(Box::new(task)) {
                    self.lanes[lane]
                        .stats
                        .overflow_pushes
                        .fetch_add(1, Ordering::Relaxed);
                    self.injector.lock().push(*task);
                }
            }
            LocalQueue::Ranked(q) => q.lock().push(task),
        }
        self.notify_one();
    }

    /// An external release (root task, comm-thread delivery) lands in
    /// the injector.
    pub(crate) fn push_external(&self, task: ReadyTask) {
        self.injector.lock().push(task);
        self.notify_one();
    }

    /// `lane`'s next task: own queue, then the injector, then a steal
    /// sweep over the other lanes in RNG order. `None` after a full
    /// failed sweep (counted as a steal fail).
    pub(crate) fn next_task(&self, lane: usize, rng: &mut WorkerRng) -> Option<ReadyTask> {
        if let Some(t) = self.pop_own(lane) {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().pop() {
            return Some(t);
        }
        let n = self.lanes.len();
        if n > 1 {
            let offset = (rng.next() % (n as u64 - 1)) as usize;
            for i in 0..n - 1 {
                let victim = (lane + 1 + (offset + i) % (n - 1)) % n;
                if let Some(t) = self.steal_from(victim) {
                    self.lanes[lane]
                        .stats
                        .steals
                        .fetch_add(1, Ordering::Relaxed);
                    return Some(t);
                }
            }
        }
        self.lanes[lane]
            .stats
            .steal_fails
            .fetch_add(1, Ordering::Relaxed);
        None
    }

    fn pop_own(&self, lane: usize) -> Option<ReadyTask> {
        match &self.lanes[lane].queue {
            // FIFO pops the steal (oldest) end so dispatch order matches
            // the old central queue; LIFO pops the cache-warm bottom.
            LocalQueue::Stealable(d) => match self.mode {
                SelectMode::Lifo => d.pop().map(|b| *b),
                _ => d.pop_top().map(|b| *b),
            },
            LocalQueue::Ranked(q) => q.lock().pop(),
        }
    }

    fn steal_from(&self, victim: usize) -> Option<ReadyTask> {
        match &self.lanes[victim].queue {
            LocalQueue::Stealable(d) => loop {
                match d.steal() {
                    Steal::Success(t) => return Some(*t),
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => return None,
                }
            },
            LocalQueue::Ranked(q) => q.lock().pop(),
        }
    }

    /// Park until notified or `timeout`, re-checking emptiness under the
    /// gate so a concurrent push cannot be missed. Returns immediately
    /// when work is already visible.
    pub(crate) fn park(&self, timeout: Duration) {
        let guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        if self.len() > 0 {
            return;
        }
        let _ = self
            .cv
            .wait_timeout(guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
    }

    /// Tasks currently queued on this node (all local queues plus the
    /// injector) — the `ready_depth` gauge.
    pub(crate) fn len(&self) -> usize {
        let local: usize = self
            .lanes
            .iter()
            .map(|l| match &l.queue {
                LocalQueue::Stealable(d) => d.len(),
                LocalQueue::Ranked(q) => q.lock().len(),
            })
            .sum();
        local + self.injector.lock().len()
    }

    /// Cumulative steal/overflow counters summed over this node's lanes.
    pub(crate) fn totals(&self) -> StealTotals {
        let mut t = StealTotals::default();
        for l in &self.lanes {
            t.steals += l.stats.steals.load(Ordering::Relaxed);
            t.steal_fails += l.stats.steal_fails.load(Ordering::Relaxed);
            t.overflow_pushes += l.stats.overflow_pushes.load(Ordering::Relaxed);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FifoSelector, LifoSelector, StaticRanks};
    use crate::task::TaskKey;
    use std::collections::HashMap;

    fn task(i: i32) -> ReadyTask {
        ReadyTask {
            key: TaskKey::new(0, [i, 0, 0, 0]),
            inputs: Vec::new(),
        }
    }

    fn drain(q: &NodeQueues, lane: usize) -> Vec<i32> {
        let mut rng = WorkerRng::new(7, lane as u64);
        std::iter::from_fn(|| q.next_task(lane, &mut rng))
            .map(|t| t.key.params[0])
            .collect()
    }

    #[test]
    fn local_fifo_preserves_push_order() {
        let q = NodeQueues::new(Arc::new(FifoSelector), 1);
        for i in 0..5 {
            q.push_local(0, task(i));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(drain(&q, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn local_lifo_reverses_push_order() {
        let q = NodeQueues::new(Arc::new(LifoSelector), 1);
        for i in 0..5 {
            q.push_local(0, task(i));
        }
        assert_eq!(drain(&q, 0), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn ranked_lane_pops_by_rank_with_fifo_ties() {
        let table: HashMap<TaskKey, i64> = [(0, 0i64), (1, 5), (2, 0), (3, 5)]
            .into_iter()
            .map(|(i, r)| (TaskKey::new(0, [i, 0, 0, 0]), r))
            .collect();
        let q = NodeQueues::new(Arc::new(StaticRanks::new(table)), 1);
        for i in 0..4 {
            q.push_local(0, task(i));
        }
        assert_eq!(drain(&q, 0), vec![1, 3, 0, 2]);
    }

    #[test]
    fn empty_lane_steals_from_the_loaded_one() {
        let q = NodeQueues::new(Arc::new(FifoSelector), 4);
        for i in 0..8 {
            q.push_local(0, task(i));
        }
        let mut rng = WorkerRng::new(42, 3);
        let got = q.next_task(3, &mut rng).expect("steal finds work");
        // Steals take the victim's oldest task.
        assert_eq!(got.key.params[0], 0);
        assert_eq!(q.totals().steals, 1);
        assert_eq!(q.totals().steal_fails, 0);
    }

    #[test]
    fn failed_sweep_counts_a_steal_fail() {
        let q = NodeQueues::new(Arc::new(FifoSelector), 3);
        let mut rng = WorkerRng::new(1, 0);
        assert!(q.next_task(0, &mut rng).is_none());
        assert_eq!(q.totals().steal_fails, 1);
    }

    #[test]
    fn injector_feeds_any_lane() {
        let q = NodeQueues::new(Arc::new(FifoSelector), 2);
        q.push_external(task(9));
        let mut rng = WorkerRng::new(1, 1);
        assert_eq!(q.next_task(1, &mut rng).unwrap().key.params[0], 9);
    }

    #[test]
    fn overflow_spills_to_injector_and_nothing_is_lost() {
        let q = NodeQueues::new(Arc::new(FifoSelector), 1);
        let n = (LOCAL_QUEUE_CAP + 10) as i32;
        for i in 0..n {
            q.push_local(0, task(i));
        }
        assert_eq!(q.totals().overflow_pushes, 10);
        assert_eq!(q.len(), n as usize);
        let drained = drain(&q, 0);
        assert_eq!(drained.len(), n as usize);
        // Every task appears exactly once.
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn victim_order_is_seed_stable() {
        let order = |seed: u64| {
            let q = NodeQueues::new(Arc::new(FifoSelector), 8);
            // One task on every other lane; record which victim lane 0's
            // successive sweeps hit first.
            for lane in 1..8 {
                q.push_local(lane, task(lane as i32));
            }
            let mut rng = WorkerRng::new(seed, 0);
            std::iter::from_fn(|| q.next_task(0, &mut rng))
                .map(|t| t.key.params[0])
                .collect::<Vec<_>>()
        };
        assert_eq!(order(123), order(123), "same seed, same victim order");
        assert_eq!(order(123).len(), 7);
    }

    #[test]
    fn park_returns_promptly_when_work_is_queued() {
        let q = NodeQueues::new(Arc::new(FifoSelector), 1);
        q.push_external(task(0));
        let start = std::time::Instant::now();
        q.park(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
