//! The shared-memory executor: real threads, real task bodies, wall-clock
//! time.
//!
//! This is the runtime the paper's single-node experiments exercise
//! (Figure 6's tile-size tuning runs PaRSEC "on a single node (no network
//! communication)"). All tasks execute in one address space; inter-task
//! flows are `Arc` hand-offs through the activation table.
//!
//! The dispatch hot path is the work-stealing substrate in
//! `crate::dispatch`: each worker owns a bounded Chase–Lev deque
//! ([`crate::deque::StealDeque`]) it pushes its released successors into
//! and pops without locking; the global [`crate::ready_queue::ReadyQueue`]
//! survives only as the injector (root tasks, deque overflow), and a
//! worker that runs dry steals from its peers in a seeded-deterministic
//! victim order before parking. Activation counting goes through the
//! lock-sharded [`ShardedPending`] table: one completing task delivers
//! *all* its output flows with a single lock acquisition per touched
//! shard. Under the default FIFO policy with one worker the dispatch
//! order is exactly the old central-queue order; with several workers it
//! is seed-stable (same victim sequence under a fixed
//! [`RunConfig::steal_seed`]) but interleaving-dependent — see
//! `docs/EXECUTOR.md` for the full determinism contract.
//!
//! Every task execution is recorded as a span (worker index = lane, node
//! 0) through the `obs` recorder, and runtime events — including steal,
//! steal-fail and overflow counts — feed the metric registry and the
//! live samples, so a shared-memory run yields the same observability
//! data a simulated run does.

use crate::dispatch::{NodeQueues, StealTotals, WorkerRng};
use crate::exec::{assemble_report, ExecMode, ModeExt, RunConfig, RunReport};
use crate::pending::{Delivery, PendingTable, ReadyTask, ShardedPending};
use crate::scheduler::SchedContext;
use crate::task::Program;
use obs::{
    lane_busy_in_window, names, Live, LiveSample, LocalRecorder, Metrics, Recorder, WallClock,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Shared<'p> {
    program: &'p Program,
    pending: ShardedPending,
    queues: NodeQueues,
    completed: AtomicU64,
    done: AtomicBool,
    metrics: Metrics,
    clock: WallClock,
}

impl<'p> Shared<'p> {
    /// Execute one ready task on `lane` and deliver its outputs in one
    /// sharded batch; newly ready successors land in the lane's own
    /// deque. Returns true when this was the final task.
    fn run_task(&self, mut ready: ReadyTask, lane: u32, local: &LocalRecorder) -> bool {
        let class = self.program.graph.class(ready.key.class);
        let kind = self.program.graph.kind_of(ready.key);
        let start_ns = self.clock.now_ns();
        let outputs = class.execute(ready.key.params, &mut ready.inputs);
        local.task_instance(
            0,
            lane,
            kind,
            ready.key.instance_id(),
            start_ns,
            self.clock.now_ns(),
        );
        let batch: Vec<Delivery> = class
            .outputs(ready.key.params)
            .into_iter()
            .map(|dep| {
                let data = outputs
                    .get(dep.flow)
                    .unwrap_or_else(|| {
                        panic!(
                            "{:?}: execute produced {} flows but outputs reference flow {}",
                            ready.key,
                            outputs.len(),
                            dep.flow
                        )
                    })
                    .clone();
                Delivery {
                    consumer: dep.consumer,
                    slot: dep.slot,
                    data,
                }
            })
            .collect();
        for t in self.pending.deliver_batch(&self.program.graph, batch) {
            self.queues.push_local(lane as usize, t);
        }
        self.metrics.counter(names::TASKS_EXECUTED).inc();
        let redundant = class.redundant_flops(ready.key.params);
        if redundant > 0 {
            self.metrics.counter(names::REDUNDANT_FLOPS).add(redundant);
        }
        self.metrics
            .gauge(names::QUEUE_DEPTH)
            .set(self.queues.len() as i64);
        let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
        done == self.program.total_tasks
    }
}

fn worker(shared: &Shared<'_>, lane: u32, steal_seed: u64, local: &LocalRecorder) {
    let mut rng = WorkerRng::new(steal_seed, lane as u64);
    // If the graph deadlocks (inconsistent declarations), fail loudly
    // instead of hanging: ~10 s without any global progress trips a panic.
    let mut idle_rounds = 0u32;
    let mut last_seen = shared.completed.load(Ordering::Acquire);
    loop {
        if shared.done.load(Ordering::Acquire) {
            return;
        }
        if let Some(t) = shared.queues.next_task(lane as usize, &mut rng) {
            idle_rounds = 0;
            if shared.run_task(t, lane, local) {
                shared.done.store(true, Ordering::Release);
                shared.queues.wake_all();
            }
            continue;
        }
        shared.queues.park(Duration::from_millis(50));
        let now = shared.completed.load(Ordering::Acquire);
        if now == last_seen {
            idle_rounds += 1;
        } else {
            idle_rounds = 0;
            last_seen = now;
        }
        if idle_rounds > 200 {
            let stuck = shared.pending.stuck_tasks();
            panic!(
                "shared-memory run stalled: {}/{} tasks done, {} pending (first stuck: {:?})",
                now,
                shared.program.total_tasks,
                stuck.len(),
                stuck.first()
            );
        }
    }
}

/// Periodic live sampler: runs beside the workers inside the same scope,
/// publishing one [`LiveSample`] per tick from the collected span store
/// and the shared queues. Collection is safe concurrently with live
/// producers (the SPSC rings guarantee it); only the final `drain()` —
/// which happens after the scope joins — requires quiescence.
fn sampler(shared: &Shared<'_>, recorder: &Recorder, live: &Live, period_ns: u64, lanes: u32) {
    let period = Duration::from_nanos(period_ns.max(1));
    let slice = period.min(Duration::from_millis(5));
    let mut w0 = shared.clock.now_ns();
    let mut elapsed = Duration::ZERO;
    // Safety valve: if a worker panicked, `completed` never reaches the
    // total; stop sampling after ~15 s without progress so this thread
    // does not keep the scope from propagating the panic.
    let total = shared.program.total_tasks;
    let mut last_seen = 0u64;
    let mut last_progress = Instant::now();
    while shared.completed.load(Ordering::Acquire) < total {
        std::thread::sleep(slice);
        elapsed += slice;
        let done = shared.completed.load(Ordering::Acquire);
        if done != last_seen {
            last_seen = done;
            last_progress = Instant::now();
        } else if last_progress.elapsed() > Duration::from_secs(15) {
            return;
        }
        if elapsed < period {
            continue;
        }
        elapsed = Duration::ZERO;
        let w1 = shared.clock.now_ns();
        publish_sample(shared, recorder, live, lanes, w0, w1);
        w0 = w1;
    }
    // Tail window up to completion.
    publish_sample(shared, recorder, live, lanes, w0, shared.clock.now_ns());
}

fn publish_sample(
    shared: &Shared<'_>,
    recorder: &Recorder,
    live: &Live,
    lanes: u32,
    w0: u64,
    w1: u64,
) {
    if w1 <= w0 {
        return;
    }
    let lane_busy = recorder.with_collected(|spans| lane_busy_in_window(spans, 0, lanes, w0, w1));
    let StealTotals {
        steals,
        steal_fails,
        overflow_pushes,
    } = shared.queues.totals();
    live.publish(LiveSample {
        t_ns: w1,
        window_ns: w1 - w0,
        node: 0,
        lane_busy,
        ready_depth: shared.queues.len(),
        pending_tasks: shared.pending.len(),
        inflight_msgs: 0,
        inflight_bytes: 0,
        dropped_events: recorder.dropped(),
        steals,
        steal_fails,
        overflow_pushes,
    });
}

/// Run `program` under `cfg` on the shared-memory engine (entered through
/// [`crate::run`]).
///
/// Panics if the program is empty, has no roots, or deadlocks.
pub(crate) fn execute(program: &Program, cfg: &RunConfig) -> RunReport {
    let threads = cfg.threads;
    assert!(threads >= 1, "need at least one worker thread");
    assert!(program.total_tasks > 0, "empty program");
    assert!(!program.roots.is_empty(), "program has no root tasks");

    let recorder = cfg.recorder();
    let selector = cfg.scheduler.instance(&SchedContext {
        program,
        profile: cfg.profile.as_ref(),
        nodes: 1,
        lanes: threads as u32,
    });
    let shared = Shared {
        program,
        pending: ShardedPending::new(threads * 4),
        queues: NodeQueues::new(selector, threads),
        completed: AtomicU64::new(0),
        done: AtomicBool::new(false),
        metrics: Metrics::new(),
        clock: WallClock::start(),
    };

    for &root in &program.roots {
        shared
            .queues
            .push_external(PendingTable::root(&program.graph, root));
    }

    let live = cfg.live_board();
    let start = Instant::now();
    crossbeam::thread::scope(|s| {
        for lane in 0..threads {
            let shared = &shared;
            let local = recorder.local();
            let seed = cfg.steal_seed;
            s.spawn(move |_| worker(shared, lane as u32, seed, &local));
        }
        if let (Some(live), Some(period)) = (live.clone(), cfg.sample_period()) {
            let shared = &shared;
            let recorder = recorder.clone();
            s.spawn(move |_| sampler(shared, &recorder, &live, period, threads as u32));
        }
    })
    .expect("worker panicked");
    let wall_time = start.elapsed().as_secs_f64();
    let horizon_ns = shared.clock.now_ns();

    let completed = shared.completed.load(Ordering::Acquire);
    assert_eq!(
        completed, program.total_tasks,
        "run finished early: {completed}/{} tasks",
        program.total_tasks
    );
    assert!(
        shared.pending.is_empty(),
        "run finished with {} tasks still pending",
        shared.pending.len()
    );
    let flows_delivered = shared.pending.flows_delivered();
    shared
        .metrics
        .counter(names::ACTIVATIONS)
        .add(flows_delivered);
    let StealTotals {
        steals,
        steal_fails,
        overflow_pushes,
    } = shared.queues.totals();
    shared.metrics.counter(names::STEALS).add(steals);
    shared.metrics.counter(names::STEAL_FAILS).add(steal_fails);
    shared
        .metrics
        .counter(names::OVERFLOW_PUSHES)
        .add(overflow_pushes);

    assemble_report(
        cfg,
        ExecMode::SharedMemory,
        wall_time,
        horizon_ns,
        threads as u32,
        completed,
        &recorder,
        &shared.metrics,
        live.map(|l| l.history()).unwrap_or_default(),
        ModeExt::SharedMemory { flows_delivered },
    )
}

#[cfg(test)]
mod tests {
    use crate::exec::{run, RunConfig};
    use crate::task::testutil::ExplicitDag;
    use crate::task::{Program, TaskGraph, TaskKey};
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn chain_program(n: i32) -> Program {
        // 0 -> 1 -> 2 -> ... -> n-1
        let mut edges: Map<i32, Vec<(i32, usize)>> = Map::new();
        let mut indeg: Map<i32, usize> = Map::new();
        for i in 0..n - 1 {
            edges.insert(i, vec![(i + 1, 0)]);
            indeg.insert(i + 1, 1);
        }
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "chain".into(),
            edges,
            indeg,
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: n as u64,
        }
    }

    fn fan_program(width: i32) -> Program {
        // 0 fans out to 1..=width, all fan into width+1
        let sink = width + 1;
        let mut edges: Map<i32, Vec<(i32, usize)>> = Map::new();
        let mut indeg: Map<i32, usize> = Map::new();
        edges.insert(0, (1..=width).map(|i| (i, 0)).collect());
        for i in 1..=width {
            edges.insert(i, vec![(sink, (i - 1) as usize)]);
            indeg.insert(i, 1);
        }
        indeg.insert(sink, width as usize);
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "fan".into(),
            edges,
            indeg,
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: (width + 2) as u64,
        }
    }

    #[test]
    fn chain_completes_single_thread() {
        let p = chain_program(50);
        let r = run(&p, &RunConfig::shared_memory(1));
        assert_eq!(r.tasks_executed, 50);
        assert_eq!(r.flows_delivered(), Some(49));
        assert_eq!(r.counter(obs::names::ACTIVATIONS), 49);
    }

    #[test]
    fn chain_completes_many_threads() {
        let p = chain_program(100);
        let r = run(&p, &RunConfig::shared_memory(8));
        assert_eq!(r.tasks_executed, 100);
    }

    #[test]
    fn fan_out_fan_in_completes() {
        let p = fan_program(64);
        let r = run(&p, &RunConfig::shared_memory(4));
        assert_eq!(r.tasks_executed, 66);
        assert_eq!(r.flows_delivered(), Some(128));
    }

    #[test]
    fn repeated_runs_agree() {
        for _ in 0..5 {
            let p = fan_program(16);
            let r = run(&p, &RunConfig::shared_memory(3));
            assert_eq!(r.tasks_executed, 18);
        }
    }

    #[test]
    fn trace_spans_cover_every_task() {
        let p = fan_program(16);
        let r = run(&p, &RunConfig::shared_memory(3).with_trace());
        let trace = r.trace.unwrap();
        assert_eq!(trace.task_spans().count(), 18);
        assert!(trace
            .spans
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn steal_counters_reach_metrics_and_deque_spill_is_counted() {
        // A single worker with a fan wider than the local deque: the
        // overflow pushes must be visible in the metric snapshot, and
        // the run still executes every task exactly once.
        let width = (crate::dispatch::LOCAL_QUEUE_CAP + 50) as i32;
        let p = fan_program(width);
        let r = run(&p, &RunConfig::shared_memory(1));
        assert_eq!(r.tasks_executed, (width + 2) as u64);
        assert!(
            r.counter(obs::names::OVERFLOW_PUSHES) >= 50,
            "overflow pushes: {}",
            r.counter(obs::names::OVERFLOW_PUSHES)
        );
        // One worker has nobody to steal from.
        assert_eq!(r.counter(obs::names::STEALS), 0);
    }

    #[test]
    fn steal_seed_is_accepted_and_run_completes() {
        let p = fan_program(32);
        let r = run(&p, &RunConfig::shared_memory(4).with_steal_seed(0xDEC0DE));
        assert_eq!(r.tasks_executed, 34);
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_threads_rejected() {
        run(&chain_program(2), &RunConfig::shared_memory(0));
    }
}

#[cfg(test)]
mod failure_tests {
    use crate::exec::{run, RunConfig};
    use crate::task::{FlowData, OutputDep, Params, Program, TaskClass, TaskGraph, TaskKey};
    use std::sync::Arc;

    /// A class whose body panics on a chosen task.
    struct Exploding {
        bomb: i32,
    }

    impl TaskClass for Exploding {
        fn name(&self) -> &str {
            "exploding"
        }
        fn node_of(&self, _p: Params) -> u32 {
            0
        }
        fn activation_count(&self, p: Params) -> usize {
            usize::from(p[0] > 0)
        }
        fn num_output_flows(&self, p: Params) -> usize {
            usize::from(p[0] < 3)
        }
        fn outputs(&self, p: Params) -> Vec<OutputDep> {
            if p[0] < 3 {
                vec![OutputDep {
                    flow: 0,
                    consumer: TaskKey::new(0, [p[0] + 1, 0, 0, 0]),
                    slot: 0,
                }]
            } else {
                vec![]
            }
        }
        fn execute(&self, p: Params, _i: &mut [Option<FlowData>]) -> Vec<FlowData> {
            assert!(p[0] != self.bomb, "task body failure injected");
            vec![FlowData::sized(8); self.num_output_flows(p)]
        }
        fn output_bytes(&self, _p: Params, _f: usize) -> usize {
            8
        }
        fn cost(&self, _p: Params) -> f64 {
            1e-6
        }
    }

    fn chain(bomb: i32) -> Program {
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(Exploding { bomb }));
        Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: 4,
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn body_panic_fails_the_run_loudly() {
        let _ = run(&chain(2), &RunConfig::shared_memory(2));
    }

    #[test]
    fn clean_bodies_complete() {
        let r = run(&chain(-1), &RunConfig::shared_memory(2));
        assert_eq!(r.tasks_executed, 4);
    }

    /// A class that produces fewer flows than its outputs reference.
    struct ShortOutputs;
    impl TaskClass for ShortOutputs {
        fn name(&self) -> &str {
            "short"
        }
        fn node_of(&self, _p: Params) -> u32 {
            0
        }
        fn activation_count(&self, p: Params) -> usize {
            usize::from(p[0] > 0)
        }
        fn num_output_flows(&self, _p: Params) -> usize {
            1
        }
        fn outputs(&self, p: Params) -> Vec<OutputDep> {
            if p[0] == 0 {
                vec![OutputDep {
                    flow: 0,
                    consumer: TaskKey::new(0, [1, 0, 0, 0]),
                    slot: 0,
                }]
            } else {
                vec![]
            }
        }
        fn execute(&self, _p: Params, _i: &mut [Option<FlowData>]) -> Vec<FlowData> {
            Vec::new() // bug under test: declared one flow, produced none
        }
        fn output_bytes(&self, _p: Params, _f: usize) -> usize {
            8
        }
        fn cost(&self, _p: Params) -> f64 {
            1e-6
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn missing_output_flow_detected() {
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ShortOutputs));
        let p = Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: 2,
        };
        let _ = run(&p, &RunConfig::shared_memory(1));
    }
}
