//! The shared-memory executor: real threads, real task bodies, wall-clock
//! time.
//!
//! This is the runtime the paper's single-node experiments exercise
//! (Figure 6's tile-size tuning runs PaRSEC "on a single node (no network
//! communication)"). All tasks execute in one address space; inter-task
//! flows are `Arc` hand-offs through the activation table. Ready tasks
//! land in a shared [`ReadyQueue`] ordered by the configured
//! [`crate::Scheduler`]; workers block on an MPMC token channel and pop
//! the queue on wake-up, so each dispatch picks the best-ranked task
//! ready *at that moment* (dynamic list scheduling). Tasks here are
//! coarse-grained (hundreds of microseconds and up), so the extra lock
//! per dispatch is noise; under the default FIFO policy the behavior is
//! exactly the old channel order.
//!
//! Every task execution is recorded as a span (worker index = lane, node
//! 0) through the `obs` recorder, and runtime events feed the metric
//! registry, so a shared-memory run yields the same observability data a
//! simulated run does.

use crate::exec::{assemble_report, ExecMode, ModeExt, RunConfig, RunReport};
use crate::pending::{PendingTable, ReadyTask};
use crate::ready_queue::ReadyQueue;
use crate::scheduler::SchedContext;
use crate::task::Program;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use obs::{
    lane_busy_in_window, names, Live, LiveSample, LocalRecorder, Metrics, Recorder, WallClock,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

enum WorkItem {
    /// One ready task sits in the shared [`ReadyQueue`]; the woken worker
    /// pops whichever task the selector ranks highest right now.
    Token,
    Shutdown,
}

struct Shared<'p> {
    program: &'p Program,
    pending: Mutex<PendingTable>,
    ready: Mutex<ReadyQueue>,
    tx: Sender<WorkItem>,
    rx: Receiver<WorkItem>,
    completed: AtomicU64,
    metrics: Metrics,
    clock: WallClock,
}

impl<'p> Shared<'p> {
    /// Queue a ready task, then wake one worker. The push happens-before
    /// the token send, so a received token always finds a task to pop.
    fn enqueue(&self, task: ReadyTask) {
        self.ready.lock().push(task);
        self.tx.send(WorkItem::Token).expect("channel closed");
    }

    /// Execute one ready task and deliver its outputs; returns true when
    /// this was the final task.
    fn run_task(&self, mut ready: ReadyTask, lane: u32, local: &LocalRecorder) -> bool {
        let class = self.program.graph.class(ready.key.class);
        let kind = self.program.graph.kind_of(ready.key);
        let start_ns = self.clock.now_ns();
        let outputs = class.execute(ready.key.params, &mut ready.inputs);
        local.task_instance(
            0,
            lane,
            kind,
            ready.key.instance_id(),
            start_ns,
            self.clock.now_ns(),
        );
        for dep in class.outputs(ready.key.params) {
            let data = outputs
                .get(dep.flow)
                .unwrap_or_else(|| {
                    panic!(
                        "{:?}: execute produced {} flows but outputs reference flow {}",
                        ready.key,
                        outputs.len(),
                        dep.flow
                    )
                })
                .clone();
            let now_ready =
                self.pending
                    .lock()
                    .deliver(&self.program.graph, dep.consumer, dep.slot, data);
            if let Some(t) = now_ready {
                self.enqueue(t);
            }
        }
        self.metrics.counter(names::TASKS_EXECUTED).inc();
        let redundant = class.redundant_flops(ready.key.params);
        if redundant > 0 {
            self.metrics.counter(names::REDUNDANT_FLOPS).add(redundant);
        }
        self.metrics
            .gauge(names::QUEUE_DEPTH)
            .set(self.rx.len() as i64);
        let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
        done == self.program.total_tasks
    }
}

fn worker(
    rx: &Receiver<WorkItem>,
    shared: &Shared<'_>,
    threads: usize,
    lane: u32,
    local: &LocalRecorder,
) {
    // If the graph deadlocks (inconsistent declarations), fail loudly
    // instead of hanging: ~10 s without any global progress trips a panic.
    let mut idle_rounds = 0u32;
    let mut last_seen = shared.completed.load(Ordering::Acquire);
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(WorkItem::Token) => {
                idle_rounds = 0;
                let t = shared
                    .ready
                    .lock()
                    .pop()
                    .expect("token implies a queued task");
                if shared.run_task(t, lane, local) {
                    for _ in 0..threads {
                        shared.tx.send(WorkItem::Shutdown).expect("channel closed");
                    }
                }
            }
            Ok(WorkItem::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => {
                let now = shared.completed.load(Ordering::Acquire);
                if now == last_seen {
                    idle_rounds += 1;
                } else {
                    idle_rounds = 0;
                    last_seen = now;
                }
                if idle_rounds > 200 {
                    let stuck = shared.pending.lock().stuck_tasks();
                    panic!(
                        "shared-memory run stalled: {}/{} tasks done, {} pending (first stuck: {:?})",
                        now,
                        shared.program.total_tasks,
                        stuck.len(),
                        stuck.first()
                    );
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Periodic live sampler: runs beside the workers inside the same scope,
/// publishing one [`LiveSample`] per tick from the collected span store
/// and the shared queues. Collection is safe concurrently with live
/// producers (the SPSC rings guarantee it); only the final `drain()` —
/// which happens after the scope joins — requires quiescence.
fn sampler(shared: &Shared<'_>, recorder: &Recorder, live: &Live, period_ns: u64, lanes: u32) {
    let period = Duration::from_nanos(period_ns.max(1));
    let slice = period.min(Duration::from_millis(5));
    let mut w0 = shared.clock.now_ns();
    let mut elapsed = Duration::ZERO;
    // Safety valve: if a worker panicked, `completed` never reaches the
    // total; stop sampling after ~15 s without progress so this thread
    // does not keep the scope from propagating the panic.
    let total = shared.program.total_tasks;
    let mut last_seen = 0u64;
    let mut last_progress = Instant::now();
    while shared.completed.load(Ordering::Acquire) < total {
        std::thread::sleep(slice);
        elapsed += slice;
        let done = shared.completed.load(Ordering::Acquire);
        if done != last_seen {
            last_seen = done;
            last_progress = Instant::now();
        } else if last_progress.elapsed() > Duration::from_secs(15) {
            return;
        }
        if elapsed < period {
            continue;
        }
        elapsed = Duration::ZERO;
        let w1 = shared.clock.now_ns();
        publish_sample(shared, recorder, live, lanes, w0, w1);
        w0 = w1;
    }
    // Tail window up to completion.
    publish_sample(shared, recorder, live, lanes, w0, shared.clock.now_ns());
}

fn publish_sample(
    shared: &Shared<'_>,
    recorder: &Recorder,
    live: &Live,
    lanes: u32,
    w0: u64,
    w1: u64,
) {
    if w1 <= w0 {
        return;
    }
    let lane_busy = recorder.with_collected(|spans| lane_busy_in_window(spans, 0, lanes, w0, w1));
    live.publish(LiveSample {
        t_ns: w1,
        window_ns: w1 - w0,
        node: 0,
        lane_busy,
        ready_depth: shared.ready.lock().len(),
        pending_tasks: shared.pending.lock().len(),
        inflight_msgs: 0,
        inflight_bytes: 0,
        dropped_events: recorder.dropped(),
    });
}

/// Run `program` under `cfg` on the shared-memory engine (entered through
/// [`crate::run`]).
///
/// Panics if the program is empty, has no roots, or deadlocks.
pub(crate) fn execute(program: &Program, cfg: &RunConfig) -> RunReport {
    let threads = cfg.threads;
    assert!(threads >= 1, "need at least one worker thread");
    assert!(program.total_tasks > 0, "empty program");
    assert!(!program.roots.is_empty(), "program has no root tasks");

    let recorder = cfg.recorder();
    let selector = cfg.scheduler.instance(&SchedContext {
        program,
        profile: cfg.profile.as_ref(),
        nodes: 1,
        lanes: threads as u32,
    });
    let (tx, rx) = unbounded::<WorkItem>();
    let shared = Shared {
        program,
        pending: Mutex::new(PendingTable::new()),
        ready: Mutex::new(ReadyQueue::new(selector)),
        tx,
        rx: rx.clone(),
        completed: AtomicU64::new(0),
        metrics: Metrics::new(),
        clock: WallClock::start(),
    };

    for &root in &program.roots {
        shared.enqueue(PendingTable::root(&program.graph, root));
    }

    let live = cfg.live_board();
    let start = Instant::now();
    crossbeam::thread::scope(|s| {
        for lane in 0..threads {
            let rx = rx.clone();
            let shared = &shared;
            let local = recorder.local();
            s.spawn(move |_| worker(&rx, shared, threads, lane as u32, &local));
        }
        if let (Some(live), Some(period)) = (live.clone(), cfg.sample_period()) {
            let shared = &shared;
            let recorder = recorder.clone();
            s.spawn(move |_| sampler(shared, &recorder, &live, period, threads as u32));
        }
    })
    .expect("worker panicked");
    let wall_time = start.elapsed().as_secs_f64();
    let horizon_ns = shared.clock.now_ns();

    let completed = shared.completed.load(Ordering::Acquire);
    assert_eq!(
        completed, program.total_tasks,
        "run finished early: {completed}/{} tasks",
        program.total_tasks
    );
    let pending = shared.pending.into_inner();
    assert!(
        pending.is_empty(),
        "run finished with {} tasks still pending",
        pending.len()
    );
    let flows_delivered = pending.flows_delivered();
    shared
        .metrics
        .counter(names::ACTIVATIONS)
        .add(flows_delivered);

    assemble_report(
        cfg,
        ExecMode::SharedMemory,
        wall_time,
        horizon_ns,
        threads as u32,
        completed,
        &recorder,
        &shared.metrics,
        live.map(|l| l.history()).unwrap_or_default(),
        ModeExt::SharedMemory { flows_delivered },
    )
}

#[cfg(test)]
mod tests {
    use crate::exec::{run, RunConfig};
    use crate::task::testutil::ExplicitDag;
    use crate::task::{Program, TaskGraph, TaskKey};
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn chain_program(n: i32) -> Program {
        // 0 -> 1 -> 2 -> ... -> n-1
        let mut edges: Map<i32, Vec<(i32, usize)>> = Map::new();
        let mut indeg: Map<i32, usize> = Map::new();
        for i in 0..n - 1 {
            edges.insert(i, vec![(i + 1, 0)]);
            indeg.insert(i + 1, 1);
        }
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "chain".into(),
            edges,
            indeg,
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: n as u64,
        }
    }

    fn fan_program(width: i32) -> Program {
        // 0 fans out to 1..=width, all fan into width+1
        let sink = width + 1;
        let mut edges: Map<i32, Vec<(i32, usize)>> = Map::new();
        let mut indeg: Map<i32, usize> = Map::new();
        edges.insert(0, (1..=width).map(|i| (i, 0)).collect());
        for i in 1..=width {
            edges.insert(i, vec![(sink, (i - 1) as usize)]);
            indeg.insert(i, 1);
        }
        indeg.insert(sink, width as usize);
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "fan".into(),
            edges,
            indeg,
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: (width + 2) as u64,
        }
    }

    #[test]
    fn chain_completes_single_thread() {
        let p = chain_program(50);
        let r = run(&p, &RunConfig::shared_memory(1));
        assert_eq!(r.tasks_executed, 50);
        assert_eq!(r.flows_delivered(), Some(49));
        assert_eq!(r.counter(obs::names::ACTIVATIONS), 49);
    }

    #[test]
    fn chain_completes_many_threads() {
        let p = chain_program(100);
        let r = run(&p, &RunConfig::shared_memory(8));
        assert_eq!(r.tasks_executed, 100);
    }

    #[test]
    fn fan_out_fan_in_completes() {
        let p = fan_program(64);
        let r = run(&p, &RunConfig::shared_memory(4));
        assert_eq!(r.tasks_executed, 66);
        assert_eq!(r.flows_delivered(), Some(128));
    }

    #[test]
    fn repeated_runs_agree() {
        for _ in 0..5 {
            let p = fan_program(16);
            let r = run(&p, &RunConfig::shared_memory(3));
            assert_eq!(r.tasks_executed, 18);
        }
    }

    #[test]
    fn trace_spans_cover_every_task() {
        let p = fan_program(16);
        let r = run(&p, &RunConfig::shared_memory(3).with_trace());
        let trace = r.trace.unwrap();
        assert_eq!(trace.task_spans().count(), 18);
        assert!(trace
            .spans
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_threads_rejected() {
        run(&chain_program(2), &RunConfig::shared_memory(0));
    }
}

#[cfg(test)]
mod failure_tests {
    use crate::exec::{run, RunConfig};
    use crate::task::{FlowData, OutputDep, Params, Program, TaskClass, TaskGraph, TaskKey};
    use std::sync::Arc;

    /// A class whose body panics on a chosen task.
    struct Exploding {
        bomb: i32,
    }

    impl TaskClass for Exploding {
        fn name(&self) -> &str {
            "exploding"
        }
        fn node_of(&self, _p: Params) -> u32 {
            0
        }
        fn activation_count(&self, p: Params) -> usize {
            usize::from(p[0] > 0)
        }
        fn num_output_flows(&self, p: Params) -> usize {
            usize::from(p[0] < 3)
        }
        fn outputs(&self, p: Params) -> Vec<OutputDep> {
            if p[0] < 3 {
                vec![OutputDep {
                    flow: 0,
                    consumer: TaskKey::new(0, [p[0] + 1, 0, 0, 0]),
                    slot: 0,
                }]
            } else {
                vec![]
            }
        }
        fn execute(&self, p: Params, _i: &mut [Option<FlowData>]) -> Vec<FlowData> {
            assert!(p[0] != self.bomb, "task body failure injected");
            vec![FlowData::sized(8); self.num_output_flows(p)]
        }
        fn output_bytes(&self, _p: Params, _f: usize) -> usize {
            8
        }
        fn cost(&self, _p: Params) -> f64 {
            1e-6
        }
    }

    fn chain(bomb: i32) -> Program {
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(Exploding { bomb }));
        Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: 4,
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn body_panic_fails_the_run_loudly() {
        let _ = run(&chain(2), &RunConfig::shared_memory(2));
    }

    #[test]
    fn clean_bodies_complete() {
        let r = run(&chain(-1), &RunConfig::shared_memory(2));
        assert_eq!(r.tasks_executed, 4);
    }

    /// A class that produces fewer flows than its outputs reference.
    struct ShortOutputs;
    impl TaskClass for ShortOutputs {
        fn name(&self) -> &str {
            "short"
        }
        fn node_of(&self, _p: Params) -> u32 {
            0
        }
        fn activation_count(&self, p: Params) -> usize {
            usize::from(p[0] > 0)
        }
        fn num_output_flows(&self, _p: Params) -> usize {
            1
        }
        fn outputs(&self, p: Params) -> Vec<OutputDep> {
            if p[0] == 0 {
                vec![OutputDep {
                    flow: 0,
                    consumer: TaskKey::new(0, [1, 0, 0, 0]),
                    slot: 0,
                }]
            } else {
                vec![]
            }
        }
        fn execute(&self, _p: Params, _i: &mut [Option<FlowData>]) -> Vec<FlowData> {
            Vec::new() // bug under test: declared one flow, produced none
        }
        fn output_bytes(&self, _p: Params, _f: usize) -> usize {
            8
        }
        fn cost(&self, _p: Params) -> f64 {
            1e-6
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn missing_output_flow_detected() {
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ShortOutputs));
        let p = Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: 2,
        };
        let _ = run(&p, &RunConfig::shared_memory(1));
    }
}
