//! The multi-process-semantics executor: one real thread pool **per
//! simulated node**, with inter-node flows carried by real channels
//! through a dedicated communication thread per node — the paper's
//! process layout (workers + one comm thread), realized with actual
//! concurrency instead of virtual time.
//!
//! This executor exists to stress the distributed logic: message arrival
//! order is genuinely nondeterministic here, so a run that matches the
//! sequential reference bit for bit demonstrates that the dataflow
//! (activation counts, slots, CA exchange cadence) is correct under
//! races, not just under the simulator's deterministic schedule. It
//! measures wall-clock time but applies no performance model.
//!
//! Within a node, dispatch uses the same work-stealing substrate as the
//! shared-memory engine (`crate::dispatch`): per-worker Chase–Lev
//! deques, the node's [`crate::ready_queue::ReadyQueue`] demoted to
//! injector duty (roots, comm-thread deliveries, deque overflow), a
//! seeded steal sweep before parking, and a lock-sharded
//! [`ShardedPending`] activation table with batched per-shard delivery.
//! Steal/steal-fail/overflow counts are kept per node and surfaced in
//! the node's live samples and the run's metric snapshot.
//!
//! Task executions are recorded as spans (worker index = lane within the
//! node); the comm thread records its delivery processing on the node's
//! comm lane (lane = `threads_per_node`), mirroring the simulator's trace
//! layout.

use crate::dispatch::{NodeQueues, StealTotals, WorkerRng};
use crate::exec::{assemble_report, ExecMode, ModeExt, RunConfig, RunReport};
use crate::pending::{Delivery, PendingTable, ReadyTask, ShardedPending};
use crate::scheduler::{SchedContext, TaskSelector};
use crate::task::{FlowData, Program, TaskKey};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use obs::{
    lane_busy_in_window, names, Live, LiveSample, LocalRecorder, Metrics, Recorder, WallClock,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

enum CommItem {
    Flow {
        consumer: TaskKey,
        slot: usize,
        data: FlowData,
        /// Sending node, for the message span's `src`.
        src: u32,
        /// Kind tag of the producing task, stamped into the message span.
        kind: u32,
        /// Wall-clock instant the producer handed the flow to the channel
        /// — the message span's enqueue timestamp; the gap to the comm
        /// thread's dequeue is real channel queueing.
        enqueue_ns: u64,
    },
    Shutdown,
}

struct Node {
    pending: ShardedPending,
    queues: NodeQueues,
    comm_tx: Sender<CommItem>,
    comm_rx: Receiver<CommItem>,
}

struct Cluster<'p> {
    program: &'p Program,
    selector: Arc<dyn TaskSelector>,
    nodes: Vec<Node>,
    completed: AtomicU64,
    done: AtomicBool,
    cross_flows: AtomicU64,
    workers_per_node: usize,
    steal_seed: u64,
    metrics: Metrics,
    clock: WallClock,
}

impl<'p> Cluster<'p> {
    fn node_of(&self, key: TaskKey) -> usize {
        let n = self
            .selector
            .place(key)
            .map(|n| n as usize)
            .unwrap_or_else(|| self.program.graph.class(key.class).node_of(key.params) as usize);
        assert!(
            n < self.nodes.len(),
            "{key:?} placed on node {n} of {}",
            self.nodes.len()
        );
        n
    }

    /// Deliver a flow arriving from outside the node's worker pool (comm
    /// thread, roots): lands in the node's injector if it fires.
    fn deliver_external(&self, node: usize, consumer: TaskKey, slot: usize, data: FlowData) {
        let ready = self.nodes[node]
            .pending
            .deliver(&self.program.graph, consumer, slot, data);
        if let Some(t) = ready {
            self.nodes[node].queues.push_external(t);
        }
    }

    /// Execute one task on `node`; returns true when it was the last.
    /// Node-local output flows are delivered as one sharded batch and
    /// the released tasks land in this worker's own deque; cross-node
    /// flows are routed through the destination's comm thread.
    fn run_task(
        &self,
        node: usize,
        mut ready: ReadyTask,
        lane: u32,
        local: &LocalRecorder,
    ) -> bool {
        let class = self.program.graph.class(ready.key.class);
        let kind = self.program.graph.kind_of(ready.key);
        let start_ns = self.clock.now_ns();
        let outputs = class.execute(ready.key.params, &mut ready.inputs);
        local.task_instance(
            node as u32,
            lane,
            kind,
            ready.key.instance_id(),
            start_ns,
            self.clock.now_ns(),
        );
        let mut batch = Vec::new();
        for dep in class.outputs(ready.key.params) {
            let data = outputs
                .get(dep.flow)
                .unwrap_or_else(|| panic!("{:?}: missing output flow {}", ready.key, dep.flow))
                .clone();
            let dst = self.node_of(dep.consumer);
            if dst == node {
                batch.push(Delivery {
                    consumer: dep.consumer,
                    slot: dep.slot,
                    data,
                });
            } else {
                // cross-node: route through the destination's comm thread
                self.cross_flows.fetch_add(1, Ordering::Relaxed);
                self.metrics.counter(names::MESSAGES_SENT).inc();
                self.metrics
                    .counter(names::BYTES_SENT)
                    .add(data.bytes as u64);
                self.nodes[dst]
                    .comm_tx
                    .send(CommItem::Flow {
                        consumer: dep.consumer,
                        slot: dep.slot,
                        data,
                        src: node as u32,
                        kind,
                        enqueue_ns: self.clock.now_ns(),
                    })
                    .expect("comm channel closed");
            }
        }
        for t in self.nodes[node]
            .pending
            .deliver_batch(&self.program.graph, batch)
        {
            self.nodes[node].queues.push_local(lane as usize, t);
        }
        self.metrics.counter(names::TASKS_EXECUTED).inc();
        let redundant = class.redundant_flops(ready.key.params);
        if redundant > 0 {
            self.metrics.counter(names::REDUNDANT_FLOPS).add(redundant);
        }
        self.metrics
            .gauge(names::QUEUE_DEPTH)
            .set(self.nodes[node].queues.len() as i64);
        self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.program.total_tasks
    }

    /// Flip the done flag and wake every worker and comm thread.
    fn shutdown_all(&self) {
        self.done.store(true, Ordering::Release);
        for n in &self.nodes {
            n.queues.wake_all();
            let _ = n.comm_tx.send(CommItem::Shutdown);
        }
    }
}

fn worker(cluster: &Cluster<'_>, node: usize, lane: u32, local: &LocalRecorder) {
    // Decorrelate lanes across nodes: each (node, lane) pair gets its
    // own deterministic victim sequence.
    let mut rng = WorkerRng::new(
        cluster.steal_seed ^ (node as u64).wrapping_mul(0xA076_1D64_78BD_642F),
        lane as u64,
    );
    let queues = &cluster.nodes[node].queues;
    let mut idle = 0u32;
    let mut last_seen = cluster.completed.load(Ordering::Acquire);
    loop {
        if cluster.done.load(Ordering::Acquire) {
            return;
        }
        if let Some(t) = queues.next_task(lane as usize, &mut rng) {
            idle = 0;
            if cluster.run_task(node, t, lane, local) {
                cluster.shutdown_all();
            }
            continue;
        }
        queues.park(Duration::from_millis(50));
        let now = cluster.completed.load(Ordering::Acquire);
        if now == last_seen {
            idle += 1;
        } else {
            idle = 0;
            last_seen = now;
        }
        assert!(
            idle <= 200,
            "node {node} worker stalled at {}/{} tasks",
            cluster.completed.load(Ordering::Acquire),
            cluster.program.total_tasks
        );
    }
}

fn comm_thread(
    cluster: &Cluster<'_>,
    node: usize,
    local: &LocalRecorder,
    msg_local: &obs::MsgRecorder,
) {
    let rx = cluster.nodes[node].comm_rx.clone();
    let comm_lane = cluster.workers_per_node as u32;
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(CommItem::Flow {
                consumer,
                slot,
                data,
                src,
                kind,
                enqueue_ns,
            }) => {
                // Dequeue is the injection instant; delivery completes
                // once the flow has landed in the destination's pending
                // table. All three stamps share the cluster's wall clock,
                // so enqueue ≤ inject ≤ deliver holds by monotonicity.
                let start_ns = cluster.clock.now_ns();
                let bytes = data.bytes as u64;
                cluster.deliver_external(node, consumer, slot, data);
                let end_ns = cluster.clock.now_ns();
                local.comm(node as u32, comm_lane, start_ns, end_ns);
                msg_local.record(obs::MsgSpan {
                    src,
                    dst: node as u32,
                    kind,
                    bytes,
                    enqueue_ns,
                    inject_ns: start_ns.max(enqueue_ns),
                    deliver_ns: end_ns.max(enqueue_ns),
                });
            }
            Ok(CommItem::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {
                if cluster.completed.load(Ordering::Acquire) == cluster.program.total_tasks {
                    return;
                }
            }
        }
    }
}

/// Periodic live sampler for the cluster: one [`LiveSample`] per node per
/// tick. Per-node occupancy comes from the collected span store; queue
/// depths are probed from the node's queues (its comm queue length
/// doubles as "messages in flight" — a flow queued at the destination's
/// comm thread is the wire here), and the node's cumulative
/// steal/overflow counters ride along.
fn sampler(cluster: &Cluster<'_>, recorder: &Recorder, live: &Live, period_ns: u64) {
    let period = Duration::from_nanos(period_ns.max(1));
    let slice = period.min(Duration::from_millis(5));
    let lanes = cluster.workers_per_node as u32;
    let total = cluster.program.total_tasks;
    let mut w0 = cluster.clock.now_ns();
    let mut elapsed = Duration::ZERO;
    let mut last_seen = 0u64;
    let mut last_progress = Instant::now();
    while cluster.completed.load(Ordering::Acquire) < total {
        std::thread::sleep(slice);
        elapsed += slice;
        let done = cluster.completed.load(Ordering::Acquire);
        if done != last_seen {
            last_seen = done;
            last_progress = Instant::now();
        } else if last_progress.elapsed() > Duration::from_secs(15) {
            // A stalled or panicked run: stop sampling so the scope can
            // propagate the real failure.
            return;
        }
        if elapsed < period {
            continue;
        }
        elapsed = Duration::ZERO;
        let w1 = cluster.clock.now_ns();
        publish_samples(cluster, recorder, live, lanes, w0, w1);
        w0 = w1;
    }
    publish_samples(cluster, recorder, live, lanes, w0, cluster.clock.now_ns());
}

fn publish_samples(
    cluster: &Cluster<'_>,
    recorder: &Recorder,
    live: &Live,
    lanes: u32,
    w0: u64,
    w1: u64,
) {
    if w1 <= w0 {
        return;
    }
    let dropped_events = recorder.dropped();
    recorder.with_collected(|spans| {
        for (n, node) in cluster.nodes.iter().enumerate() {
            let StealTotals {
                steals,
                steal_fails,
                overflow_pushes,
            } = node.queues.totals();
            live.publish(LiveSample {
                t_ns: w1,
                window_ns: w1 - w0,
                node: n as u32,
                lane_busy: lane_busy_in_window(spans, n as u32, lanes, w0, w1),
                ready_depth: node.queues.len(),
                pending_tasks: node.pending.len(),
                inflight_msgs: node.comm_rx.len() as u64,
                inflight_bytes: 0,
                dropped_events,
                steals,
                steal_fails,
                overflow_pushes,
            });
        }
    });
}

/// Run `program` under `cfg` on the multi-process engine (entered through
/// [`crate::run`]): `cfg.nodes` node-local thread pools of `cfg.threads`
/// workers each, plus one comm thread per node.
pub(crate) fn execute(program: &Program, cfg: &RunConfig) -> RunReport {
    let nodes = cfg.nodes;
    let threads_per_node = cfg.threads;
    assert!(nodes >= 1, "need at least one node");
    assert!(threads_per_node >= 1, "need at least one worker per node");
    assert!(program.total_tasks > 0, "empty program");

    let recorder = cfg.recorder();
    let selector = cfg.scheduler.instance(&SchedContext {
        program,
        profile: cfg.profile.as_ref(),
        nodes,
        lanes: threads_per_node as u32,
    });
    let node_states: Vec<Node> = (0..nodes)
        .map(|_| {
            let (comm_tx, comm_rx) = unbounded();
            Node {
                pending: ShardedPending::new(threads_per_node * 4),
                queues: NodeQueues::new(Arc::clone(&selector), threads_per_node),
                comm_tx,
                comm_rx,
            }
        })
        .collect();
    let cluster = Cluster {
        program,
        selector,
        nodes: node_states,
        completed: AtomicU64::new(0),
        done: AtomicBool::new(false),
        cross_flows: AtomicU64::new(0),
        workers_per_node: threads_per_node,
        steal_seed: cfg.steal_seed,
        metrics: Metrics::new(),
        clock: WallClock::start(),
    };

    for &root in &program.roots {
        let node = cluster.node_of(root);
        cluster.nodes[node]
            .queues
            .push_external(PendingTable::root(&program.graph, root));
    }

    let live = cfg.live_board();
    let start = Instant::now();
    crossbeam::thread::scope(|s| {
        for node in 0..nodes as usize {
            for lane in 0..threads_per_node {
                let cluster = &cluster;
                let local = recorder.local();
                s.spawn(move |_| worker(cluster, node, lane as u32, &local));
            }
            let cluster = &cluster;
            let local = recorder.local();
            let msg_local = recorder.msg_local();
            s.spawn(move |_| comm_thread(cluster, node, &local, &msg_local));
        }
        if let (Some(live), Some(period)) = (live.clone(), cfg.sample_period()) {
            let cluster = &cluster;
            let recorder = recorder.clone();
            s.spawn(move |_| sampler(cluster, &recorder, &live, period));
        }
    })
    .expect("node thread panicked");
    let wall_time = start.elapsed().as_secs_f64();
    let horizon_ns = cluster.clock.now_ns();

    let completed = cluster.completed.load(Ordering::Acquire);
    assert_eq!(
        completed, program.total_tasks,
        "run finished early: {completed}/{}",
        program.total_tasks
    );
    let activations: u64 = cluster
        .nodes
        .iter()
        .map(|n| n.pending.flows_delivered())
        .sum();
    cluster.metrics.counter(names::ACTIVATIONS).add(activations);
    let totals =
        cluster
            .nodes
            .iter()
            .map(|n| n.queues.totals())
            .fold(StealTotals::default(), |a, b| StealTotals {
                steals: a.steals + b.steals,
                steal_fails: a.steal_fails + b.steal_fails,
                overflow_pushes: a.overflow_pushes + b.overflow_pushes,
            });
    cluster.metrics.counter(names::STEALS).add(totals.steals);
    cluster
        .metrics
        .counter(names::STEAL_FAILS)
        .add(totals.steal_fails);
    cluster
        .metrics
        .counter(names::OVERFLOW_PUSHES)
        .add(totals.overflow_pushes);

    assemble_report(
        cfg,
        ExecMode::MultiProcess,
        wall_time,
        horizon_ns,
        threads_per_node as u32,
        completed,
        &recorder,
        &cluster.metrics,
        live.map(|l| l.history()).unwrap_or_default(),
        ModeExt::MultiProcess {
            cross_node_flows: cluster.cross_flows.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::DtdBuilder;
    use crate::exec::{run, RunConfig};

    fn cross_flows(r: &RunReport) -> u64 {
        match r.ext {
            ModeExt::MultiProcess { cross_node_flows } => cross_node_flows,
            _ => panic!("wrong ext"),
        }
    }

    #[test]
    fn cross_node_chain_completes() {
        let mut b = DtdBuilder::new();
        let mut prev = b.insert(0, 0.0, &[]);
        for i in 1..40 {
            prev = b.insert(i % 4, 0.0, &[prev]);
        }
        let p = b.build();
        let r = run(&p, &RunConfig::multi_process(4, 2));
        assert_eq!(r.tasks_executed, 40);
        // node changes 3 out of every 4 hops
        assert!(cross_flows(&r) >= 29, "{}", cross_flows(&r));
        assert_eq!(r.counter(obs::names::MESSAGES_SENT), cross_flows(&r));
    }

    #[test]
    fn single_node_has_no_cross_flows() {
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 0.0, &[]);
        for _ in 0..10 {
            let _ = b.insert(0, 0.0, &[root]);
        }
        let p = b.build();
        let r = run(&p, &RunConfig::multi_process(1, 3));
        assert_eq!(r.tasks_executed, 11);
        assert_eq!(cross_flows(&r), 0);
        assert_eq!(r.counter(obs::names::BYTES_SENT), 0);
    }

    #[test]
    fn wide_cross_node_fan_completes_repeatedly() {
        for _ in 0..5 {
            let mut b = DtdBuilder::new();
            let root = b.insert(0, 0.0, &[]);
            let mids: Vec<_> = (0..32).map(|i| b.insert(i % 4, 0.0, &[root])).collect();
            let _sink = b.insert(3, 0.0, &mids);
            let p = b.build();
            let r = run(&p, &RunConfig::multi_process(4, 2));
            assert_eq!(r.tasks_executed, 34);
        }
    }

    #[test]
    fn trace_places_tasks_on_their_nodes() {
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 0.0, &[]);
        let mids: Vec<_> = (0..8).map(|i| b.insert(i % 2, 0.0, &[root])).collect();
        let _sink = b.insert(0, 0.0, &mids);
        let p = b.build();
        let r = run(&p, &RunConfig::multi_process(2, 2).with_trace());
        let trace = r.trace.unwrap();
        assert_eq!(trace.task_spans().count(), 10);
        assert_eq!(trace.nodes(), vec![0, 1]);
        // comm spans live on the comm lane
        assert!(trace
            .spans
            .iter()
            .filter(|s| s.kind == obs::KIND_COMM)
            .all(|s| s.lane == 2));
    }

    #[test]
    fn cross_node_flows_trace_msg_spans_with_ordered_stamps() {
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 0.0, &[]);
        let mids: Vec<_> = (0..8).map(|i| b.insert(i % 2, 0.0, &[root])).collect();
        let _sink = b.insert(0, 0.0, &mids);
        let p = b.build();
        let r = run(&p, &RunConfig::multi_process(2, 2).with_trace());
        let cross = cross_flows(&r);
        let bytes_sent = r.counter(obs::names::BYTES_SENT);
        let trace = r.trace.unwrap();
        // Every cross-node flow became exactly one message span.
        assert_eq!(trace.msgs.len() as u64, cross);
        assert!(!trace.msgs.is_empty(), "diamond over 2 nodes crosses");
        for m in &trace.msgs {
            assert_ne!(m.src, m.dst, "only cross-node flows are messages");
            assert!(m.dst < 2);
            assert!(m.inject_ns >= m.enqueue_ns);
            assert!(m.deliver_ns >= m.inject_ns);
            assert!(m.bytes > 0);
        }
        // The matrix totals agree with the engine's byte counter.
        let matrix = trace.comm_matrix();
        assert_eq!(matrix.total_messages(), cross);
        assert_eq!(matrix.total_bytes(), bytes_sent);
    }

    #[test]
    fn steal_counters_survive_to_the_snapshot() {
        // Wide fan on one node with several workers: stealing is the
        // only way idle lanes acquire work released by the root's lane,
        // so the counters must be present (possibly zero steals if one
        // lane drains everything, but the keys must exist).
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 0.0, &[]);
        let mids: Vec<_> = (0..64).map(|_| b.insert(0, 1e-5, &[root])).collect();
        let _sink = b.insert(0, 0.0, &mids);
        let p = b.build();
        let r = run(&p, &RunConfig::multi_process(1, 4));
        assert_eq!(r.tasks_executed, 66);
        assert!(r.metrics.counters.contains_key(obs::names::STEALS));
        assert!(r.metrics.counters.contains_key(obs::names::STEAL_FAILS));
        assert!(r.metrics.counters.contains_key(obs::names::OVERFLOW_PUSHES));
    }
}
