//! Post-run trace analysis: the machinery behind the paper's Figure 10
//! (per-node Gantt data, occupancy, and per-kind kernel-time statistics).
//!
//! The numeric digests are computed by `obs::fig10`; this module is a
//! thin consumer that keeps the legacy millisecond/second units and adds
//! the terminal-facing Gantt renderers. Everything operates on the
//! canonical [`obs::Trace`]; [`to_obs_trace`] converts the simulator's
//! legacy [`TraceBuffer`] when needed.

use desim::TraceBuffer;
use serde::Serialize;

/// Per-kind statistics of one node's trace.
#[derive(Debug, Clone, Serialize)]
pub struct KindReport {
    /// Trace kind tag.
    pub kind: u32,
    /// Number of spans of this kind.
    pub count: usize,
    /// Median span duration, milliseconds.
    pub median_ms: f64,
    /// Mean span duration, milliseconds.
    pub mean_ms: f64,
    /// Total busy time of this kind, seconds.
    pub total_s: f64,
}

/// A Figure 10-style digest of one node's execution.
#[derive(Debug, Clone, Serialize)]
pub struct NodeProfile {
    /// The node rank.
    pub node: u32,
    /// Worker-lane occupancy in `[0, 1]` over the horizon.
    pub occupancy: f64,
    /// Per-kind statistics, ordered by kind tag.
    pub kinds: Vec<KindReport>,
}

/// Convert a virtual-time [`TraceBuffer`] into an `obs` trace (same span
/// layout; virtual nanoseconds become the span timestamps).
pub fn to_obs_trace(trace: &TraceBuffer) -> obs::Trace {
    let mut out = obs::Trace::default();
    out.spans
        .extend(trace.spans().iter().map(|s| obs::SpanRecord {
            node: s.node,
            lane: s.lane,
            kind: s.kind,
            start_ns: s.start.as_nanos(),
            end_ns: s.end.as_nanos(),
            task: obs::SpanRecord::NO_TASK,
        }));
    out
}

/// Analyze one node of a trace over `lanes` worker lanes up to
/// `horizon_ns` (nanoseconds on the trace's clock, wall or virtual).
pub fn profile_node(trace: &obs::Trace, node: u32, lanes: u32, horizon_ns: u64) -> NodeProfile {
    let digest = obs::fig10::analyze_node(trace, node, lanes, horizon_ns);
    NodeProfile {
        node,
        occupancy: digest.occupancy,
        kinds: digest
            .kinds
            .into_iter()
            .map(|k| KindReport {
                kind: k.kind,
                count: k.count,
                median_ms: k.median_ns / 1e6,
                mean_ms: k.mean_ns / 1e6,
                total_s: k.total_ns as f64 / 1e9,
            })
            .collect(),
    }
}

/// Render one node's spans as rows suitable for a Gantt plot: one line per
/// span, `lane start_ms end_ms kind`. Sorted by lane then start.
pub fn gantt_rows(trace: &obs::Trace, node: u32) -> Vec<String> {
    let mut spans: Vec<_> = trace.node_spans(node).collect();
    spans.sort_by_key(|s| (s.lane, s.start_ns));
    spans
        .iter()
        .map(|s| {
            format!(
                "{} {:.3} {:.3} {}",
                s.lane,
                s.start_ns as f64 / 1e6,
                s.end_ns as f64 / 1e6,
                s.kind
            )
        })
        .collect()
}

/// Render one node's trace as an ASCII Gantt chart, `width` characters
/// wide: one row per lane, `.` for idle and a kind-specific glyph for busy
/// (`#` kind 0, `B` kind 1, `I` kind 2, `C` for the comm kind 1000, `?`
/// otherwise) — a terminal rendition of the paper's Figure 10.
pub fn ascii_gantt(
    trace: &obs::Trace,
    node: u32,
    lanes: u32,
    horizon_ns: u64,
    width: usize,
) -> Vec<String> {
    assert!(width > 0, "gantt width must be positive");
    let glyph = |kind: u32| match kind {
        0 => '#',
        1 => 'B',
        2 => 'I',
        obs::KIND_COMM => 'C',
        _ => '?',
    };
    let span_ns = horizon_ns.max(1);
    let mut rows = vec![vec!['.'; width]; lanes as usize + 1];
    for s in trace.node_spans(node) {
        let lane = (s.lane as usize).min(lanes as usize);
        let from = (s.start_ns as u128 * width as u128 / span_ns as u128) as usize;
        let to = (s.end_ns as u128 * width as u128 / span_ns as u128) as usize;
        for cell in rows[lane][from.min(width - 1)..=to.min(width - 1)].iter_mut() {
            *cell = glyph(s.kind);
        }
    }
    rows.into_iter()
        .enumerate()
        .map(|(lane, cells)| {
            let label = if lane == lanes as usize {
                "comm".to_string()
            } else {
                format!("{lane:>4}")
            };
            format!("{label} |{}|", cells.into_iter().collect::<String>())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{Span, VirtualTime};

    fn trace() -> obs::Trace {
        let mut t = TraceBuffer::new();
        // node 0: lane 0 busy [0, 10ms) kind 0, lane 1 busy [0, 5ms) kind 1
        t.push(Span {
            node: 0,
            lane: 0,
            kind: 0,
            start: VirtualTime(0),
            end: VirtualTime(10_000_000),
        });
        t.push(Span {
            node: 0,
            lane: 1,
            kind: 1,
            start: VirtualTime(0),
            end: VirtualTime(5_000_000),
        });
        t.push(Span {
            node: 1,
            lane: 0,
            kind: 0,
            start: VirtualTime(0),
            end: VirtualTime(1_000_000),
        });
        to_obs_trace(&t)
    }

    #[test]
    fn profile_separates_kinds() {
        let p = profile_node(&trace(), 0, 2, 10_000_000);
        assert_eq!(p.kinds.len(), 2);
        assert_eq!(p.kinds[0].kind, 0);
        assert!((p.kinds[0].median_ms - 10.0).abs() < 1e-9);
        assert_eq!(p.kinds[1].count, 1);
        assert!((p.occupancy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gantt_rows_sorted_by_lane() {
        let rows = gantt_rows(&trace(), 0);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("0 "));
        assert!(rows[1].starts_with("1 "));
        assert_eq!(rows[0], "0 0.000 10.000 0");
    }

    #[test]
    fn ascii_gantt_renders_lanes_and_comm() {
        let mut t = trace();
        t.spans.push(obs::SpanRecord {
            node: 0,
            lane: 2, // the comm lane for lanes = 2
            kind: obs::KIND_COMM,
            start_ns: 2_000_000,
            end_ns: 8_000_000,
            task: obs::SpanRecord::NO_TASK,
        });
        let rows = ascii_gantt(&t, 0, 2, 10_000_000, 20);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].starts_with("   0 |####"));
        assert!(rows[1].contains('#') || rows[1].contains('B'));
        assert!(rows[2].starts_with("comm"));
        assert!(rows[2].contains('C'));
        // lane 1 idle in the second half
        assert!(rows[1].ends_with(".|"));
    }

    #[test]
    fn other_nodes_excluded() {
        let p = profile_node(&trace(), 1, 2, 10_000_000);
        assert_eq!(p.kinds.len(), 1);
        assert_eq!(p.kinds[0].count, 1);
    }
}
