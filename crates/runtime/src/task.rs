//! The parameterized task model: PaRSEC's Parameterized Task Graph (PTG)
//! distilled to its load-bearing parts.
//!
//! A *task class* is a family of tasks indexed by up to four integer
//! parameters (for the stencil: tile column, tile row, iteration). The
//! class answers, **as pure functions of the parameters**:
//!
//! * which node owns (executes) the task,
//! * how many dataflow inputs it waits for and how many input slots it has,
//! * which successor tasks consume each of its outputs,
//! * what the task body does, and what it costs.
//!
//! The runtime never materializes the whole DAG: tasks are *discovered*
//! when their first input arrives and *fire* when the activation count
//! reaches zero — exactly PaRSEC's dynamic unfolding of a JDF.

use netsim::NodeId;
use std::fmt;
use std::sync::Arc;

/// Task parameters: a fixed-size vector, unused trailing entries zero.
pub type Params = [i32; 4];

/// Identifier of a task class within its [`TaskGraph`].
pub type ClassId = u16;

/// A specific task instance: class plus parameters.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskKey {
    /// Index of the class in the graph.
    pub class: ClassId,
    /// The instance parameters.
    pub params: Params,
}

impl TaskKey {
    /// Construct a key.
    pub fn new(class: ClassId, params: Params) -> Self {
        TaskKey { class, params }
    }

    /// Stable 64-bit id of this task instance: an FNV-1a hash over the
    /// class id and parameters. Executors stamp it into trace spans
    /// (`obs::SpanRecord::task`) and analysis joins those spans back to
    /// the same key in an [`crate::UnfoldedDag`] — both sides derive the
    /// id from this one function, so the join is exact. Collisions are
    /// astronomically unlikely at the ≤ 10⁷-task scales this workspace
    /// enumerates; [`obs::SpanRecord::NO_TASK`] (`u64::MAX`) is avoided.
    pub fn instance_id(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
        };
        mix(self.class as u64);
        for p in self.params {
            mix(p as u32 as u64);
        }
        if h == obs::SpanRecord::NO_TASK {
            h = 0;
        }
        h
    }
}

impl fmt::Debug for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T{}({},{},{},{})",
            self.class, self.params[0], self.params[1], self.params[2], self.params[3]
        )
    }
}

/// Data travelling along one flow edge: a logical byte count (always
/// present, used by the communication cost model) and optionally the actual
/// values (present when the run executes task bodies).
#[derive(Clone, Default)]
pub struct FlowData {
    /// Bytes this flow occupies on the wire.
    pub bytes: usize,
    /// The payload, when the simulation carries real data.
    pub data: Option<Arc<Vec<f64>>>,
}

impl FlowData {
    /// A size-only flow (performance simulation).
    pub fn sized(bytes: usize) -> Self {
        FlowData { bytes, data: None }
    }

    /// A flow carrying real values; the wire size is `8 × len`.
    pub fn values(v: Vec<f64>) -> Self {
        FlowData {
            bytes: v.len() * std::mem::size_of::<f64>(),
            data: Some(Arc::new(v)),
        }
    }

    /// Borrow the payload values; panics if this is a size-only flow.
    pub fn expect_values(&self) -> &[f64] {
        self.data
            .as_deref()
            .map(Vec::as_slice)
            .expect("flow carries no payload (performance-only run?)")
    }
}

impl fmt::Debug for FlowData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FlowData({}B{})",
            self.bytes,
            if self.data.is_some() { ", +data" } else { "" }
        )
    }
}

/// An axis-aligned rectangle of grid cells, `rows × cols` starting at
/// `(row, col)`. Coordinates are whatever global frame the application
/// chooses (the stencil uses global grid coordinates); the analyzer only
/// intersects rectangles within one [`WriteRegion::space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// First row covered.
    pub row: i64,
    /// First column covered.
    pub col: i64,
    /// Number of rows covered.
    pub rows: u32,
    /// Number of columns covered.
    pub cols: u32,
}

impl Rect {
    /// Construct a rectangle.
    pub fn new(row: i64, col: i64, rows: u32, cols: u32) -> Self {
        Rect {
            row,
            col,
            rows,
            cols,
        }
    }

    /// True when the two rectangles share at least one cell.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.rows > 0
            && self.cols > 0
            && other.rows > 0
            && other.cols > 0
            && self.row < other.row + other.rows as i64
            && other.row < self.row + self.rows as i64
            && self.col < other.col + other.cols as i64
            && other.col < self.col + self.cols as i64
    }

    /// Number of cells covered.
    pub fn area(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }
}

/// The memory region a task writes, for static write-race analysis: a
/// rectangle within a named address space. Two tasks race when they share
/// a `space`, their rectangles intersect, and the DAG orders them neither
/// way. Distinct spaces never alias — the stencil uses one space per tile
/// buffer, so a boundary tile's redundant halo update (which writes its
/// own private ghost ring, not the neighbour's cells) does not race with
/// the neighbour's update of the same global coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteRegion {
    /// The address space (e.g. a tile-buffer id) the rectangle lives in.
    pub space: u64,
    /// The written rectangle.
    pub rect: Rect,
}

/// A set of cells a task *reads* (or a flow *delivers*), for static
/// region-dataflow analysis: one or more rectangles within a named address
/// space, the read-side counterpart of [`WriteRegion`]. A read footprint
/// is usually not one rectangle — a 5-point stencil reads a cross-shaped
/// neighbourhood — so this carries a list; the analyzer unions them.
///
/// Three [`TaskClass`] methods speak this vocabulary:
/// [`TaskClass::read_region`] (what the body consumes before writing),
/// [`TaskClass::delivered_region`] (which cells of the *consumer's* space
/// an output flow's payload makes valid), and
/// [`TaskClass::pinned_region`] (time-invariant cells such as a Dirichlet
/// boundary ring that are valid at every iteration without being
/// rewritten).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRegion {
    /// The address space (e.g. a tile-buffer id) the rectangles live in.
    pub space: u64,
    /// The covered rectangles; may overlap, the analyzer unions them.
    pub rects: Vec<Rect>,
}

impl ReadRegion {
    /// A region of one rectangle.
    pub fn single(space: u64, rect: Rect) -> Self {
        ReadRegion {
            space,
            rects: vec![rect],
        }
    }

    /// Total cells covered, counting overlaps once is the analyzer's job;
    /// this is the naive per-rect sum (an upper bound).
    pub fn area_upper_bound(&self) -> u64 {
        self.rects.iter().map(Rect::area).sum()
    }
}

/// One consumer of one of a task's outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputDep {
    /// Which of the producer's output flows feeds this consumer.
    pub flow: usize,
    /// The consuming task.
    pub consumer: TaskKey,
    /// Which input slot of the consumer receives the flow.
    pub slot: usize,
}

/// A family of tasks sharing structure; the application implements this.
pub trait TaskClass: Send + Sync {
    /// Human-readable class name (used in traces and errors).
    fn name(&self) -> &str;

    /// The node that executes task `p` (owner-computes placement).
    fn node_of(&self, p: Params) -> NodeId;

    /// Number of dataflow inputs task `p` waits for before it may fire.
    /// Must equal the number of `OutputDep`s across all predecessors that
    /// name this task as consumer ([`crate::unfold`] checks this).
    fn activation_count(&self, p: Params) -> usize;

    /// Total number of input slots of task `p` (≥ `activation_count`;
    /// extra slots stay empty and may be used by the body for defaults).
    fn num_input_slots(&self, p: Params) -> usize {
        self.activation_count(p)
    }

    /// Number of output flows task `p` produces.
    fn num_output_flows(&self, p: Params) -> usize;

    /// Consumers of task `p`'s outputs.
    fn outputs(&self, p: Params) -> Vec<OutputDep>;

    /// The task body: consume inputs, produce one `FlowData` per output
    /// flow (indexed by flow id). Called only when the run executes bodies;
    /// performance-only runs use [`TaskClass::output_bytes`] instead.
    fn execute(&self, p: Params, inputs: &mut [Option<FlowData>]) -> Vec<FlowData>;

    /// Wire size of output flow `flow` of task `p`, for performance-only
    /// runs where `execute` is skipped.
    fn output_bytes(&self, p: Params, flow: usize) -> usize;

    /// Service time of task `p` on one worker core, in seconds (used by the
    /// simulated executor; the real executor measures instead).
    fn cost(&self, p: Params) -> f64;

    /// Trace kind tag (e.g. interior vs boundary task); defaults to the
    /// class id assigned at registration via [`TaskGraph::add_class`].
    fn kind(&self, p: Params) -> u32 {
        let _ = p;
        u32::MAX // replaced by class id when MAX
    }

    /// Scheduling priority (higher runs first under
    /// [`crate::scheduler::SchedulerPolicy::Priority`]). PaRSEC codes
    /// typically raise the priority of tasks whose outputs feed remote
    /// consumers, so communication starts as early as possible.
    fn priority(&self, p: Params) -> i32 {
        let _ = p;
        0
    }

    /// The region task `p` writes, for static write-race analysis; `None`
    /// (the default) means "writes nothing shared" and exempts the task
    /// from the race check.
    fn write_region(&self, p: Params) -> Option<WriteRegion> {
        let _ = p;
        None
    }

    /// The region task `p` *reads* before (or while) writing, for the
    /// static halo-coverage proof; `None` (the default) exempts the task.
    /// Declared reads must be covered — by a same-space predecessor's
    /// [`TaskClass::write_region`], an in-edge's
    /// [`TaskClass::delivered_region`], or the task's own
    /// [`TaskClass::pinned_region`] — before the task can honestly run.
    fn read_region(&self, p: Params) -> Option<ReadRegion> {
        let _ = p;
        None
    }

    /// The cells of the **consumer's** address space that the payload of
    /// output flow `flow` of task `p` makes valid on arrival (e.g. the
    /// ghost strip a halo message fills). `None` (the default) exempts the
    /// edge from both the coverage contribution and the dead-transfer
    /// check. The declared area should match
    /// [`TaskClass::output_bytes`] — the analyzer pro-rates wasted bytes
    /// over the declared cells.
    fn delivered_region(&self, p: Params, flow: usize) -> Option<ReadRegion> {
        let _ = (p, flow);
        None
    }

    /// Cells of task `p`'s space that hold *time-invariant* values — a
    /// Dirichlet boundary ring, immutable coefficients — and are therefore
    /// valid for every read without ever being rewritten. `None` (the
    /// default) declares no such cells.
    fn pinned_region(&self, p: Params) -> Option<ReadRegion> {
        let _ = p;
        None
    }

    /// Useful floating-point operations task `p` performs (static
    /// work accounting; the default 0 opts out).
    fn flops(&self, p: Params) -> f64 {
        let _ = p;
        0.0
    }

    /// Redundant flops task `p` performs beyond the nominal algorithm —
    /// the CA scheme's halo recompute. Executors add this to the
    /// `obs::names::REDUNDANT_FLOPS` counter per completed task, and the
    /// static analyzer sums the same values, so the two always agree
    /// exactly.
    fn redundant_flops(&self, p: Params) -> u64 {
        let _ = p;
        0
    }
}

/// A registry of task classes forming one dataflow program.
pub struct TaskGraph {
    classes: Vec<Arc<dyn TaskClass>>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        TaskGraph {
            classes: Vec::new(),
        }
    }

    /// Register a class, returning its id (referenced by [`TaskKey`]s).
    pub fn add_class(&mut self, class: Arc<dyn TaskClass>) -> ClassId {
        assert!(
            self.classes.len() < ClassId::MAX as usize,
            "too many task classes"
        );
        self.classes.push(class);
        (self.classes.len() - 1) as ClassId
    }

    /// Look up a class.
    pub fn class(&self, id: ClassId) -> &dyn TaskClass {
        self.classes
            .get(id as usize)
            .unwrap_or_else(|| panic!("unknown task class {id}"))
            .as_ref()
    }

    /// Number of registered classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Trace kind of a task: the class's own kind, or the class id.
    pub fn kind_of(&self, key: TaskKey) -> u32 {
        let k = self.class(key.class).kind(key.params);
        if k == u32::MAX {
            key.class as u32
        } else {
            k
        }
    }
}

impl Default for TaskGraph {
    fn default() -> Self {
        Self::new()
    }
}

/// A full program instance: the graph plus its entry tasks and size.
pub struct Program {
    /// The class registry.
    pub graph: Arc<TaskGraph>,
    /// Tasks with `activation_count == 0`; the runtime seeds these.
    pub roots: Vec<TaskKey>,
    /// Exact total number of tasks that will execute (termination is
    /// detected by counting completions).
    pub total_tasks: u64,
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::collections::HashMap;

    /// A tiny configurable class for runtime unit tests: an explicit DAG
    /// over params[0] as the task index.
    pub struct ExplicitDag {
        pub name: String,
        /// edges[i] = list of (consumer index, consumer slot)
        pub edges: HashMap<i32, Vec<(i32, usize)>>,
        /// indegree of each task
        pub indeg: HashMap<i32, usize>,
        /// node placement
        pub node: HashMap<i32, NodeId>,
        /// per-task cost seconds
        pub cost: f64,
        /// bytes per output flow
        pub bytes: usize,
    }

    impl TaskClass for ExplicitDag {
        fn name(&self) -> &str {
            &self.name
        }
        fn node_of(&self, p: Params) -> NodeId {
            *self.node.get(&p[0]).unwrap_or(&0)
        }
        fn activation_count(&self, p: Params) -> usize {
            *self.indeg.get(&p[0]).unwrap_or(&0)
        }
        fn num_output_flows(&self, p: Params) -> usize {
            self.edges.get(&p[0]).map_or(0, Vec::len)
        }
        fn outputs(&self, p: Params) -> Vec<OutputDep> {
            self.edges
                .get(&p[0])
                .map(|v| {
                    v.iter()
                        .enumerate()
                        .map(|(flow, &(c, slot))| OutputDep {
                            flow,
                            consumer: TaskKey::new(0, [c, 0, 0, 0]),
                            slot,
                        })
                        .collect()
                })
                .unwrap_or_default()
        }
        fn execute(&self, p: Params, _inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
            (0..self.num_output_flows(p))
                .map(|_| FlowData::values(vec![p[0] as f64]))
                .collect()
        }
        fn output_bytes(&self, _p: Params, _flow: usize) -> usize {
            self.bytes
        }
        fn cost(&self, _p: Params) -> f64 {
            self.cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_data_values_sets_bytes() {
        let f = FlowData::values(vec![1.0, 2.0, 3.0]);
        assert_eq!(f.bytes, 24);
        assert_eq!(f.expect_values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "no payload")]
    fn sized_flow_has_no_values() {
        FlowData::sized(100).expect_values();
    }

    #[test]
    fn read_region_single_and_area() {
        let r = ReadRegion::single(3, Rect::new(0, 0, 4, 5));
        assert_eq!(r.space, 3);
        assert_eq!(r.rects.len(), 1);
        assert_eq!(r.area_upper_bound(), 20);
        let two = ReadRegion {
            space: 3,
            rects: vec![Rect::new(0, 0, 4, 5), Rect::new(0, 0, 4, 5)],
        };
        // naive sum counts overlap twice: an upper bound by contract
        assert_eq!(two.area_upper_bound(), 40);
    }

    #[test]
    fn region_methods_default_to_none() {
        use testutil::ExplicitDag;
        let c = ExplicitDag {
            name: "a".into(),
            edges: Default::default(),
            indeg: Default::default(),
            node: Default::default(),
            cost: 0.0,
            bytes: 0,
        };
        assert!(c.read_region([0; 4]).is_none());
        assert!(c.delivered_region([0; 4], 0).is_none());
        assert!(c.pinned_region([0; 4]).is_none());
    }

    #[test]
    fn task_key_debug_is_compact() {
        let k = TaskKey::new(2, [1, 2, 3, 0]);
        assert_eq!(format!("{k:?}"), "T2(1,2,3,0)");
    }

    #[test]
    fn graph_registers_classes_in_order() {
        use testutil::ExplicitDag;
        let mut g = TaskGraph::new();
        let c0 = g.add_class(Arc::new(ExplicitDag {
            name: "a".into(),
            edges: Default::default(),
            indeg: Default::default(),
            node: Default::default(),
            cost: 0.0,
            bytes: 0,
        }));
        let c1 = g.add_class(Arc::new(ExplicitDag {
            name: "b".into(),
            edges: Default::default(),
            indeg: Default::default(),
            node: Default::default(),
            cost: 0.0,
            bytes: 0,
        }));
        assert_eq!((c0, c1), (0, 1));
        assert_eq!(g.class(0).name(), "a");
        assert_eq!(g.class(1).name(), "b");
        assert_eq!(g.num_classes(), 2);
    }

    #[test]
    fn default_kind_is_class_id() {
        use testutil::ExplicitDag;
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "a".into(),
            edges: Default::default(),
            indeg: Default::default(),
            node: Default::default(),
            cost: 0.0,
            bytes: 0,
        }));
        assert_eq!(g.kind_of(TaskKey::new(0, [5, 0, 0, 0])), 0);
    }

    #[test]
    #[should_panic(expected = "unknown task class")]
    fn unknown_class_panics() {
        TaskGraph::new().class(3);
    }
}
