//! Dynamic Task Discovery (DTD): PaRSEC's second DSL, an API that inserts
//! tasks sequentially instead of describing a parameterized graph
//! (Hoque et al., ScalA'17; mentioned in the paper's Section III-B).
//!
//! Tasks may only depend on previously inserted tasks, so the result is a
//! DAG by construction. `build()` produces a [`Program`] runnable on either
//! executor.

use crate::task::{
    FlowData, OutputDep, Params, Program, ReadRegion, TaskClass, TaskGraph, TaskKey, WriteRegion,
};
use netsim::NodeId;
use std::sync::Arc;

/// Identifier returned by [`DtdBuilder::insert`].
pub type DtdTaskId = usize;

/// Memory-footprint declarations of one DTD task, for the static
/// region-dataflow passes. DTD tasks have no parameter structure the
/// analyzer could derive regions from, so the front-end states them at
/// insertion time ([`DtdBuilder::insert_with_regions`]); every field
/// defaults to "undeclared", which exempts the task (or edge) from the
/// corresponding check exactly like the [`TaskClass`] method defaults.
#[derive(Debug, Clone, Default)]
pub struct DtdRegions {
    /// What the task writes ([`TaskClass::write_region`]).
    pub write: Option<WriteRegion>,
    /// What the task reads before writing ([`TaskClass::read_region`]).
    pub read: Option<ReadRegion>,
    /// Time-invariant cells of the task's space
    /// ([`TaskClass::pinned_region`]).
    pub pinned: Option<ReadRegion>,
    /// Per-dependency delivered regions, parallel to the `deps` slice of
    /// the insertion call: `delivered_in[slot]` is the region of **this**
    /// task's space that the flow arriving from `deps[slot]` makes valid
    /// ([`TaskClass::delivered_region`] is answered by looking this up on
    /// the consumer side). Shorter vectors are padded with `None`.
    pub delivered_in: Vec<Option<ReadRegion>>,
}

#[derive(Debug, Clone)]
struct DtdTask {
    node: NodeId,
    cost: f64,
    kind: u32,
    output_bytes: usize,
    deps: Vec<DtdTaskId>,
    regions: DtdRegions,
    /// (successor, slot-in-successor), filled as successors are inserted.
    successors: Vec<(DtdTaskId, usize)>,
}

/// Sequential task-insertion front-end.
#[derive(Debug, Default)]
pub struct DtdBuilder {
    tasks: Vec<DtdTask>,
}

impl DtdBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a task on `node` with the given service time and
    /// dependencies. Each dependency must identify an already-inserted
    /// task. Returns the new task's id.
    pub fn insert(&mut self, node: NodeId, cost: f64, deps: &[DtdTaskId]) -> DtdTaskId {
        self.insert_full(node, cost, 0, 8, deps)
    }

    /// Insert with full control: trace `kind` and per-successor message
    /// size `output_bytes`.
    pub fn insert_full(
        &mut self,
        node: NodeId,
        cost: f64,
        kind: u32,
        output_bytes: usize,
        deps: &[DtdTaskId],
    ) -> DtdTaskId {
        self.insert_with_regions(node, cost, kind, output_bytes, deps, DtdRegions::default())
    }

    /// Like [`insert_full`](Self::insert_full), additionally declaring the
    /// task's memory footprint for the `analyze` crate's region-dataflow
    /// passes. `regions.delivered_in` is indexed by position in `deps`.
    pub fn insert_with_regions(
        &mut self,
        node: NodeId,
        cost: f64,
        kind: u32,
        output_bytes: usize,
        deps: &[DtdTaskId],
        regions: DtdRegions,
    ) -> DtdTaskId {
        let id = self.tasks.len();
        for (slot, &d) in deps.iter().enumerate() {
            assert!(
                d < id,
                "task {id} depends on {d}, which has not been inserted yet"
            );
            self.tasks[d].successors.push((id, slot));
        }
        self.tasks.push(DtdTask {
            node,
            cost,
            kind,
            output_bytes,
            deps: deps.to_vec(),
            regions,
            successors: Vec::new(),
        });
        id
    }

    /// Number of inserted tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Finalize into a runnable [`Program`]. Panics when empty.
    pub fn build(self) -> Program {
        assert!(!self.tasks.is_empty(), "no tasks inserted");
        let roots: Vec<TaskKey> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.deps.is_empty())
            .map(|(i, _)| TaskKey::new(0, [i as i32, 0, 0, 0]))
            .collect();
        assert!(
            !roots.is_empty(),
            "inserted tasks form no roots (every task has dependencies)"
        );
        let total_tasks = self.tasks.len() as u64;
        let mut graph = TaskGraph::new();
        graph.add_class(Arc::new(DtdClass { tasks: self.tasks }));
        Program {
            graph: Arc::new(graph),
            roots,
            total_tasks,
        }
    }
}

struct DtdClass {
    tasks: Vec<DtdTask>,
}

impl DtdClass {
    fn task(&self, p: Params) -> &DtdTask {
        &self.tasks[p[0] as usize]
    }
}

impl TaskClass for DtdClass {
    fn name(&self) -> &str {
        "dtd"
    }
    fn node_of(&self, p: Params) -> NodeId {
        self.task(p).node
    }
    fn activation_count(&self, p: Params) -> usize {
        self.task(p).deps.len()
    }
    fn num_output_flows(&self, p: Params) -> usize {
        // one flow per successor (each successor may need distinct data)
        self.task(p).successors.len()
    }
    fn outputs(&self, p: Params) -> Vec<OutputDep> {
        self.task(p)
            .successors
            .iter()
            .enumerate()
            .map(|(flow, &(succ, slot))| OutputDep {
                flow,
                consumer: TaskKey::new(0, [succ as i32, 0, 0, 0]),
                slot,
            })
            .collect()
    }
    fn execute(&self, p: Params, _inputs: &mut [Option<FlowData>]) -> Vec<FlowData> {
        let t = self.task(p);
        (0..t.successors.len())
            .map(|_| FlowData::sized(t.output_bytes))
            .collect()
    }
    fn output_bytes(&self, p: Params, _flow: usize) -> usize {
        self.task(p).output_bytes
    }
    fn cost(&self, p: Params) -> f64 {
        self.task(p).cost
    }
    fn kind(&self, p: Params) -> u32 {
        self.task(p).kind
    }
    fn write_region(&self, p: Params) -> Option<WriteRegion> {
        self.task(p).regions.write
    }
    fn read_region(&self, p: Params) -> Option<ReadRegion> {
        self.task(p).regions.read.clone()
    }
    fn pinned_region(&self, p: Params) -> Option<ReadRegion> {
        self.task(p).regions.pinned.clone()
    }
    fn delivered_region(&self, p: Params, flow: usize) -> Option<ReadRegion> {
        // Flow `flow` feeds successors[flow] at some slot; the consumer
        // declared what that payload makes valid in its own space.
        let (succ, slot) = *self.task(p).successors.get(flow)?;
        self.tasks[succ].regions.delivered_in.get(slot)?.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run, RunConfig};
    use crate::unfold::assert_consistent;
    use machine::MachineProfile;

    #[test]
    fn diamond_runs_and_validates() {
        let mut b = DtdBuilder::new();
        let a = b.insert(0, 1e-3, &[]);
        let l = b.insert(0, 1e-3, &[a]);
        let r = b.insert(0, 1e-3, &[a]);
        let _s = b.insert(0, 1e-3, &[l, r]);
        let p = b.build();
        assert_consistent(&p);
        let report = run(&p, &RunConfig::simulated(MachineProfile::nacl(), 1));
        assert_eq!(report.tasks_executed, 4);
        // critical path: 3 tasks of 1 ms
        assert!((report.makespan - 3e-3).abs() < 1e-8);
    }

    #[test]
    fn cross_node_dtd_counts_messages() {
        let mut b = DtdBuilder::new();
        let a = b.insert_full(0, 1e-3, 7, 4096, &[]);
        let _c = b.insert(1, 1e-3, &[a]);
        let p = b.build();
        let report = run(&p, &RunConfig::simulated(MachineProfile::nacl(), 2));
        assert_eq!(report.counter(obs::names::MESSAGES_SENT), 1);
        assert_eq!(report.counter(obs::names::BYTES_SENT), 4096);
    }

    #[test]
    #[should_panic(expected = "not been inserted yet")]
    fn forward_dependency_rejected() {
        let mut b = DtdBuilder::new();
        let _ = b.insert(0, 1e-3, &[3]);
    }

    #[test]
    #[should_panic(expected = "no tasks inserted")]
    fn empty_build_rejected() {
        DtdBuilder::new().build();
    }

    #[test]
    fn wide_dtd_graph_parallelizes() {
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 1e-4, &[]);
        let mids: Vec<_> = (0..44).map(|_| b.insert(0, 1e-3, &[root])).collect();
        let _sink = b.insert(0, 1e-4, &mids);
        let p = b.build();
        assert_consistent(&p);
        let report = run(&p, &RunConfig::simulated(MachineProfile::nacl(), 1));
        // 44 tasks of 1 ms over 11 lanes = 4 ms, plus the endpoints.
        assert!(
            (report.makespan - 4.2e-3).abs() < 1e-6,
            "{}",
            report.makespan
        );
    }
}
