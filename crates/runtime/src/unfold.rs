//! Explicit enumeration of the unfolded task DAG.
//!
//! The executors never materialize the graph — tasks are discovered when
//! their first input arrives (see [`crate::pending`]). Static analysis
//! needs the opposite: the whole DAG as data. [`UnfoldedDag::enumerate`]
//! walks the parameterized declarations breadth-first from the roots and
//! records every task and every producer→consumer edge, collecting the
//! structural inconsistencies the old `validate` pass checked for
//! ([`StructuralFault`]) along the way.
//!
//! This module is the substrate of the `analyze` crate's passes (cycle
//! detection, write races, communication volume, critical path) and the
//! graph that the `insight` crate joins dynamic trace spans against via
//! [`crate::TaskKey::instance_id`].

use crate::task::{Program, TaskGraph, TaskKey};
use netsim::NodeId;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Default cap on enumerated tasks: large enough for every program in
/// this workspace (the paper's biggest REPRO_FAST workload unfolds to
/// ~700 k tasks), small enough to stop a runaway (cyclic-in-parameters)
/// class from exhausting memory.
pub const DEFAULT_TASK_LIMIT: usize = 8_000_000;

/// One producer→consumer dependence in the unfolded DAG. Indices refer to
/// [`UnfoldedDag::tasks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Index of the producing task.
    pub producer: usize,
    /// Index of the consuming task.
    pub consumer: usize,
    /// The producer's output flow feeding this edge.
    pub flow: usize,
    /// The consumer's input slot receiving it.
    pub slot: usize,
    /// Wire size of the flow ([`crate::task::TaskClass::output_bytes`]).
    pub bytes: usize,
}

/// A structural inconsistency discovered while unfolding the DAG: the
/// same invariants the old `validate` pass checked, kept as data so the
/// analyzer can report them uniformly with its own diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralFault {
    /// An `OutputDep` names a flow index at or beyond the producer's
    /// declared `num_output_flows`.
    FlowOutOfRange {
        /// The producing task.
        task: TaskKey,
        /// The referenced flow.
        flow: usize,
        /// The producer's declared flow count.
        flows: usize,
    },
    /// An `OutputDep` names a slot at or beyond the consumer's declared
    /// `num_input_slots`.
    SlotOutOfRange {
        /// The consuming task.
        task: TaskKey,
        /// The referenced slot.
        slot: usize,
        /// The consumer's declared slot count.
        slots: usize,
    },
    /// Two producer flows target the same input slot of the same task.
    SlotCollision {
        /// The consuming task.
        task: TaskKey,
        /// The contended slot.
        slot: usize,
    },
    /// A task's declared activation count differs from the number of
    /// flows actually targeting it. `declared > actual` deadlocks the run
    /// (the task can never fire); `declared < actual` double-delivers.
    IndegreeMismatch {
        /// The inconsistent task.
        task: TaskKey,
        /// What `activation_count` declares.
        declared: usize,
        /// How many producer flows target the task.
        actual: usize,
    },
    /// The number of reachable tasks differs from `Program::total_tasks`
    /// (termination is detected by counting completions, so this hangs or
    /// truncates the run).
    TotalMismatch {
        /// What the program declares.
        declared: u64,
        /// How many tasks are reachable from the roots.
        reachable: u64,
    },
    /// Enumeration stopped at the task limit; every count and edge list
    /// is a lower bound and downstream passes are unsound.
    Truncated {
        /// The limit that was hit.
        limit: usize,
    },
}

impl std::fmt::Display for StructuralFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructuralFault::FlowOutOfRange { task, flow, flows } => {
                write!(f, "{task:?}: flow {flow} out of range (has {flows})")
            }
            StructuralFault::SlotOutOfRange { task, slot, slots } => {
                write!(f, "{task:?}: slot {slot} out of range (has {slots})")
            }
            StructuralFault::SlotCollision { task, slot } => {
                write!(f, "{task:?}: input slot {slot} fed by multiple flows")
            }
            StructuralFault::IndegreeMismatch {
                task,
                declared,
                actual,
            } => write!(
                f,
                "{task:?}: declares {declared} inputs but {actual} flows target it"
            ),
            StructuralFault::TotalMismatch {
                declared,
                reachable,
            } => write!(
                f,
                "program declares {declared} tasks but {reachable} are reachable"
            ),
            StructuralFault::Truncated { limit } => {
                write!(f, "enumeration truncated at {limit} tasks")
            }
        }
    }
}

/// The fully unfolded DAG of one [`Program`]: every reachable task, every
/// edge, and the structural faults found while enumerating.
pub struct UnfoldedDag {
    /// The class registry the tasks refer to.
    pub graph: Arc<TaskGraph>,
    /// Every reachable task, in BFS discovery order (roots first).
    pub tasks: Vec<TaskKey>,
    /// Indices of the program's root tasks within [`UnfoldedDag::tasks`].
    pub roots: Vec<usize>,
    /// Every producer→consumer edge.
    pub edges: Vec<EdgeRef>,
    /// Structural inconsistencies found (empty = consistent).
    pub faults: Vec<StructuralFault>,
    index: HashMap<TaskKey, usize>,
}

impl UnfoldedDag {
    /// Enumerate `program` with the [`DEFAULT_TASK_LIMIT`].
    pub fn enumerate(program: &Program) -> Self {
        Self::enumerate_with_limit(program, DEFAULT_TASK_LIMIT)
    }

    /// Enumerate `program`, stopping (with a
    /// [`StructuralFault::Truncated`]) after discovering `limit` tasks.
    pub fn enumerate_with_limit(program: &Program, limit: usize) -> Self {
        let graph = Arc::clone(&program.graph);
        let mut tasks: Vec<TaskKey> = Vec::new();
        let mut index: HashMap<TaskKey, usize> = HashMap::new();
        let mut edges: Vec<EdgeRef> = Vec::new();
        let mut faults: Vec<StructuralFault> = Vec::new();
        // Pending edges whose consumer index is not known yet are staged
        // with the consumer key; resolve after discovery completes.
        let mut staged: Vec<(usize, TaskKey, usize, usize, usize)> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut truncated = false;

        let discover = |key: TaskKey,
                        tasks: &mut Vec<TaskKey>,
                        index: &mut HashMap<TaskKey, usize>,
                        queue: &mut VecDeque<usize>|
         -> Option<usize> {
            if let Some(&i) = index.get(&key) {
                return Some(i);
            }
            if tasks.len() >= limit {
                return None;
            }
            let i = tasks.len();
            tasks.push(key);
            index.insert(key, i);
            queue.push_back(i);
            Some(i)
        };

        let mut roots = Vec::with_capacity(program.roots.len());
        for &root in &program.roots {
            if let Some(i) = discover(root, &mut tasks, &mut index, &mut queue) {
                roots.push(i);
            } else {
                truncated = true;
            }
        }

        while let Some(pi) = queue.pop_front() {
            let key = tasks[pi];
            let class = graph.class(key.class);
            let flows = class.num_output_flows(key.params);
            for dep in class.outputs(key.params) {
                if dep.flow >= flows {
                    faults.push(StructuralFault::FlowOutOfRange {
                        task: key,
                        flow: dep.flow,
                        flows,
                    });
                }
                let cclass = graph.class(dep.consumer.class);
                let slots = cclass.num_input_slots(dep.consumer.params);
                if dep.slot >= slots {
                    faults.push(StructuralFault::SlotOutOfRange {
                        task: dep.consumer,
                        slot: dep.slot,
                        slots,
                    });
                }
                let bytes = if dep.flow < flows {
                    class.output_bytes(key.params, dep.flow)
                } else {
                    0
                };
                match discover(dep.consumer, &mut tasks, &mut index, &mut queue) {
                    Some(ci) => edges.push(EdgeRef {
                        producer: pi,
                        consumer: ci,
                        flow: dep.flow,
                        slot: dep.slot,
                        bytes,
                    }),
                    None => {
                        truncated = true;
                        staged.push((pi, dep.consumer, dep.flow, dep.slot, bytes));
                    }
                }
            }
        }
        // Edges to tasks that were later discovered anyway (reached below
        // the limit through another path) still count.
        for (pi, consumer, flow, slot, bytes) in staged {
            if let Some(&ci) = index.get(&consumer) {
                edges.push(EdgeRef {
                    producer: pi,
                    consumer: ci,
                    flow,
                    slot,
                    bytes,
                });
            }
        }

        if truncated {
            faults.push(StructuralFault::Truncated { limit });
        } else {
            // Cross-check declared in-degrees and slot usage. Skipped on
            // truncation: partial in-edge counts would all look mismatched.
            let mut indeg = vec![0usize; tasks.len()];
            let mut slot_seen: HashMap<(usize, usize), usize> = HashMap::new();
            for e in &edges {
                indeg[e.consumer] += 1;
                *slot_seen.entry((e.consumer, e.slot)).or_default() += 1;
            }
            for (i, &key) in tasks.iter().enumerate() {
                let declared = graph.class(key.class).activation_count(key.params);
                if declared != indeg[i] {
                    faults.push(StructuralFault::IndegreeMismatch {
                        task: key,
                        declared,
                        actual: indeg[i],
                    });
                }
            }
            let mut collisions: Vec<(usize, usize)> = slot_seen
                .into_iter()
                .filter(|&(_, count)| count > 1)
                .map(|((task, slot), _)| (task, slot))
                .collect();
            collisions.sort_unstable();
            for (ti, slot) in collisions {
                faults.push(StructuralFault::SlotCollision {
                    task: tasks[ti],
                    slot,
                });
            }
            if tasks.len() as u64 != program.total_tasks {
                faults.push(StructuralFault::TotalMismatch {
                    declared: program.total_tasks,
                    reachable: tasks.len() as u64,
                });
            }
        }

        UnfoldedDag {
            graph,
            tasks,
            roots,
            edges,
            faults,
            index,
        }
    }

    /// Number of enumerated tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task was enumerated.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// True when enumeration found no structural fault.
    pub fn is_consistent(&self) -> bool {
        self.faults.is_empty()
    }

    /// Index of `key` in [`UnfoldedDag::tasks`], if reachable.
    pub fn index_of(&self, key: TaskKey) -> Option<usize> {
        self.index.get(&key).copied()
    }

    /// Owning node of task `i`.
    pub fn node_of(&self, i: usize) -> NodeId {
        let key = self.tasks[i];
        self.graph.class(key.class).node_of(key.params)
    }

    /// Service time of task `i` under the program's cost model.
    pub fn cost_of(&self, i: usize) -> f64 {
        let key = self.tasks[i];
        self.graph.class(key.class).cost(key.params)
    }

    /// Per-task in-degrees (counted from the enumerated edges, not the
    /// declarations).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.tasks.len()];
        for e in &self.edges {
            indeg[e.consumer] += 1;
        }
        indeg
    }

    /// Successor adjacency: for each task, the indices of its out-edges in
    /// [`UnfoldedDag::edges`].
    pub fn out_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.tasks.len()];
        for (ei, e) in self.edges.iter().enumerate() {
            adj[e.producer].push(ei as u32);
        }
        adj
    }

    /// A topological order of the tasks (Kahn), or `None` when the
    /// enumerated edges contain a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let mut indeg = self.in_degrees();
        let adj = self.out_adjacency();
        let mut order = Vec::with_capacity(self.len());
        let mut queue: VecDeque<usize> = (0..self.len()).filter(|&i| indeg[i] == 0).collect();
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &ei in &adj[i] {
                let c = self.edges[ei as usize].consumer;
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push_back(c);
                }
            }
        }
        (order.len() == self.len()).then_some(order)
    }
}

/// Enumerate `program` and panic with a readable report on any structural
/// fault. Runtime-internal tests use this; application code should prefer
/// the richer `analyze::assert_clean`.
pub fn assert_consistent(program: &Program) {
    let dag = UnfoldedDag::enumerate(program);
    if !dag.is_consistent() {
        let report: Vec<String> = dag.faults.iter().take(20).map(|e| e.to_string()).collect();
        panic!(
            "task graph is inconsistent ({} faults):\n  {}",
            dag.faults.len(),
            report.join("\n  ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::testutil::ExplicitDag;
    use crate::task::TaskGraph;
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn program(
        edges: &[(i32, i32, usize)],
        indeg: &[(i32, usize)],
        roots: &[i32],
        total: u64,
    ) -> Program {
        let mut edge_map: Map<i32, Vec<(i32, usize)>> = Map::new();
        for &(from, to, slot) in edges {
            edge_map.entry(from).or_default().push((to, slot));
        }
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges: edge_map,
            indeg: indeg.iter().copied().collect(),
            node: Map::new(),
            cost: 1.0,
            bytes: 8,
        }));
        Program {
            graph: Arc::new(g),
            roots: roots
                .iter()
                .map(|&i| TaskKey::new(0, [i, 0, 0, 0]))
                .collect(),
            total_tasks: total,
        }
    }

    #[test]
    fn diamond_enumerates_in_bfs_order() {
        let p = program(
            &[(0, 1, 0), (0, 2, 0), (1, 3, 0), (2, 3, 1)],
            &[(1, 1), (2, 1), (3, 2)],
            &[0],
            4,
        );
        let dag = UnfoldedDag::enumerate(&p);
        assert!(dag.is_consistent(), "{:?}", dag.faults);
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.edges.len(), 4);
        assert_eq!(dag.roots, vec![0]);
        assert_eq!(dag.index_of(TaskKey::new(0, [3, 0, 0, 0])), Some(3));
        let topo = dag.topo_order().expect("acyclic");
        assert_eq!(topo.len(), 4);
        assert_eq!(topo[0], 0);
        assert_consistent(&p);
    }

    #[test]
    fn indegree_mismatch_is_a_fault() {
        let p = program(&[(0, 1, 0)], &[(1, 2)], &[0], 2);
        let dag = UnfoldedDag::enumerate(&p);
        assert!(dag.faults.iter().any(|f| matches!(
            f,
            StructuralFault::IndegreeMismatch {
                declared: 2,
                actual: 1,
                ..
            }
        )));
    }

    #[test]
    fn slot_collision_is_a_fault() {
        let p = program(&[(0, 1, 0), (0, 1, 0)], &[(1, 2)], &[0], 2);
        let dag = UnfoldedDag::enumerate(&p);
        assert!(dag
            .faults
            .iter()
            .any(|f| matches!(f, StructuralFault::SlotCollision { slot: 0, .. })));
    }

    #[test]
    fn total_mismatch_is_a_fault() {
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[0], 5);
        let dag = UnfoldedDag::enumerate(&p);
        assert!(dag.faults.iter().any(|f| matches!(
            f,
            StructuralFault::TotalMismatch {
                declared: 5,
                reachable: 2
            }
        )));
    }

    #[test]
    fn cycle_defeats_topo_order_but_not_enumeration() {
        // 0 -> 1 -> 2 -> 1: task 1 is in a cycle with 2
        let p = program(
            &[(0, 1, 0), (1, 2, 0), (2, 1, 1)],
            &[(1, 2), (2, 1)],
            &[0],
            3,
        );
        let dag = UnfoldedDag::enumerate(&p);
        assert_eq!(dag.len(), 3);
        assert!(dag.is_consistent(), "{:?}", dag.faults);
        assert!(dag.topo_order().is_none());
    }

    #[test]
    fn limit_truncates_with_fault() {
        // an unbounded chain: i -> i+1 forever would loop; emulate with a
        // long chain and a tiny limit
        let edges: Vec<(i32, i32, usize)> = (0..100).map(|i| (i, i + 1, 0)).collect();
        let indeg: Vec<(i32, usize)> = (1..=100).map(|i| (i, 1)).collect();
        let p = program(&edges, &indeg, &[0], 101);
        let dag = UnfoldedDag::enumerate_with_limit(&p, 10);
        assert_eq!(dag.len(), 10);
        assert!(dag
            .faults
            .iter()
            .any(|f| matches!(f, StructuralFault::Truncated { limit: 10 })));
    }

    #[test]
    fn costs_and_nodes_are_exposed() {
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[0], 2);
        let dag = UnfoldedDag::enumerate(&p);
        assert_eq!(dag.cost_of(0), 1.0);
        assert_eq!(dag.node_of(0), 0);
        assert_eq!(dag.in_degrees(), vec![0, 1]);
        assert_eq!(dag.out_adjacency()[0].len(), 1);
    }

    #[test]
    #[should_panic(expected = "task graph is inconsistent")]
    fn assert_consistent_panics_on_fault() {
        let p = program(&[(0, 1, 0)], &[(1, 3)], &[0], 2);
        assert_consistent(&p);
    }
}
