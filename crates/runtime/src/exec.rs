//! The single entry point into every executor: build a [`RunConfig`],
//! call [`run`], get back one [`RunReport`] — whichever engine actually
//! carried the tasks.
//!
//! # The builder pattern
//!
//! Configuration follows the same builder style as
//! `ca_stencil::StencilConfig`: a constructor fixes the required
//! parameters, `with_*` methods refine the rest, and every method
//! consumes and returns the config so calls chain:
//!
//! ```ignore
//! let report = runtime::run(
//!     &program,
//!     &RunConfig::simulated(MachineProfile::nacl(), 4)
//!         .with_policy(SchedulerPolicy::Priority)
//!         .with_trace(),
//! );
//! ```
//!
//! All three engines feed the same observability layer (the `obs` crate):
//! every run records task/communication spans into a low-overhead
//! per-thread ring recorder and counts runtime events in a metric
//! registry, so a [`RunReport`] always carries per-node occupancy and a
//! [`MetricsSnapshot`], and — when [`RunConfig::with_trace`] is set — the
//! full span [`Trace`] ready for Chrome/Perfetto export via
//! `obs::chrome::to_chrome_json`.

use crate::scheduler::{SchedulerHandle, SchedulerPolicy};
use crate::task::Program;
use machine::MachineProfile;
use obs::{Live, LiveSample, Metrics, MetricsSnapshot, Recorder, Trace, TracerOverhead};

/// Which engine executes the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Real threads in one address space, wall-clock time
    /// (the paper's single-node runs).
    SharedMemory,
    /// One thread pool per node plus a comm thread per node, real
    /// channel-borne messages, wall-clock time.
    MultiProcess,
    /// Virtual-time simulation of the whole cluster over a machine
    /// profile and network model.
    Simulated,
}

/// Configuration of one run, valid for every [`ExecMode`].
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The engine to run on.
    pub mode: ExecMode,
    /// Worker threads per node (ignored by [`ExecMode::Simulated`], whose
    /// lane count comes from the machine profile).
    pub threads: usize,
    /// Number of nodes; every task's `node_of` must map below this.
    pub nodes: u32,
    /// Machine profile (required for [`ExecMode::Simulated`]).
    pub profile: Option<MachineProfile>,
    /// Execute task bodies in the simulator (always true on the real
    /// engines).
    pub execute_bodies: bool,
    /// Attach the full span [`Trace`] to the report.
    pub capture_trace: bool,
    /// The scheduling policy every engine consults for task selection
    /// and placement (see [`crate::scheduler`]).
    pub scheduler: SchedulerHandle,
    /// Parallel send engines per node (simulator only).
    pub comm_engines: usize,
    /// Human-readable names for application span kinds, for exporters.
    pub kind_names: Vec<(u32, String)>,
    /// Live-sampler cadence in nanoseconds on the engine's clock
    /// (wall-clock for the real engines, virtual for the simulator).
    /// `None` disables sampling unless a [`RunConfig::with_live`] board
    /// is attached, which turns it on at
    /// [`RunConfig::DEFAULT_SAMPLE_PERIOD_NS`].
    pub sample_period_ns: Option<u64>,
    /// External live board to publish samples to, so a concurrent
    /// observer (`stencil-top`, the `obs::expo` responder) can watch the
    /// run. When sampling is on without a board, the engine creates a
    /// private one and the samples still land in the report.
    pub live: Option<Live>,
    /// Seed for the real engines' work-stealing victim order (ignored by
    /// the simulator). A fixed seed reproduces the same per-worker
    /// victim sequence run over run — the "seed-stable" half of the
    /// determinism contract in `docs/EXECUTOR.md`.
    pub steal_seed: u64,
    /// Per-lane tracer ring capacity in records; `None` uses the
    /// recorder's default. Small capacities force ring overflow, which
    /// the observability tests use to prove dropped-event accounting
    /// reconciles (see [`RunConfig::with_ring_capacity`]).
    pub ring_capacity: Option<usize>,
}

impl RunConfig {
    /// Shared-memory run on `threads` workers (one node, no network).
    pub fn shared_memory(threads: usize) -> Self {
        RunConfig {
            mode: ExecMode::SharedMemory,
            threads,
            nodes: 1,
            profile: None,
            execute_bodies: true,
            capture_trace: false,
            scheduler: SchedulerHandle::default(),
            comm_engines: 1,
            kind_names: Vec::new(),
            sample_period_ns: None,
            live: None,
            steal_seed: Self::DEFAULT_STEAL_SEED,
            ring_capacity: None,
        }
    }

    /// Multi-process-semantics run: `nodes` pools of `threads_per_node`
    /// workers, plus one comm thread per node.
    pub fn multi_process(nodes: u32, threads_per_node: usize) -> Self {
        RunConfig {
            mode: ExecMode::MultiProcess,
            threads: threads_per_node,
            nodes,
            profile: None,
            execute_bodies: true,
            capture_trace: false,
            scheduler: SchedulerHandle::default(),
            comm_engines: 1,
            kind_names: Vec::new(),
            sample_period_ns: None,
            live: None,
            steal_seed: Self::DEFAULT_STEAL_SEED,
            ring_capacity: None,
        }
    }

    /// Simulated run of `nodes` nodes of `profile` (the paper's
    /// configuration: compute lanes plus one dedicated comm engine).
    pub fn simulated(profile: MachineProfile, nodes: u32) -> Self {
        RunConfig {
            mode: ExecMode::Simulated,
            threads: 0,
            nodes,
            profile: Some(profile),
            execute_bodies: false,
            capture_trace: false,
            scheduler: SchedulerHandle::default(),
            comm_engines: 1,
            kind_names: Vec::new(),
            sample_period_ns: None,
            live: None,
            steal_seed: Self::DEFAULT_STEAL_SEED,
            ring_capacity: None,
        }
    }

    /// Default work-stealing seed: an arbitrary constant, fixed so runs
    /// are seed-stable out of the box.
    pub const DEFAULT_STEAL_SEED: u64 = 0xCA5C_ADE5_7EA1;

    /// Seed the real engines' steal-victim order (see
    /// [`RunConfig::steal_seed`]).
    pub fn with_steal_seed(mut self, seed: u64) -> Self {
        self.steal_seed = seed;
        self
    }

    /// Replace the machine profile.
    pub fn with_profile(mut self, profile: MachineProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Select one of the classic queue disciplines (compatibility shim
    /// over [`RunConfig::with_scheduler`]).
    pub fn with_policy(self, policy: SchedulerPolicy) -> Self {
        self.with_scheduler(policy)
    }

    /// Select the scheduling policy: any [`crate::Scheduler`]
    /// implementation, an existing [`SchedulerHandle`], or a plain
    /// [`SchedulerPolicy`] variant. Every engine consults the resulting
    /// selector for task selection (and placement, when it overrides
    /// owner-computes).
    pub fn with_scheduler(mut self, scheduler: impl Into<SchedulerHandle>) -> Self {
        self.scheduler = scheduler.into();
        self
    }

    /// Execute task bodies (verifies numerics in the simulator).
    pub fn with_bodies(mut self) -> Self {
        self.execute_bodies = true;
        self
    }

    /// Attach the full span trace to the report.
    pub fn with_trace(mut self) -> Self {
        self.capture_trace = true;
        self
    }

    /// Use `n` parallel send engines per node.
    pub fn with_comm_engines(mut self, n: usize) -> Self {
        self.comm_engines = n;
        self
    }

    /// Name application span kinds for trace exporters (the comm kind is
    /// named automatically).
    pub fn with_kind_names<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = (u32, S)>,
        S: Into<String>,
    {
        self.kind_names
            .extend(names.into_iter().map(|(k, s)| (k, s.into())));
        self
    }

    /// Default sampler cadence when a live board is attached without an
    /// explicit period: 10 ms on the engine's clock.
    pub const DEFAULT_SAMPLE_PERIOD_NS: u64 = 10_000_000;

    /// Bound every tracer lane (span and message rings alike) to
    /// `capacity` records. Overflowing lanes drop the newest records and
    /// count them, so a deliberately tiny capacity lets tests prove the
    /// dropped-event reconciliation instead of assuming rings never fill.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = Some(capacity);
        self
    }

    /// Enable live sampling at `period_ns` on the engine's clock
    /// (wall-clock nanoseconds for the real engines, virtual nanoseconds
    /// for the simulator). Samples land in [`RunReport::samples`].
    pub fn with_sampling(mut self, period_ns: u64) -> Self {
        self.sample_period_ns = Some(period_ns.max(1));
        self
    }

    /// Publish live samples to `live` so a concurrent observer can watch
    /// the run; implies sampling (at
    /// [`RunConfig::DEFAULT_SAMPLE_PERIOD_NS`] unless
    /// [`RunConfig::with_sampling`] chose a cadence).
    pub fn with_live(mut self, live: Live) -> Self {
        self.live = Some(live);
        self
    }

    /// The effective sampler cadence: the explicit period, the default
    /// when only a board was attached, `None` when sampling is off.
    pub fn sample_period(&self) -> Option<u64> {
        self.sample_period_ns
            .or(self.live.as_ref().map(|_| Self::DEFAULT_SAMPLE_PERIOD_NS))
    }

    /// The board the engine should publish samples to: the attached one,
    /// or a fresh private board when sampling is on without an external
    /// observer. `None` when sampling is off.
    pub(crate) fn live_board(&self) -> Option<Live> {
        if let Some(live) = &self.live {
            return Some(live.clone());
        }
        self.sample_period_ns.map(|_| Live::new())
    }

    /// Build the run's recorder with the configured kind names registered.
    pub(crate) fn recorder(&self) -> Recorder {
        let rec = match self.ring_capacity {
            Some(cap) => Recorder::with_capacity(cap),
            None => Recorder::new(),
        };
        rec.register_kind(obs::KIND_COMM, "comm");
        for (kind, name) in &self.kind_names {
            rec.register_kind(*kind, name);
        }
        rec
    }
}

/// Mode-specific extension of a [`RunReport`].
#[derive(Debug, Clone)]
pub enum ModeExt {
    /// Shared-memory extras.
    SharedMemory {
        /// Total flows delivered between tasks.
        flows_delivered: u64,
    },
    /// Multi-process extras.
    MultiProcess {
        /// Flows that crossed between nodes (through the comm threads).
        cross_node_flows: u64,
    },
    /// Simulator extras.
    Simulated {
        /// Messages that crossed the network.
        remote_messages: u64,
        /// Bytes that crossed the network.
        remote_bytes: u64,
        /// Flows delivered node-locally.
        local_flows: u64,
        /// Per-node communication-engine utilization over the makespan.
        comm_utilization: Vec<f64>,
    },
}

/// Outcome of a run, identical in shape for every engine.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The engine that produced this report.
    pub mode: ExecMode,
    /// Stable name of the scheduler that drove the run (see
    /// [`crate::Scheduler::name`]), so traces from different policies stay
    /// distinguishable downstream.
    pub scheduler: String,
    /// Tasks executed (equals the program's `total_tasks` on success).
    pub tasks_executed: u64,
    /// End-to-end time in seconds: wall-clock for the real engines,
    /// virtual time of the last task completion for the simulator.
    pub makespan: f64,
    /// Per-node worker-lane occupancy in `[0, 1]` over the makespan,
    /// computed from the recorded spans (the paper's "CPU occupancy").
    pub node_occupancy: Vec<f64>,
    /// Counter/gauge snapshot (see `obs::names` for the standard keys).
    pub metrics: MetricsSnapshot,
    /// Full span trace, when [`RunConfig::with_trace`] was set.
    pub trace: Option<Trace>,
    /// Live samples collected during the run, when sampling was enabled
    /// (see [`RunConfig::with_sampling`]); empty otherwise.
    pub samples: Vec<LiveSample>,
    /// The tracer's measured self-overhead over this run: record attempts
    /// times the calibrated per-event cost, against total worker-lane
    /// time. The budget is [`TracerOverhead::BUDGET_FRACTION`].
    pub overhead: TracerOverhead,
    /// Mode-specific extras.
    pub ext: ModeExt,
}

impl RunReport {
    /// Shorthand for a counter from the metric snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Flows delivered between tasks, when the mode tracks them
    /// (shared memory only).
    pub fn flows_delivered(&self) -> Option<u64> {
        match self.ext {
            ModeExt::SharedMemory { flows_delivered } => Some(flows_delivered),
            _ => None,
        }
    }

    /// Messages that crossed between nodes: network messages for the
    /// simulator, comm-thread flows for multi-process, 0 for shared
    /// memory.
    pub fn remote_messages(&self) -> u64 {
        match self.ext {
            ModeExt::SharedMemory { .. } => 0,
            ModeExt::MultiProcess { cross_node_flows } => cross_node_flows,
            ModeExt::Simulated {
                remote_messages, ..
            } => remote_messages,
        }
    }

    /// Bytes that crossed between nodes (simulator's network bytes; the
    /// metric counter for the other modes).
    pub fn remote_bytes(&self) -> u64 {
        match self.ext {
            ModeExt::Simulated { remote_bytes, .. } => remote_bytes,
            _ => self.metrics.counter(obs::names::BYTES_SENT),
        }
    }

    /// Flows delivered node-locally (simulator only).
    pub fn local_flows(&self) -> Option<u64> {
        match self.ext {
            ModeExt::Simulated { local_flows, .. } => Some(local_flows),
            _ => None,
        }
    }

    /// Per-node communication-engine utilization over the makespan
    /// (simulator only; empty for the real engines).
    pub fn comm_utilization(&self) -> &[f64] {
        match &self.ext {
            ModeExt::Simulated {
                comm_utilization, ..
            } => comm_utilization,
            _ => &[],
        }
    }
}

/// Assemble the uniform part of a [`RunReport`] from a finished run's
/// recorder and metrics. `horizon_ns` is the makespan on the engine's
/// clock; occupancy counts `lanes` worker lanes per node over it.
/// One parameter per report ingredient — the three engines each hold
/// these as locals, so a params struct would only move the arity around.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_report(
    cfg: &RunConfig,
    mode: ExecMode,
    makespan: f64,
    horizon_ns: u64,
    lanes: u32,
    tasks_executed: u64,
    recorder: &Recorder,
    metrics: &Metrics,
    samples: Vec<LiveSample>,
    ext: ModeExt,
) -> RunReport {
    // Overhead is accounted before drain() so the drain itself (an
    // analysis step, not instrumentation) stays out of the figure.
    let lane_time_ns = horizon_ns * lanes as u64 * cfg.nodes as u64;
    let overhead = recorder.overhead(lane_time_ns);
    let trace = recorder.drain();
    let node_occupancy = (0..cfg.nodes)
        .map(|n| trace.occupancy(n, lanes, horizon_ns))
        .collect();
    RunReport {
        mode,
        scheduler: cfg.scheduler.name().to_string(),
        tasks_executed,
        makespan,
        node_occupancy,
        metrics: metrics.snapshot(),
        trace: cfg.capture_trace.then_some(trace),
        samples,
        overhead,
        ext,
    }
}

/// An engine that can execute a [`Program`] under a [`RunConfig`].
///
/// The three engines are exposed as unit structs so code can be generic
/// over "something that runs programs"; most callers just use [`run`].
pub trait Executor {
    /// The mode this engine implements.
    fn mode(&self) -> ExecMode;

    /// Run `program` to completion and report.
    fn execute(&self, program: &Program, cfg: &RunConfig) -> RunReport;
}

/// The shared-memory engine (see [`crate::real_exec`]).
pub struct SharedMemoryExecutor;

impl Executor for SharedMemoryExecutor {
    fn mode(&self) -> ExecMode {
        ExecMode::SharedMemory
    }

    fn execute(&self, program: &Program, cfg: &RunConfig) -> RunReport {
        crate::real_exec::execute(program, cfg)
    }
}

/// The multi-process-semantics engine (see [`crate::mp_exec`]).
pub struct MultiProcessExecutor;

impl Executor for MultiProcessExecutor {
    fn mode(&self) -> ExecMode {
        ExecMode::MultiProcess
    }

    fn execute(&self, program: &Program, cfg: &RunConfig) -> RunReport {
        crate::mp_exec::execute(program, cfg)
    }
}

/// The virtual-time engine (see [`crate::sim_exec`]).
pub struct SimulatedExecutor;

impl Executor for SimulatedExecutor {
    fn mode(&self) -> ExecMode {
        ExecMode::Simulated
    }

    fn execute(&self, program: &Program, cfg: &RunConfig) -> RunReport {
        crate::sim_exec::execute(program, cfg)
    }
}

/// Run `program` on the engine selected by `cfg.mode`. The single entry
/// point every caller should use.
pub fn run(program: &Program, cfg: &RunConfig) -> RunReport {
    match cfg.mode {
        ExecMode::SharedMemory => SharedMemoryExecutor.execute(program, cfg),
        ExecMode::MultiProcess => MultiProcessExecutor.execute(program, cfg),
        ExecMode::Simulated => SimulatedExecutor.execute(program, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::DtdBuilder;
    use obs::names;

    fn diamond(nodes: u32) -> Program {
        let mut b = DtdBuilder::new();
        let root = b.insert(0, 1e-5, &[]);
        let mids: Vec<_> = (0..6).map(|i| b.insert(i % nodes, 1e-5, &[root])).collect();
        let _sink = b.insert(0, 1e-5, &mids);
        b.build()
    }

    #[test]
    fn all_three_modes_agree_on_task_counts() {
        let p = diamond(1);
        for cfg in [
            RunConfig::shared_memory(2),
            RunConfig::multi_process(1, 2),
            RunConfig::simulated(MachineProfile::nacl(), 1),
        ] {
            let r = run(&p, &cfg.with_trace());
            assert_eq!(r.tasks_executed, 8, "{:?}", r.mode);
            assert_eq!(r.counter(names::TASKS_EXECUTED), 8, "{:?}", r.mode);
            assert_eq!(r.counter(names::MESSAGES_SENT), 0, "{:?}", r.mode);
            let trace = r.trace.expect("with_trace attaches the trace");
            assert_eq!(trace.task_spans().count(), 8, "{:?}", r.mode);
        }
    }

    #[test]
    fn trace_absent_unless_requested() {
        let r = run(&diamond(1), &RunConfig::shared_memory(2));
        assert!(r.trace.is_none());
        assert_eq!(r.node_occupancy.len(), 1);
        assert!(r.node_occupancy[0] > 0.0);
    }

    #[test]
    fn multi_process_counts_cross_node_messages() {
        let p = diamond(2);
        let r = run(&p, &RunConfig::multi_process(2, 2));
        let sent = r.counter(names::MESSAGES_SENT);
        assert!(sent >= 6, "cross flows: {sent}");
        assert!(r.counter(names::BYTES_SENT) >= sent);
        match r.ext {
            ModeExt::MultiProcess { cross_node_flows } => {
                assert_eq!(cross_node_flows, sent)
            }
            ref other => panic!("wrong ext {other:?}"),
        }
    }

    #[test]
    fn simulated_reports_virtual_makespan() {
        let r = run(
            &diamond(1),
            &RunConfig::simulated(MachineProfile::nacl(), 1),
        );
        // 1e-5 cost, depth-3 diamond: exactly 3e-5 of virtual time.
        assert!((r.makespan - 3e-5).abs() < 1e-12, "{}", r.makespan);
        match r.ext {
            ModeExt::Simulated {
                remote_messages, ..
            } => assert_eq!(remote_messages, 0),
            ref other => panic!("wrong ext {other:?}"),
        }
    }

    #[test]
    fn sampling_reaches_report_on_every_engine() {
        let p = diamond(1);
        for cfg in [
            RunConfig::shared_memory(2),
            RunConfig::multi_process(1, 2),
            RunConfig::simulated(MachineProfile::nacl(), 1),
        ] {
            let mode = cfg.mode;
            let r = run(&p, &cfg.with_sampling(1_000_000));
            assert!(!r.samples.is_empty(), "{mode:?} published no samples");
            assert!(r.overhead.events > 0, "{mode:?} overhead not measured");
            assert!(r.overhead.per_event_ns > 0.0);
            assert!(r.samples.iter().all(|s| s.window_ns > 0));
        }
        // Sampling off: no samples, but overhead is still accounted.
        let r = run(&p, &RunConfig::shared_memory(2));
        assert!(r.samples.is_empty());
        assert!(r.overhead.events > 0);
    }

    #[test]
    fn external_live_board_sees_the_run() {
        let live = obs::Live::new();
        let cfg = RunConfig::shared_memory(2).with_live(live.clone());
        assert_eq!(
            cfg.sample_period(),
            Some(RunConfig::DEFAULT_SAMPLE_PERIOD_NS),
            "attaching a board implies sampling"
        );
        let r = run(&diamond(1), &cfg);
        assert!(!live.is_empty(), "board saw nothing");
        assert_eq!(live.history().len(), r.samples.len());
    }

    #[test]
    fn kind_names_reach_the_trace() {
        let cfg = RunConfig::shared_memory(1)
            .with_kind_names([(0u32, "work")])
            .with_trace();
        let r = run(&diamond(1), &cfg);
        let trace = r.trace.unwrap();
        assert_eq!(trace.kinds.get(&0).map(String::as_str), Some("work"));
        assert_eq!(
            trace.kinds.get(&obs::KIND_COMM).map(String::as_str),
            Some("comm")
        );
    }
}
