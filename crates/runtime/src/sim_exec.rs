//! The simulated distributed executor: the dataflow runtime running on the
//! virtual cluster.
//!
//! Each node owns `compute_threads` worker lanes plus a dedicated
//! communication engine, matching the paper's PaRSEC configuration ("one
//! process per node, with one thread dedicated for communication while the
//! remaining ones for computation"). Task service times come from the task
//! class's cost model; message times come from the [`netsim`] network
//! model. Task *bodies* can optionally execute for real inside the
//! simulation, so the same run that predicts performance also verifies
//! numerics.
//!
//! The executor reproduces the two properties the paper leans on:
//!
//! * **communication/computation overlap** — sends progress on the comm
//!   engine while worker lanes keep executing ready tasks;
//! * **dataflow scheduling** — a task fires the instant its last input
//!   arrives; there are no barriers between iterations.
//!
//! Spans and metrics flow through the same `obs` recorder the real
//! executors use — virtual nanoseconds go straight in as span timestamps,
//! so the observability pipeline is identical under wall and virtual time.

use crate::exec::{assemble_report, ExecMode, ModeExt, RunConfig, RunReport};
use crate::pending::{PendingTable, ReadyTask};
use crate::ready_queue::ReadyQueue;
use crate::scheduler::{SchedContext, SchedulerHandle, TaskSelector};
use crate::task::{FlowData, Program, TaskKey};
use desim::{Engine, Model, Scheduler, TimeWeighted, VirtualDuration, VirtualTime};
use machine::MachineProfile;
use netsim::{InFlight, NetworkModel};
use obs::{lane_busy_in_window, names, Live, LiveSample, LocalRecorder, Metrics, Recorder};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

// The policy enum historically lived here; it now sits with the rest of
// the scheduling surface.
pub use crate::scheduler::SchedulerPolicy;

/// Trace kind used for communication-engine spans (task kinds are
/// application-defined and small). Equals [`obs::KIND_COMM`].
pub const KIND_COMM: u32 = obs::KIND_COMM;

/// Configuration of one simulated run, builder-style like
/// [`crate::exec::RunConfig`]: a constructor fixes the cluster, `with_*`
/// methods refine the run and chain.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine whose nodes and network are simulated.
    pub profile: MachineProfile,
    /// Number of nodes; every task's `node_of` must map below this.
    pub nodes: u32,
    /// Execute task bodies (verifies numerics) or skip them (performance
    /// only).
    pub execute_bodies: bool,
    /// The scheduling policy (see [`crate::scheduler`]).
    pub scheduler: SchedulerHandle,
    /// Parallel send engines per node (1 = the paper's single dedicated
    /// communication thread).
    pub comm_engines: usize,
}

impl SimConfig {
    /// The paper's configuration on `nodes` nodes of `profile`.
    pub fn new(profile: MachineProfile, nodes: u32) -> Self {
        SimConfig {
            profile,
            nodes,
            execute_bodies: false,
            scheduler: SchedulerHandle::default(),
            comm_engines: 1,
        }
    }

    /// Replace the machine profile.
    pub fn with_profile(mut self, profile: MachineProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Enable body execution.
    pub fn with_bodies(mut self) -> Self {
        self.execute_bodies = true;
        self
    }

    /// Select one of the classic queue disciplines (compatibility shim
    /// over [`SimConfig::with_scheduler`]).
    pub fn with_policy(self, policy: SchedulerPolicy) -> Self {
        self.with_scheduler(policy)
    }

    /// Select the scheduling policy: any [`crate::Scheduler`], an existing
    /// [`SchedulerHandle`], or a plain [`SchedulerPolicy`] variant.
    pub fn with_scheduler(mut self, scheduler: impl Into<SchedulerHandle>) -> Self {
        self.scheduler = scheduler.into();
        self
    }

    /// Use `n` parallel send engines per node.
    pub fn with_comm_engines(mut self, n: usize) -> Self {
        self.comm_engines = n;
        self
    }
}

/// Work item for a node's communication engine. Both directions cost
/// `runtime_msg_cost` of comm-thread time: PaRSEC's dedicated communication
/// thread resolves dependences, activates successors, and packs/unpacks on
/// every message, and that per-message processing — amortized by the CA
/// scheme's fewer, larger messages — is the resource the paper's Figures
/// 8–10 are about.
enum CommJob {
    Send {
        consumer: TaskKey,
        slot: usize,
        data: FlowData,
        /// Kind tag of the producing task, stamped into the message span.
        kind: u32,
        /// When the producer handed the payload to the comm engine — the
        /// message span's enqueue timestamp; the gap to injection is the
        /// queueing delay behind earlier sends.
        enqueue: VirtualTime,
    },
    Recv {
        consumer: TaskKey,
        slot: usize,
        data: FlowData,
        /// The in-flight message span (deliver timestamp still zero); the
        /// receive-side `CommDone` completes and records it.
        msg: obs::MsgSpan,
    },
}

struct Running {
    lane: u32,
    start: VirtualTime,
    inputs: Vec<Option<FlowData>>,
}

struct NodeState {
    free_lanes: Vec<u32>,
    ready: ReadyQueue,
    /// A coalesced [`Ev::Dispatch`] is already scheduled for this node at
    /// the current timestamp, so further ready arrivals need not add one.
    dispatch_scheduled: bool,
    running: HashMap<TaskKey, Running>,
    comm_queue: VecDeque<CommJob>,
    comm_active: usize,
    comm_busy: TimeWeighted,
}

enum Ev {
    Ready(ReadyTask),
    /// Drain `node`'s ready queue into its free lanes. Ready arrivals at
    /// one timestamp coalesce into a single Dispatch, so a rank selector
    /// orders the whole simultaneously-ready batch rather than seeing
    /// tasks one by one.
    Dispatch {
        node: u32,
    },
    TaskDone {
        key: TaskKey,
    },
    /// A comm-engine job finished on `node`; for `Recv` jobs this also
    /// delivers the flow and completes the message span.
    CommDone {
        node: u32,
        started: VirtualTime,
        deliver: Option<(TaskKey, usize, FlowData)>,
        /// The message span to stamp with the delivery time and record
        /// (`Recv` completions only).
        msg: Option<obs::MsgSpan>,
    },
    /// Wire delivery: the message reached the destination NIC and now
    /// queues for receive processing.
    Arrive {
        consumer: TaskKey,
        slot: usize,
        data: FlowData,
        /// The in-flight message span, threaded through to the receive
        /// job so delivery can complete it.
        msg: obs::MsgSpan,
    },
    /// Live-telemetry tick: publish one [`LiveSample`] per node covering
    /// the window since the previous tick, then reschedule. Samples only
    /// read state, so they cannot perturb task timing.
    Sample,
}

struct Sim {
    program: Arc<Program>,
    cfg: SimConfig,
    selector: Arc<dyn TaskSelector>,
    net: NetworkModel,
    lanes_per_node: u32,
    pending: PendingTable,
    nodes: Vec<NodeState>,
    completed: u64,
    last_task_done: VirtualTime,
    remote_messages: u64,
    remote_bytes: u64,
    local_flows: u64,
    local: LocalRecorder,
    msg_local: obs::MsgRecorder,
    metrics: Metrics,
    recorder: Recorder,
    inflight: InFlight,
    live: Option<Live>,
    sample_period: Option<VirtualDuration>,
    last_sample: VirtualTime,
    records_since_collect: usize,
}

impl Sim {
    /// The whole simulation records through a single producer lane, so
    /// a large run (every node's spans funnel through it) would fill
    /// the lane's bounded ring long before the final drain. Moving
    /// spans into the collector store this often keeps the ring far
    /// from its drop-on-overflow path at any workload size.
    const COLLECT_EVERY: usize = 8192;

    /// Note one recorded span; periodically empty the producer lane
    /// into the collector store.
    fn note_recorded(&mut self) {
        self.records_since_collect += 1;
        if self.records_since_collect >= Self::COLLECT_EVERY {
            self.records_since_collect = 0;
            self.recorder.collect();
        }
    }

    fn node_of(&self, key: TaskKey) -> u32 {
        let n = self
            .selector
            .place(key)
            .unwrap_or_else(|| self.program.graph.class(key.class).node_of(key.params));
        assert!(
            n < self.cfg.nodes,
            "{key:?} placed on node {n} but the run has {} nodes",
            self.cfg.nodes
        );
        n
    }

    /// Schedule a coalesced [`Ev::Dispatch`] for `node` at the current
    /// timestamp unless one is already queued.
    fn request_dispatch(&mut self, node: u32, sched: &mut Scheduler<Ev>) {
        let st = &mut self.nodes[node as usize];
        if !st.dispatch_scheduled {
            st.dispatch_scheduled = true;
            sched.schedule_now(Ev::Dispatch { node });
        }
    }

    fn dispatch(&mut self, node: u32, now: VirtualTime, sched: &mut Scheduler<Ev>) {
        loop {
            let st = &mut self.nodes[node as usize];
            if st.ready.is_empty() || st.free_lanes.is_empty() {
                return;
            }
            let ready = st.ready.pop().expect("nonempty");
            let lane = st.free_lanes.pop().expect("nonempty");
            let cost = self
                .program
                .graph
                .class(ready.key.class)
                .cost(ready.key.params);
            let key = ready.key;
            st.running.insert(
                key,
                Running {
                    lane,
                    start: now,
                    inputs: ready.inputs,
                },
            );
            sched.schedule_in(VirtualDuration::from_secs_f64(cost), Ev::TaskDone { key });
        }
    }

    fn deliver(
        &mut self,
        consumer: TaskKey,
        slot: usize,
        data: FlowData,
        sched: &mut Scheduler<Ev>,
    ) {
        if let Some(ready) = self
            .pending
            .deliver(&self.program.graph, consumer, slot, data)
        {
            sched.schedule_now(Ev::Ready(ready));
        }
    }

    /// Start queued comm jobs while engines are free.
    fn pump_comm(&mut self, node: u32, now: VirtualTime, sched: &mut Scheduler<Ev>) {
        let msg_cost = self.cfg.profile.runtime_msg_cost;
        loop {
            let st = &mut self.nodes[node as usize];
            if st.comm_active >= self.cfg.comm_engines || st.comm_queue.is_empty() {
                return;
            }
            let job = st.comm_queue.pop_front().expect("nonempty");
            st.comm_busy.record(now, st.comm_active.min(1) as f64);
            st.comm_active += 1;
            match job {
                CommJob::Send {
                    consumer,
                    slot,
                    data,
                    kind,
                    enqueue,
                } => {
                    let bytes = data.bytes.max(1);
                    // processing precedes injection: the wire transfer
                    // starts once the comm thread has prepared the message
                    let occupancy = msg_cost + self.net.sender_occupancy(bytes);
                    let arrival = msg_cost + self.net.transfer_time(bytes);
                    self.remote_messages += 1;
                    self.remote_bytes += data.bytes as u64;
                    self.inflight.send(data.bytes as u64);
                    self.metrics.counter(names::MESSAGES_SENT).inc();
                    self.metrics
                        .counter(names::BYTES_SENT)
                        .add(data.bytes as u64);
                    // The message span rides along with the payload; the
                    // receive-side CommDone stamps the delivery time.
                    let msg = obs::MsgSpan {
                        src: node,
                        dst: self.node_of(consumer),
                        kind,
                        bytes: data.bytes as u64,
                        enqueue_ns: enqueue.as_nanos(),
                        inject_ns: now.as_nanos(),
                        deliver_ns: 0,
                    };
                    sched.schedule_in(
                        VirtualDuration::from_secs_f64(arrival),
                        Ev::Arrive {
                            consumer,
                            slot,
                            data,
                            msg,
                        },
                    );
                    sched.schedule_in(
                        VirtualDuration::from_secs_f64(occupancy),
                        Ev::CommDone {
                            node,
                            started: now,
                            deliver: None,
                            msg: None,
                        },
                    );
                }
                CommJob::Recv {
                    consumer,
                    slot,
                    data,
                    msg,
                } => {
                    sched.schedule_in(
                        VirtualDuration::from_secs_f64(msg_cost),
                        Ev::CommDone {
                            node,
                            started: now,
                            deliver: Some((consumer, slot, data)),
                            msg: Some(msg),
                        },
                    );
                }
            }
        }
    }

    fn finish_task(&mut self, key: TaskKey, now: VirtualTime, sched: &mut Scheduler<Ev>) {
        let node = self.node_of(key);
        // Keep the program alive independently of `self` so the class
        // reference does not pin the whole struct borrow.
        let program = Arc::clone(&self.program);
        let class = program.graph.class(key.class);
        let run = self.nodes[node as usize]
            .running
            .remove(&key)
            .unwrap_or_else(|| panic!("{key:?} completed but was not running"));

        let kind = self.program.graph.kind_of(key);
        self.local.task_instance(
            node,
            run.lane,
            kind,
            key.instance_id(),
            run.start.as_nanos(),
            now.as_nanos(),
        );
        self.note_recorded();
        self.metrics.counter(names::TASKS_EXECUTED).inc();
        let redundant = self
            .program
            .graph
            .class(key.class)
            .redundant_flops(key.params);
        if redundant > 0 {
            self.metrics.counter(names::REDUNDANT_FLOPS).add(redundant);
        }
        // Produce outputs: real bodies or size-only placeholders.
        let deps = class.outputs(key.params);
        let bodies: Option<Vec<FlowData>> = if self.cfg.execute_bodies {
            let mut inputs = run.inputs;
            Some(class.execute(key.params, &mut inputs))
        } else {
            None
        };

        for dep in &deps {
            let data = match &bodies {
                Some(out) => out
                    .get(dep.flow)
                    .unwrap_or_else(|| {
                        panic!(
                            "{key:?}: execute produced {} flows, outputs reference flow {}",
                            out.len(),
                            dep.flow
                        )
                    })
                    .clone(),
                None => FlowData::sized(class.output_bytes(key.params, dep.flow)),
            };
            let dst = self.node_of(dep.consumer);
            if dst == node {
                self.local_flows += 1;
                self.deliver(dep.consumer, dep.slot, data, sched);
            } else {
                self.nodes[node as usize]
                    .comm_queue
                    .push_back(CommJob::Send {
                        consumer: dep.consumer,
                        slot: dep.slot,
                        data,
                        kind,
                        enqueue: now,
                    });
                self.pump_comm(node, now, sched);
            }
        }

        // Free the lane so the dispatcher can reuse it.
        let st = &mut self.nodes[node as usize];
        st.free_lanes.push(run.lane);

        self.completed += 1;
        self.last_task_done = now;
        self.dispatch(node, now, sched);
    }

    /// Publish one [`LiveSample`] per node for the window
    /// `[last_sample, now]`. Busy time is exact: the overlap of every
    /// *finished* span with the window (from the collected store) plus
    /// the elapsed part of every still-running task — so the
    /// window-averaged live occupancy matches the post-hoc Fig-10 number
    /// to the nanosecond when the windows tile the run.
    fn take_sample(&mut self, now: VirtualTime) {
        let Some(live) = &self.live else { return };
        let w0 = self.last_sample.as_nanos();
        let w1 = now.as_nanos();
        if w1 <= w0 {
            return;
        }
        let lanes = self.lanes_per_node;
        let window = (w1 - w0) as f64;
        let (inflight_msgs, inflight_bytes) = self.inflight.snapshot();
        let dropped_events = self.recorder.dropped();
        let pending_tasks = self.pending.len();
        let nodes = &self.nodes;
        self.recorder.with_collected(|spans| {
            for (n, st) in nodes.iter().enumerate() {
                let mut busy = lane_busy_in_window(spans, n as u32, lanes, w0, w1);
                // Running tasks have no span yet; count their elapsed
                // overlap with the window (disjoint from any finished
                // span on the same lane, so busy stays <= 1).
                for r in st.running.values() {
                    let lo = r.start.as_nanos().max(w0);
                    if w1 > lo {
                        busy[r.lane as usize] += (w1 - lo) as f64 / window;
                    }
                }
                live.publish(LiveSample {
                    t_ns: w1,
                    window_ns: w1 - w0,
                    node: n as u32,
                    lane_busy: busy,
                    ready_depth: st.ready.len(),
                    pending_tasks,
                    inflight_msgs,
                    inflight_bytes,
                    dropped_events,
                    // The simulator's central per-node queue never
                    // steals or spills.
                    steals: 0,
                    steal_fails: 0,
                    overflow_pushes: 0,
                });
            }
        });
        self.last_sample = now;
    }
}

impl Model for Sim {
    type Event = Ev;

    fn handle(&mut self, now: VirtualTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Ready(ready) => {
                let node = self.node_of(ready.key);
                self.nodes[node as usize].ready.push(ready);
                self.metrics
                    .gauge(names::QUEUE_DEPTH)
                    .set(self.nodes[node as usize].ready.len() as i64);
                self.request_dispatch(node, sched);
            }
            Ev::Dispatch { node } => {
                self.nodes[node as usize].dispatch_scheduled = false;
                self.dispatch(node, now, sched);
            }
            Ev::TaskDone { key } => self.finish_task(key, now, sched),
            Ev::CommDone {
                node,
                started,
                deliver,
                msg,
            } => {
                let st = &mut self.nodes[node as usize];
                st.comm_active -= 1;
                st.comm_busy
                    .record(now, (st.comm_active + 1).min(self.cfg.comm_engines) as f64);
                self.local.comm(
                    node,
                    self.lanes_per_node,
                    started.as_nanos(),
                    now.as_nanos(),
                );
                self.note_recorded();
                // Receive processing done: the payload is now visible to
                // the consumer — stamp and record the message span.
                // Recording only reads virtual time, so traced and
                // untraced runs stay bit-identical.
                if let Some(mut msg) = msg {
                    msg.deliver_ns = now.as_nanos();
                    self.msg_local.record(msg);
                    self.note_recorded();
                }
                if let Some((consumer, slot, data)) = deliver {
                    self.deliver(consumer, slot, data, sched);
                }
                self.pump_comm(node, now, sched);
            }
            Ev::Arrive {
                consumer,
                slot,
                data,
                msg,
            } => {
                self.inflight.arrive(data.bytes as u64);
                let dst = self.node_of(consumer);
                self.nodes[dst as usize]
                    .comm_queue
                    .push_back(CommJob::Recv {
                        consumer,
                        slot,
                        data,
                        msg,
                    });
                self.pump_comm(dst, now, sched);
            }
            Ev::Sample => {
                // Stop ticking once the run is over; the tail window up
                // to the makespan is covered by the final sample
                // `simulate` takes after the event loop drains.
                if self.completed < self.program.total_tasks {
                    self.take_sample(now);
                    if let Some(period) = self.sample_period {
                        sched.schedule_in(period, Ev::Sample);
                    }
                }
            }
        }
    }
}

/// Everything a finished simulation yields, before either report shape is
/// assembled.
struct SimOutcome {
    makespan: VirtualTime,
    tasks_executed: u64,
    remote_messages: u64,
    remote_bytes: u64,
    local_flows: u64,
    activations: u64,
    comm_utilization: Vec<f64>,
}

/// Run the event loop to completion.
///
/// Panics when the run deadlocks (tasks remain pending after the event
/// queue drains) — run `analyze::assert_clean` (or
/// [`crate::unfold::assert_consistent`]) on a scaled-down instance to
/// debug the graph.
fn simulate(
    program: &Program,
    cfg: &SimConfig,
    recorder: &Recorder,
    metrics: &Metrics,
    live: Option<Live>,
    sample_period_ns: Option<u64>,
) -> SimOutcome {
    assert!(cfg.nodes >= 1, "need at least one node");
    assert!(cfg.comm_engines >= 1, "need at least one comm engine");
    assert!(program.total_tasks > 0, "empty program");

    let lanes = cfg.profile.compute_threads();
    let net = NetworkModel::from_profile(&cfg.profile);
    // Instantiate the per-run selector before any event fires: this is
    // where a list scheduler unfolds the DAG and computes static ranks.
    let selector = cfg.scheduler.instance(&SchedContext {
        program,
        profile: Some(&cfg.profile),
        nodes: cfg.nodes,
        lanes,
    });
    let nodes = (0..cfg.nodes)
        .map(|_| NodeState {
            free_lanes: (0..lanes).rev().collect(),
            ready: ReadyQueue::new(Arc::clone(&selector)),
            dispatch_scheduled: false,
            running: HashMap::new(),
            comm_queue: VecDeque::new(),
            comm_active: 0,
            comm_busy: TimeWeighted::new(),
        })
        .collect();

    let program = Arc::new(Program {
        graph: Arc::clone(&program.graph),
        roots: program.roots.clone(),
        total_tasks: program.total_tasks,
    });

    let sim = Sim {
        program: Arc::clone(&program),
        cfg: cfg.clone(),
        selector,
        net,
        lanes_per_node: lanes,
        pending: PendingTable::new(),
        nodes,
        completed: 0,
        last_task_done: VirtualTime::ZERO,
        remote_messages: 0,
        remote_bytes: 0,
        local_flows: 0,
        local: recorder.local(),
        msg_local: recorder.msg_local(),
        metrics: metrics.clone(),
        recorder: recorder.clone(),
        inflight: InFlight::new(),
        live,
        sample_period: sample_period_ns.map(|ns| VirtualDuration::from_nanos(ns.max(1))),
        last_sample: VirtualTime::ZERO,
        records_since_collect: 0,
    };

    let mut engine = Engine::new(sim);
    for &root in &program.roots {
        let ready = PendingTable::root(&program.graph, root);
        engine.prime(Ev::Ready(ready));
    }
    if sample_period_ns.is_some() {
        engine.prime(Ev::Sample);
    }
    engine.run();

    let mut sim = engine.into_model();
    if sim.completed != program.total_tasks {
        let stuck = sim.pending.stuck_tasks();
        panic!(
            "simulated run deadlocked: {}/{} tasks done, {} pending (first stuck: {:?})",
            sim.completed,
            program.total_tasks,
            stuck.len(),
            stuck.first()
        );
    }

    let makespan_t = sim.last_task_done;
    // Final sample: cover the tail window up to the makespan so the
    // sample windows tile the run exactly.
    sim.take_sample(makespan_t);
    let comm_utilization = sim
        .nodes
        .iter()
        .map(|n| {
            n.comm_busy
                .mean_until(makespan_t, n.comm_active.min(1) as f64)
                / cfg.comm_engines as f64
        })
        .collect();

    SimOutcome {
        makespan: makespan_t,
        tasks_executed: sim.completed,
        remote_messages: sim.remote_messages,
        remote_bytes: sim.remote_bytes,
        local_flows: sim.local_flows,
        activations: sim.pending.flows_delivered(),
        comm_utilization,
    }
}

/// Run `program` under `cfg` on the virtual-time engine (entered through
/// [`crate::run`]).
pub(crate) fn execute(program: &Program, cfg: &RunConfig) -> RunReport {
    let profile = cfg
        .profile
        .clone()
        .expect("simulated mode requires a machine profile");
    let lanes = profile.compute_threads();
    let sim_cfg = SimConfig {
        profile,
        nodes: cfg.nodes,
        execute_bodies: cfg.execute_bodies,
        scheduler: cfg.scheduler.clone(),
        comm_engines: cfg.comm_engines,
    };
    let recorder = cfg.recorder();
    let metrics = Metrics::new();
    let live = cfg.live_board();
    let outcome = simulate(
        program,
        &sim_cfg,
        &recorder,
        &metrics,
        live.clone(),
        cfg.sample_period(),
    );
    metrics.counter(names::ACTIVATIONS).add(outcome.activations);
    let samples = live.map(|l| l.history()).unwrap_or_default();

    assemble_report(
        cfg,
        ExecMode::Simulated,
        outcome.makespan.as_secs_f64(),
        outcome.makespan.as_nanos(),
        lanes,
        outcome.tasks_executed,
        &recorder,
        &metrics,
        samples,
        ModeExt::Simulated {
            remote_messages: outcome.remote_messages,
            remote_bytes: outcome.remote_bytes,
            local_flows: outcome.local_flows,
            comm_utilization: outcome.comm_utilization,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run, RunConfig};
    use crate::task::testutil::ExplicitDag;
    use crate::task::{TaskGraph, TaskKey};
    use std::collections::HashMap as Map;

    /// Build a program from an explicit edge list with per-task node
    /// placement.
    fn program(
        edges: &[(i32, i32, usize)],
        indeg: &[(i32, usize)],
        node: &[(i32, u32)],
        roots: &[i32],
        total: u64,
        cost: f64,
        bytes: usize,
    ) -> Program {
        let mut edge_map: Map<i32, Vec<(i32, usize)>> = Map::new();
        for &(from, to, slot) in edges {
            edge_map.entry(from).or_default().push((to, slot));
        }
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges: edge_map,
            indeg: indeg.iter().copied().collect(),
            node: node.iter().copied().collect(),
            cost,
            bytes,
        }));
        Program {
            graph: Arc::new(g),
            roots: roots
                .iter()
                .map(|&i| TaskKey::new(0, [i, 0, 0, 0]))
                .collect(),
            total_tasks: total,
        }
    }

    fn cfg(nodes: u32) -> RunConfig {
        RunConfig::simulated(MachineProfile::nacl(), nodes)
    }

    fn sim_ext(r: &RunReport) -> (u64, u64, u64) {
        match &r.ext {
            ModeExt::Simulated {
                remote_messages,
                remote_bytes,
                local_flows,
                ..
            } => (*remote_messages, *remote_bytes, *local_flows),
            _ => panic!("wrong ext"),
        }
    }

    #[test]
    fn single_task_makespan_is_its_cost() {
        let p = program(&[], &[], &[], &[0], 1, 1e-3, 8);
        let r = run(&p, &cfg(1));
        assert!((r.makespan - 1e-3).abs() < 1e-9, "makespan {}", r.makespan);
        assert_eq!(r.tasks_executed, 1);
        assert_eq!(sim_ext(&r).0, 0);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        // 22 independent tasks of 1 ms on 11 lanes -> 2 ms.
        let roots: Vec<i32> = (0..22).collect();
        let p = program(&[], &[], &[], &roots, 22, 1e-3, 8);
        let r = run(&p, &cfg(1));
        assert!((r.makespan - 2e-3).abs() < 1e-8, "makespan {}", r.makespan);
    }

    #[test]
    fn chain_serializes() {
        // 0 -> 1 -> 2, 1 ms each => 3 ms.
        let p = program(
            &[(0, 1, 0), (1, 2, 0)],
            &[(1, 1), (2, 1)],
            &[],
            &[0],
            3,
            1e-3,
            8,
        );
        let r = run(&p, &cfg(1));
        assert!((r.makespan - 3e-3).abs() < 1e-8, "makespan {}", r.makespan);
    }

    #[test]
    fn remote_edge_pays_network_latency() {
        // 0 on node 0 -> 1 on node 1; one 8-byte message.
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[(1, 1)], &[0], 2, 1e-3, 8);
        let r = run(&p, &cfg(2));
        let net = NetworkModel::from_profile(&MachineProfile::nacl());
        let msg_cost = MachineProfile::nacl().runtime_msg_cost;
        // task + send processing + wire + receive processing + task
        let expected = 2e-3 + msg_cost + net.transfer_time(8) + msg_cost;
        assert!(
            (r.makespan - expected).abs() < 1e-8,
            "makespan {} vs expected {expected}",
            r.makespan
        );
        let (messages, bytes, local) = sim_ext(&r);
        assert_eq!(messages, 1);
        assert_eq!(bytes, 8);
        assert_eq!(local, 0);
        assert_eq!(r.counter(obs::names::MESSAGES_SENT), 1);
        assert_eq!(r.counter(obs::names::BYTES_SENT), 8);
    }

    #[test]
    fn local_edge_pays_nothing() {
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[], &[0], 2, 1e-3, 8);
        let r = run(&p, &cfg(1));
        assert!((r.makespan - 2e-3).abs() < 1e-8);
        let (messages, _, local) = sim_ext(&r);
        assert_eq!(local, 1);
        assert_eq!(messages, 0);
    }

    #[test]
    fn comm_engine_serializes_sends() {
        // Node 0 task 0 fans out to tasks 1 and 2 on node 1 with large
        // messages; the second send starts only after the first's
        // occupancy.
        let mb = 1 << 20;
        let p = program(
            &[(0, 1, 0), (0, 2, 0)],
            &[(1, 1), (2, 1)],
            &[(1, 1), (2, 1)],
            &[0],
            3,
            1e-3,
            mb,
        );
        let r = run(&p, &cfg(2));
        let net = NetworkModel::from_profile(&MachineProfile::nacl());
        let c = MachineProfile::nacl().runtime_msg_cost;
        // second send waits for the first's full comm-engine occupancy;
        // on arrival both queue for receive processing (the second recv
        // arrives after the first finished processing, so no recv queueing)
        let expected =
            1e-3 + (c + net.sender_occupancy(mb)) + (c + net.transfer_time(mb)) + c + 1e-3;
        assert!(
            (r.makespan - expected).abs() < 1e-7,
            "makespan {} vs expected {expected}",
            r.makespan
        );
    }

    #[test]
    fn bodies_execute_and_flow_values() {
        // ExplicitDag's execute emits the task index as the payload; just
        // confirm body mode completes and counts match.
        let p = program(
            &[(0, 1, 0), (1, 2, 0)],
            &[(1, 1), (2, 1)],
            &[(1, 1), (2, 0)],
            &[0],
            3,
            1e-4,
            8,
        );
        let r = run(&p, &cfg(2).with_bodies());
        assert_eq!(r.tasks_executed, 3);
        assert_eq!(sim_ext(&r).0, 2);
    }

    #[test]
    fn trace_captures_task_spans() {
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[], &[0], 2, 1e-3, 8);
        let r = run(&p, &cfg(1).with_trace());
        let trace = r.trace.unwrap();
        assert_eq!(trace.len(), 2);
        assert!(trace.spans.iter().all(|s| s.duration_ns() > 900_000));
    }

    #[test]
    fn occupancy_reflects_parallelism() {
        // 11 independent 1 ms tasks on 11 lanes: occupancy 1.0.
        let roots: Vec<i32> = (0..11).collect();
        let p = program(&[], &[], &[], &roots, 11, 1e-3, 8);
        let r = run(&p, &cfg(1));
        assert!((r.node_occupancy[0] - 1.0).abs() < 1e-9);
        // a serial chain on 11 lanes: occupancy ~1/11
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[], &[0], 2, 1e-3, 8);
        let r = run(&p, &cfg(1));
        assert!((r.node_occupancy[0] - 1.0 / 11.0).abs() < 1e-6);
    }

    #[test]
    fn lifo_and_fifo_both_complete() {
        let roots: Vec<i32> = (0..40).collect();
        let p = program(&[], &[], &[], &roots, 40, 1e-4, 8);
        for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::Lifo] {
            let r = run(&p, &cfg(1).with_policy(policy));
            assert_eq!(r.tasks_executed, 40);
        }
    }

    #[test]
    fn obs_trace_has_full_duration_spans_with_ids() {
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[], &[0], 2, 1e-3, 8);
        let r = run(&p, &cfg(1).with_trace());
        assert_eq!(r.tasks_executed, 2);
        assert!((r.makespan - 2e-3).abs() < 1e-8);
        let trace = r.trace.unwrap();
        assert_eq!(trace.task_spans().count(), 2);
        assert!(trace
            .task_spans()
            .all(|s| s.duration_ns() > 900_000 && s.task_instance().is_some()));
    }

    #[test]
    fn remote_edge_traces_msg_span_with_virtual_stamps() {
        // 0 on node 0 -> 1 on node 1; the single message's span must
        // carry exact virtual-time stamps for all three phases.
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[(1, 1)], &[0], 2, 1e-3, 8);
        let r = run(&p, &cfg(2).with_trace());
        let trace = r.trace.unwrap();
        assert_eq!(trace.msgs.len(), 1);
        let m = trace.msgs[0];
        assert_eq!((m.src, m.dst, m.bytes), (0, 1, 8));
        let net = NetworkModel::from_profile(&MachineProfile::nacl());
        let msg_cost = MachineProfile::nacl().runtime_msg_cost;
        let ns = |s: f64| (s * 1e9).round() as u64;
        // Enqueued when the producer finished; injected immediately (the
        // comm engine was idle); delivered after wire + receive cost.
        assert_eq!(m.enqueue_ns, ns(1e-3));
        assert_eq!(m.inject_ns, m.enqueue_ns, "idle engine: no queueing");
        assert_eq!(m.queue_ns(), 0);
        let expected_deliver = 1e-3 + msg_cost + net.transfer_time(8) + msg_cost;
        assert!(
            (m.deliver_ns as i64 - ns(expected_deliver) as i64).abs() <= 1,
            "deliver {} vs expected {}",
            m.deliver_ns,
            ns(expected_deliver)
        );
        // The consumer task starts exactly at delivery.
        let consumer_start = trace
            .task_spans()
            .find(|s| s.node == 1)
            .expect("consumer span")
            .start_ns;
        assert_eq!(consumer_start, m.deliver_ns);
    }

    #[test]
    fn queued_sends_accrue_queueing_delay() {
        // Two large sends through one comm engine: the second waits for
        // the first's occupancy, which must surface as queueing delay.
        let mb = 1 << 20;
        let p = program(
            &[(0, 1, 0), (0, 2, 0)],
            &[(1, 1), (2, 1)],
            &[(1, 1), (2, 2)],
            &[0],
            3,
            1e-3,
            mb,
        );
        let r = run(&p, &cfg(3).with_trace());
        let trace = r.trace.unwrap();
        assert_eq!(trace.msgs.len(), 2);
        let mut queues: Vec<u64> = trace.msgs.iter().map(|m| m.queue_ns()).collect();
        queues.sort_unstable();
        assert_eq!(queues[0], 0, "first send injects immediately");
        let net = NetworkModel::from_profile(&MachineProfile::nacl());
        let c = MachineProfile::nacl().runtime_msg_cost;
        let expected_queue = ((c + net.sender_occupancy(mb)) * 1e9).round() as u64;
        assert!(
            (queues[1] as i64 - expected_queue as i64).abs() <= 1,
            "second send queues behind the first: {} vs {}",
            queues[1],
            expected_queue
        );
        // The matrix aggregates both into one (0,1) + one (0,2) peer.
        let matrix = trace.comm_matrix();
        assert_eq!(matrix.peers.len(), 2);
        assert_eq!(matrix.total_bytes(), 2 * mb as u64);
    }

    #[test]
    fn sampling_does_not_perturb_virtual_time() {
        let roots: Vec<i32> = (0..22).collect();
        let p = program(&[], &[], &[], &roots, 22, 1e-3, 8);
        let base = run(&p, &cfg(1));
        let sampled = run(&p, &cfg(1).with_sampling(250_000));
        // Sample events only read state: identical makespan to the bit.
        assert_eq!(base.makespan, sampled.makespan);
        assert_eq!(base.node_occupancy, sampled.node_occupancy);
        assert!(base.samples.is_empty());
        assert!(sampled.samples.len() >= 8, "{}", sampled.samples.len());
    }

    #[test]
    fn sample_windows_tile_the_run_and_agree_with_posthoc() {
        let live = obs::Live::new();
        // 25 tasks on 11 lanes: waves of 11, 11, 3 — the ragged last wave
        // exercises the running-task overlap accounting in mid-windows.
        let roots: Vec<i32> = (0..25).collect();
        let p = program(&[], &[], &[], &roots, 25, 1e-3, 8);
        let r = run(&p, &cfg(1).with_sampling(700_000).with_live(live.clone()));
        let horizon = (r.makespan * 1e9).round() as u64;
        let tiled: u64 = r
            .samples
            .iter()
            .filter(|s| s.node == 0)
            .map(|s| s.window_ns)
            .sum();
        assert_eq!(tiled, horizon, "windows tile [0, makespan] exactly");
        // Window-averaged live occupancy equals the post-hoc number.
        let diff = (live.mean_occupancy(0) - r.node_occupancy[0]).abs();
        assert!(
            diff < 1e-9,
            "live {} vs posthoc {}",
            live.mean_occupancy(0),
            r.node_occupancy[0]
        );
        assert!(r.overhead.events > 0);
        assert!(r.overhead.per_event_ns > 0.0);
    }

    #[test]
    fn samples_gauge_inflight_traffic() {
        // Node 0 fans out 6 large messages to node 1; sample densely and
        // expect some sample to catch traffic on the wire.
        let mb = 1 << 20;
        let edges: Vec<(i32, i32, usize)> = (1..=6).map(|i| (0, i, 0)).collect();
        let indeg: Vec<(i32, usize)> = (1..=6).map(|i| (i, 1)).collect();
        let node: Vec<(i32, u32)> = (1..=6).map(|i| (i, 1)).collect();
        let p = program(&edges, &indeg, &node, &[0], 7, 1e-3, mb);
        let r = run(&p, &cfg(2).with_sampling(50_000));
        assert!(
            r.samples
                .iter()
                .any(|s| s.inflight_msgs > 0 && s.inflight_bytes > 0),
            "no sample saw in-flight traffic across {} samples",
            r.samples.len()
        );
        // In-flight drains to zero by the final sample.
        let last = r.samples.last().unwrap();
        assert_eq!(last.inflight_msgs, 0);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn inconsistent_graph_detected() {
        // task 1 declares 2 inputs but only one edge targets it
        let p = program(&[(0, 1, 0)], &[(1, 2)], &[], &[0], 2, 1e-3, 8);
        run(&p, &cfg(1));
    }

    #[test]
    #[should_panic(expected = "placed on node")]
    fn placement_out_of_range_detected() {
        let p = program(&[], &[], &[(0, 5)], &[0], 1, 1e-3, 8);
        run(&p, &cfg(2));
    }
}
