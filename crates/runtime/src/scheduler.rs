//! The pluggable scheduling surface: **which** ready task a worker picks
//! and **where** a task runs.
//!
//! The executors used to hard-code one policy (FIFO channels on the real
//! engines, a [`SchedulerPolicy`] enum on the simulator). This module
//! turns scheduling into a first-class API:
//!
//! * [`Scheduler`] — a factory bound into [`crate::RunConfig`] via
//!   [`crate::RunConfig::with_scheduler`]. Before a run starts, every
//!   engine calls [`Scheduler::instance`] once with a [`SchedContext`]
//!   (the program, the machine profile when one exists, the cluster
//!   shape) so the scheduler can precompute static ranks over the
//!   unfolded DAG ([`crate::UnfoldedDag`], the same graph the `analyze`
//!   crate's critical-path pass sweeps).
//! * [`TaskSelector`] — the per-run instance the engines consult. It is a
//!   **pure** oracle: [`TaskSelector::rank`] orders ready tasks (higher
//!   first, FIFO-by-arrival within a rank) and [`TaskSelector::place`]
//!   may override owner-computes placement. Selectors must be
//!   deterministic functions of the task key — no interior mutability, no
//!   clocks, no randomness — which is what keeps simulated runs
//!   bit-identical under a fixed configuration.
//!
//! The old [`SchedulerPolicy`] enum survives as a thin compatibility shim:
//! it implements [`Scheduler`] itself, so `with_policy(SchedulerPolicy::
//! Priority)` still works and existing call sites compile unchanged.
//!
//! # The list-scheduler portfolio
//!
//! On top of the trait this module ships the classic static list
//! schedulers, each computing one rank vector over the statically
//! unfolded DAG and then dispatching highest-rank-first:
//!
//! | name | rank of task *i* |
//! |------|------------------|
//! | [`HeftScheduler`] | upward rank `w(i) + max_j (c(i,j) + rank(j))` |
//! | [`PeftScheduler`] | optimistic cost table `max_j (OCT(j) + w(j) + c(i,j))` |
//! | [`DlsScheduler`]  | communication-free static level `w(i) + max_j sl(j)` |
//! | [`LookaheadScheduler`] | depth-limited upward rank (bounded horizon) |
//!
//! `w(i)` is the task's cost-model service time; `c(i,j)` is the
//! predicted dependence-edge delay: zero when producer and consumer share
//! a node under owner-computes placement, otherwise two comm-thread
//! processings plus the wire time from the run's [`netsim::NetworkModel`]
//! — exactly the latency the simulated executor charges a remote edge.
//! Under the runtime's fixed owner-computes placement HEFT's upward rank
//! and PEFT's OCT collapse to the same recurrence offset by the task's
//! own cost, so the two orderings differ precisely in whether a task's
//! own service time counts toward its urgency.
//!
//! # Schedulers and the work-stealing executors
//!
//! The real executors dispatch through per-worker lock-free deques (see
//! `docs/EXECUTOR.md`), which changes *where* each [`SelectMode`] is
//! enforced but not *what* it promises:
//!
//! * `Fifo` / `Lifo` lanes use the deque directly — FIFO owners pop from
//!   the steal end so local order matches the central-queue order, LIFO
//!   owners pop from the bottom;
//! * `Rank` lanes keep a small mutex-guarded
//!   [`ReadyQueue`](crate::ready_queue::ReadyQueue) per lane, because
//!   best-first selection needs a global view a deque cannot give;
//!   thieves lock it to steal the victim's best-ranked task.
//!
//! Determinism splits accordingly: the simulator remains **bit-identical**
//! under a fixed config, while the real engines are **seed-stable** — the
//! steal victim order is a pure function of
//! [`crate::RunConfig::with_steal_seed`], but OS thread timing still
//! decides which worker wins a race, so only per-lane order (not the
//! global interleaving) is reproducible.

use crate::task::{Program, TaskGraph, TaskKey};
use crate::unfold::UnfoldedDag;
use machine::MachineProfile;
use netsim::{NetworkModel, NodeId};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// How a [`TaskSelector`] orders the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectMode {
    /// Oldest ready task first; [`TaskSelector::rank`] is ignored.
    Fifo,
    /// Newest ready task first; [`TaskSelector::rank`] is ignored.
    Lifo,
    /// Highest [`TaskSelector::rank`] first, FIFO-by-arrival within a
    /// rank.
    Rank,
}

/// Everything a [`Scheduler`] may consult when instantiating its per-run
/// [`TaskSelector`]: the program (whose DAG it can unfold for static
/// ranks), the machine profile when the engine has one (the simulator
/// always does; the real engines run unmodeled), and the cluster shape.
#[derive(Clone, Copy)]
pub struct SchedContext<'a> {
    /// The program about to run.
    pub program: &'a Program,
    /// The machine/network model, when the engine applies one.
    pub profile: Option<&'a MachineProfile>,
    /// Number of nodes in the run.
    pub nodes: u32,
    /// Worker lanes per node.
    pub lanes: u32,
}

/// A per-run scheduling oracle, consulted by every engine's ready queue
/// (and placement path) during one run.
///
/// # Contract
///
/// Selection must be **pure and deterministic**: the same key must always
/// yield the same rank and placement, with no side effects — the
/// simulated executor's bit-identical replays and the cross-executor
/// equivalence tests both lean on this. Implementations precompute
/// anything expensive in [`Scheduler::instance`] and only look tables up
/// here.
pub trait TaskSelector: Send + Sync {
    /// The queue discipline. Defaults to rank order.
    fn mode(&self) -> SelectMode {
        SelectMode::Rank
    }

    /// Static urgency of `key`: higher ranks dispatch first, ties resolve
    /// FIFO by arrival order. Ignored under [`SelectMode::Fifo`] /
    /// [`SelectMode::Lifo`].
    fn rank(&self, key: TaskKey) -> i64 {
        let _ = key;
        0
    }

    /// Override the owner-computes placement of `key`, or `None` to keep
    /// the task class's [`crate::TaskClass::node_of`]. A returned node
    /// must be below the run's node count.
    fn place(&self, key: TaskKey) -> Option<NodeId> {
        let _ = key;
        None
    }
}

/// A scheduling policy that can be bound into a [`crate::RunConfig`]:
/// given the run's [`SchedContext`], produce the [`TaskSelector`] the
/// engines will consult.
pub trait Scheduler: Send + Sync {
    /// Stable short name, recorded in [`crate::RunReport::scheduler`] and
    /// every exported trace/metric header.
    fn name(&self) -> &str;

    /// Build the per-run selector. Called once per run, before any task
    /// is dispatched; this is where static ranks over the unfolded DAG
    /// are computed.
    fn instance(&self, ctx: &SchedContext<'_>) -> Arc<dyn TaskSelector>;
}

/// A cheaply clonable handle to a [`Scheduler`] trait object — the type
/// [`crate::RunConfig`] actually stores, so configs stay `Clone + Debug`.
///
/// ```
/// use runtime::SchedulerHandle;
///
/// let heft = SchedulerHandle::by_name("heft").expect("built-in");
/// assert_eq!(heft.name(), "heft");
/// assert_eq!(SchedulerHandle::default().name(), "fifo");
/// ```
#[derive(Clone)]
pub struct SchedulerHandle(Arc<dyn Scheduler>);

impl SchedulerHandle {
    /// Wrap a scheduler.
    pub fn new(scheduler: impl Scheduler + 'static) -> Self {
        SchedulerHandle(Arc::new(scheduler))
    }

    /// The scheduler's stable name.
    pub fn name(&self) -> &str {
        self.0.name()
    }

    /// Build the per-run selector (see [`Scheduler::instance`]).
    pub fn instance(&self, ctx: &SchedContext<'_>) -> Arc<dyn TaskSelector> {
        self.0.instance(ctx)
    }

    /// Every built-in scheduler, in a stable order: the three
    /// [`SchedulerPolicy`] shims first, then the static list schedulers.
    /// This is the lineup the `stencil-tournament` bench runs.
    pub fn portfolio() -> Vec<SchedulerHandle> {
        vec![
            SchedulerPolicy::Fifo.into(),
            SchedulerPolicy::Lifo.into(),
            SchedulerPolicy::Priority.into(),
            HeftScheduler.into(),
            PeftScheduler.into(),
            DlsScheduler.into(),
            LookaheadScheduler::default().into(),
        ]
    }

    /// Look a built-in scheduler up by its stable name.
    pub fn by_name(name: &str) -> Option<SchedulerHandle> {
        Self::portfolio().into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Debug for SchedulerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchedulerHandle({:?})", self.name())
    }
}

impl Default for SchedulerHandle {
    /// FIFO — the historical default of every engine.
    fn default() -> Self {
        SchedulerPolicy::Fifo.into()
    }
}

impl<S: Scheduler + 'static> From<S> for SchedulerHandle {
    fn from(s: S) -> Self {
        SchedulerHandle::new(s)
    }
}

/// Ready-queue discipline of the node-local scheduler — the original
/// closed policy set, kept as a compatibility shim over the [`Scheduler`]
/// trait (it implements the trait itself, so
/// [`crate::RunConfig::with_policy`] and
/// [`crate::RunConfig::with_scheduler`] accept it interchangeably).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SchedulerPolicy {
    /// Oldest ready task first (default; matches the real executor).
    Fifo,
    /// Newest ready task first (depth-first; PaRSEC's default locality
    /// heuristic).
    Lifo,
    /// Highest [`crate::task::TaskClass::priority`] first, FIFO within a
    /// level (e.g. boundary tiles before interior tiles, so their strips
    /// reach the comm thread early).
    Priority,
}

impl Scheduler for SchedulerPolicy {
    fn name(&self) -> &str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::Lifo => "lifo",
            SchedulerPolicy::Priority => "priority",
        }
    }

    fn instance(&self, ctx: &SchedContext<'_>) -> Arc<dyn TaskSelector> {
        match self {
            SchedulerPolicy::Fifo => Arc::new(FifoSelector),
            SchedulerPolicy::Lifo => Arc::new(LifoSelector),
            SchedulerPolicy::Priority => Arc::new(ClassPrioritySelector {
                graph: Arc::clone(&ctx.program.graph),
            }),
        }
    }
}

/// FIFO selection: oldest ready task first.
pub struct FifoSelector;

impl TaskSelector for FifoSelector {
    fn mode(&self) -> SelectMode {
        SelectMode::Fifo
    }
}

/// LIFO selection: newest ready task first.
pub struct LifoSelector;

impl TaskSelector for LifoSelector {
    fn mode(&self) -> SelectMode {
        SelectMode::Lifo
    }
}

/// Rank by the task class's declared [`crate::TaskClass::priority`] —
/// the dynamic behavior of the old `SchedulerPolicy::Priority`.
pub struct ClassPrioritySelector {
    /// The class registry priorities are read from.
    pub graph: Arc<TaskGraph>,
}

impl TaskSelector for ClassPrioritySelector {
    fn rank(&self, key: TaskKey) -> i64 {
        self.graph.class(key.class).priority(key.params) as i64
    }
}

/// A selector over a precomputed per-task rank table — the shared
/// back-end of every static list scheduler, and a convenient building
/// block for custom [`Scheduler`] implementations (fill the map from any
/// analysis you like). Tasks absent from the table rank 0.
///
/// ```
/// use runtime::scheduler::{StaticRanks, TaskSelector};
/// use runtime::TaskKey;
/// use std::collections::HashMap;
///
/// let urgent = TaskKey::new(0, [7, 0, 0, 0]);
/// let sel = StaticRanks::new(HashMap::from([(urgent, 100)]));
/// assert_eq!(sel.rank(urgent), 100);
/// assert_eq!(sel.rank(TaskKey::new(0, [8, 0, 0, 0])), 0); // unranked
/// ```
pub struct StaticRanks {
    ranks: HashMap<TaskKey, i64>,
}

impl StaticRanks {
    /// Selector over an explicit rank table.
    pub fn new(ranks: HashMap<TaskKey, i64>) -> Self {
        StaticRanks { ranks }
    }

    /// Number of ranked tasks.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when no task is ranked.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

impl TaskSelector for StaticRanks {
    fn rank(&self, key: TaskKey) -> i64 {
        self.ranks.get(&key).copied().unwrap_or(0)
    }
}

/// The per-edge delay model rank computations charge a dependence edge:
/// free when producer and consumer share a node, otherwise send
/// processing + wire time + receive processing — the same latency the
/// simulated executor pays for a remote flow. Without a machine profile
/// (the real engines) every edge is free and ranks degrade to
/// communication-free levels.
struct EdgeDelay {
    net: Option<(NetworkModel, f64)>,
}

impl EdgeDelay {
    fn new(profile: Option<&MachineProfile>) -> Self {
        EdgeDelay {
            net: profile.map(|p| (NetworkModel::from_profile(p), p.runtime_msg_cost)),
        }
    }

    fn cost(&self, same_node: bool, bytes: usize) -> f64 {
        if same_node {
            return 0.0;
        }
        match &self.net {
            Some((net, msg_cost)) => 2.0 * msg_cost + net.transfer_time(bytes.max(1)),
            None => 0.0,
        }
    }
}

/// Shared preamble of every list scheduler: unfold the DAG and order it.
/// `None` (cyclic or truncated graphs, which the executors reject anyway)
/// makes the scheduler degrade to FIFO rather than panic in `instance`.
fn unfolded(ctx: &SchedContext<'_>) -> Option<(UnfoldedDag, Vec<usize>)> {
    let dag = UnfoldedDag::enumerate(ctx.program);
    let topo = dag.topo_order()?;
    Some((dag, topo))
}

/// Convert per-task f64 ranks (seconds) to the selector's integer ranks
/// (nanoseconds), keeping comparisons exact and platform-independent.
fn rank_selector(dag: &UnfoldedDag, ranks: &[f64]) -> Arc<dyn TaskSelector> {
    let table = dag
        .tasks
        .iter()
        .zip(ranks)
        .map(|(&key, &r)| (key, (r * 1e9).round() as i64))
        .collect();
    Arc::new(StaticRanks::new(table))
}

/// Upward ranks: `rank(i) = w(i) + max over out-edges (c(i,j) + rank(j))`,
/// computed in one reverse-topological sweep.
fn upward_ranks(dag: &UnfoldedDag, topo: &[usize], delay: &EdgeDelay) -> Vec<f64> {
    let adj = dag.out_adjacency();
    let mut rank = vec![0.0f64; dag.len()];
    for &i in topo.iter().rev() {
        let mut tail = 0.0f64;
        for &ei in &adj[i] {
            let e = &dag.edges[ei as usize];
            let same = dag.node_of(e.producer) == dag.node_of(e.consumer);
            tail = tail.max(delay.cost(same, e.bytes) + rank[e.consumer]);
        }
        rank[i] = dag.cost_of(i) + tail;
    }
    rank
}

/// HEFT: dispatch by communication-aware upward rank (Topcuoglu et al.).
/// The deepest cost-weighted chain below a task — including the network
/// delays its flows will pay — runs first.
pub struct HeftScheduler;

impl Scheduler for HeftScheduler {
    fn name(&self) -> &str {
        "heft"
    }

    fn instance(&self, ctx: &SchedContext<'_>) -> Arc<dyn TaskSelector> {
        let Some((dag, topo)) = unfolded(ctx) else {
            return Arc::new(FifoSelector);
        };
        let ranks = upward_ranks(&dag, &topo, &EdgeDelay::new(ctx.profile));
        rank_selector(&dag, &ranks)
    }
}

/// PEFT: dispatch by the optimistic cost table (Arabnejad & Barbosa),
/// specialized to the runtime's fixed owner-computes placement:
/// `OCT(i) = max over out-edges (OCT(j) + w(j) + c(i,j))`, i.e. the
/// longest remaining path *after* the task itself — its own service time
/// is optimistically excluded from its urgency, which is exactly where
/// PEFT's ordering departs from HEFT's.
pub struct PeftScheduler;

impl Scheduler for PeftScheduler {
    fn name(&self) -> &str {
        "peft"
    }

    fn instance(&self, ctx: &SchedContext<'_>) -> Arc<dyn TaskSelector> {
        let Some((dag, topo)) = unfolded(ctx) else {
            return Arc::new(FifoSelector);
        };
        let up = upward_ranks(&dag, &topo, &EdgeDelay::new(ctx.profile));
        // OCT(i) = upward(i) - w(i): the recurrence above, collapsed.
        let oct: Vec<f64> = up
            .iter()
            .enumerate()
            .map(|(i, &r)| r - dag.cost_of(i))
            .collect();
        rank_selector(&dag, &oct)
    }
}

/// Dynamic-list scheduling: the static-level component of DLS (Sih &
/// Lee) — the communication-free bottom level `sl(i) = w(i) + max sl(j)`.
/// The dynamic component (earliest start time) is supplied by the ready
/// queue itself: a task only competes once its inputs arrived.
pub struct DlsScheduler;

impl Scheduler for DlsScheduler {
    fn name(&self) -> &str {
        "dls"
    }

    fn instance(&self, ctx: &SchedContext<'_>) -> Arc<dyn TaskSelector> {
        let Some((dag, topo)) = unfolded(ctx) else {
            return Arc::new(FifoSelector);
        };
        let free = EdgeDelay::new(None);
        let ranks = upward_ranks(&dag, &topo, &free);
        rank_selector(&dag, &ranks)
    }
}

/// Depth-limited lookahead: rank a task by the heaviest
/// communication-aware chain within `depth` successors —
/// `r_0(i) = w(i)`, `r_d(i) = w(i) + max (c(i,j) + r_{d-1}(j))` — so
/// urgency reflects the near-term tasks a dispatch unlocks rather than
/// the whole remaining graph. With `depth >= ` the DAG's height this is
/// HEFT; at small depths it trades global critical-path pressure for
/// responsiveness to the current frontier.
pub struct LookaheadScheduler {
    /// Successor horizon (levels of lookahead); 0 ranks by own cost only.
    pub depth: u32,
}

impl Default for LookaheadScheduler {
    /// Three levels — enough to see a stencil tile's halo consumers and
    /// their consumers.
    fn default() -> Self {
        LookaheadScheduler { depth: 3 }
    }
}

impl Scheduler for LookaheadScheduler {
    fn name(&self) -> &str {
        "lookahead"
    }

    fn instance(&self, ctx: &SchedContext<'_>) -> Arc<dyn TaskSelector> {
        let Some((dag, _topo)) = unfolded(ctx) else {
            return Arc::new(FifoSelector);
        };
        let delay = EdgeDelay::new(ctx.profile);
        let adj = dag.out_adjacency();
        let costs: Vec<f64> = (0..dag.len()).map(|i| dag.cost_of(i)).collect();
        // r_d depends only on r_{d-1}, so each horizon level is one full
        // sweep — no topological order needed.
        let mut prev = costs.clone();
        for _ in 0..self.depth {
            let mut next = costs.clone();
            for (i, adj_i) in adj.iter().enumerate() {
                let mut tail = 0.0f64;
                for &ei in adj_i {
                    let e = &dag.edges[ei as usize];
                    let same = dag.node_of(e.producer) == dag.node_of(e.consumer);
                    tail = tail.max(delay.cost(same, e.bytes) + prev[e.consumer]);
                }
                next[i] += tail;
            }
            prev = next;
        }
        rank_selector(&dag, &prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::testutil::ExplicitDag;
    use std::collections::HashMap as Map;

    /// 0 -> {1, 2}, 1 -> 3, 2 -> 3; unit costs, node 0 everywhere.
    fn diamond() -> Program {
        let mut edges: Map<i32, Vec<(i32, usize)>> = Map::new();
        edges.insert(0, vec![(1, 0), (2, 0)]);
        edges.insert(1, vec![(3, 0)]);
        edges.insert(2, vec![(3, 1)]);
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges,
            indeg: [(1, 1), (2, 1), (3, 2)].into_iter().collect(),
            node: Map::new(),
            cost: 1.0,
            bytes: 8,
        }));
        Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: 4,
        }
    }

    fn ctx(p: &Program) -> SchedContext<'_> {
        SchedContext {
            program: p,
            profile: None,
            nodes: 1,
            lanes: 1,
        }
    }

    fn key(i: i32) -> TaskKey {
        TaskKey::new(0, [i, 0, 0, 0])
    }

    #[test]
    fn heft_ranks_are_upward_path_lengths() {
        let p = diamond();
        let sel = HeftScheduler.instance(&ctx(&p));
        // root sits on a 3-deep chain, mids on 2, the sink on 1 (seconds
        // scaled to integer nanoseconds).
        assert_eq!(sel.rank(key(0)), 3_000_000_000);
        assert_eq!(sel.rank(key(1)), 2_000_000_000);
        assert_eq!(sel.rank(key(2)), 2_000_000_000);
        assert_eq!(sel.rank(key(3)), 1_000_000_000);
    }

    #[test]
    fn peft_oct_excludes_own_cost() {
        let p = diamond();
        let heft = HeftScheduler.instance(&ctx(&p));
        let peft = PeftScheduler.instance(&ctx(&p));
        for i in 0..4 {
            assert_eq!(peft.rank(key(i)), heft.rank(key(i)) - 1_000_000_000);
        }
    }

    #[test]
    fn dls_ignores_comm_and_lookahead_truncates() {
        let p = diamond();
        let dls = DlsScheduler.instance(&ctx(&p));
        assert_eq!(dls.rank(key(0)), 3_000_000_000);
        // depth 0: own cost only
        let la0 = LookaheadScheduler { depth: 0 }.instance(&ctx(&p));
        assert_eq!(la0.rank(key(0)), 1_000_000_000);
        // depth 1: one successor level
        let la1 = LookaheadScheduler { depth: 1 }.instance(&ctx(&p));
        assert_eq!(la1.rank(key(0)), 2_000_000_000);
        // deep enough: equals HEFT (no profile, so comm-free)
        let la9 = LookaheadScheduler { depth: 9 }.instance(&ctx(&p));
        assert_eq!(la9.rank(key(0)), 3_000_000_000);
    }

    #[test]
    fn remote_edges_raise_heft_ranks_under_a_profile() {
        // 0 on node 0 feeds 1 on node 1: the edge pays network delay.
        let mut edges: Map<i32, Vec<(i32, usize)>> = Map::new();
        edges.insert(0, vec![(1, 0)]);
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges,
            indeg: [(1, 1)].into_iter().collect(),
            node: [(1, 1)].into_iter().collect(),
            cost: 1.0,
            bytes: 1 << 20,
        }));
        let p = Program {
            graph: Arc::new(g),
            roots: vec![TaskKey::new(0, [0, 0, 0, 0])],
            total_tasks: 2,
        };
        let profile = MachineProfile::nacl();
        let remote_ctx = SchedContext {
            program: &p,
            profile: Some(&profile),
            nodes: 2,
            lanes: 1,
        };
        let with_net = HeftScheduler.instance(&remote_ctx);
        let without = HeftScheduler.instance(&ctx(&p));
        assert!(
            with_net.rank(key(0)) > without.rank(key(0)),
            "remote edge must add network delay: {} vs {}",
            with_net.rank(key(0)),
            without.rank(key(0))
        );
        let net = NetworkModel::from_profile(&profile);
        let expected = 2.0 + 2.0 * profile.runtime_msg_cost + net.transfer_time(1 << 20);
        assert_eq!(with_net.rank(key(0)), (expected * 1e9).round() as i64);
    }

    #[test]
    fn policy_shim_names_and_selectors() {
        let p = diamond();
        assert_eq!(Scheduler::name(&SchedulerPolicy::Fifo), "fifo");
        assert_eq!(Scheduler::name(&SchedulerPolicy::Lifo), "lifo");
        assert_eq!(Scheduler::name(&SchedulerPolicy::Priority), "priority");
        assert_eq!(
            SchedulerPolicy::Fifo.instance(&ctx(&p)).mode(),
            SelectMode::Fifo
        );
        assert_eq!(
            SchedulerPolicy::Lifo.instance(&ctx(&p)).mode(),
            SelectMode::Lifo
        );
        let pri = SchedulerPolicy::Priority.instance(&ctx(&p));
        assert_eq!(pri.mode(), SelectMode::Rank);
        assert_eq!(pri.rank(key(0)), 0, "ExplicitDag declares no priority");
    }

    #[test]
    fn portfolio_is_stable_and_resolvable() {
        let names: Vec<String> = SchedulerHandle::portfolio()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(
            names,
            [
                "fifo",
                "lifo",
                "priority",
                "heft",
                "peft",
                "dls",
                "lookahead"
            ]
        );
        for n in &names {
            assert_eq!(SchedulerHandle::by_name(n).unwrap().name(), n);
        }
        assert!(SchedulerHandle::by_name("nope").is_none());
        assert_eq!(SchedulerHandle::default().name(), "fifo");
        assert_eq!(
            format!("{:?}", SchedulerHandle::new(HeftScheduler)),
            "SchedulerHandle(\"heft\")"
        );
    }

    #[test]
    fn placement_hook_defaults_to_owner_computes() {
        let p = diamond();
        let sel = HeftScheduler.instance(&ctx(&p));
        assert_eq!(sel.place(key(0)), None);
    }
}
