//! The node-local ready queue, parameterized by a scheduling oracle.
//!
//! PaRSEC's schedulers differ in which ready task a worker picks; the
//! queue itself only knows three disciplines — FIFO (breadth-first,
//! fair), LIFO (depth-first, cache-friendly), and rank order (highest
//! [`TaskSelector::rank`] first, FIFO within a level). Everything
//! policy-specific — class priorities, HEFT/PEFT upward ranks, lookahead
//! — lives behind the [`TaskSelector`] the queue is built with; see
//! [`crate::scheduler`].
//!
//! Since the work-stealing overhaul (see `docs/EXECUTOR.md`), the real
//! executors no longer funnel every dispatch through one
//! `Mutex<ReadyQueue>`. The queue survives in two narrower roles:
//!
//! * the shared **injector** — externally-released tasks (program
//!   roots, arrivals from the comm thread) and local-deque overflow
//!   spill land here, drained by any worker between deque polls;
//! * the **per-lane rank queue** — rank-order selection needs a global
//!   best-first view a lock-free deque cannot give, so `Rank`-mode
//!   lanes each hold a small mutex-guarded `ReadyQueue` that thieves
//!   lock to steal the victim's best-ranked task.
//!
//! The simulator still uses one central `ReadyQueue` per node, which is
//! what keeps its dispatch order — and `BENCH_stencil.json` —
//! bit-identical across the overhaul.

use crate::pending::ReadyTask;
use crate::scheduler::{SelectMode, TaskSelector};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

struct Entry {
    rank: i64,
    seq: u64,
    task: ReadyTask,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap: higher rank first, FIFO (lower seq) within a level
        self.rank
            .cmp(&other.rank)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A selector-aware ready queue. Ranks are computed once, at push time —
/// the selector contract (pure, static) makes the value at pop time
/// identical, and it keeps `pop` O(log n) regardless of the selector.
///
/// ```
/// use runtime::ready_queue::ReadyQueue;
/// use runtime::scheduler::FifoSelector;
/// use runtime::{ReadyTask, TaskKey};
/// use std::sync::Arc;
///
/// let mut q = ReadyQueue::new(Arc::new(FifoSelector));
/// for i in 0..3 {
///     q.push(ReadyTask { key: TaskKey::new(0, [i, 0, 0, 0]), inputs: Vec::new() });
/// }
/// // FIFO discipline: pops in push order.
/// assert_eq!(q.pop().unwrap().key.params[0], 0);
/// assert_eq!(q.len(), 2);
/// ```
pub struct ReadyQueue {
    mode: SelectMode,
    selector: Arc<dyn TaskSelector>,
    deque: VecDeque<ReadyTask>,
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl ReadyQueue {
    /// Empty queue consulting the given selector.
    pub fn new(selector: Arc<dyn TaskSelector>) -> Self {
        ReadyQueue {
            mode: selector.mode(),
            selector,
            deque: VecDeque::new(),
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Enqueue a ready task. In `Rank` mode the selector's rank is
    /// computed here, once — the selector is pure and static, so the
    /// rank cannot change between push and pop — and the push is
    /// stamped with a monotone sequence number that breaks rank ties
    /// FIFO. This pair is what makes rank-mode dispatch deterministic
    /// for a fixed arrival order.
    pub fn push(&mut self, task: ReadyTask) {
        match self.mode {
            SelectMode::Fifo | SelectMode::Lifo => self.deque.push_back(task),
            SelectMode::Rank => {
                let rank = self.selector.rank(task.key);
                let seq = self.seq;
                self.seq += 1;
                self.heap.push(Entry { rank, seq, task });
            }
        }
    }

    /// Take the next task per the selector's discipline: front for
    /// FIFO, back for LIFO, highest rank (lowest seq within a rank
    /// level) for rank mode.
    pub fn pop(&mut self) -> Option<ReadyTask> {
        match self.mode {
            SelectMode::Fifo => self.deque.pop_front(),
            SelectMode::Lifo => self.deque.pop_back(),
            SelectMode::Rank => self.heap.pop().map(|e| e.task),
        }
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty() && self.heap.is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.deque.len() + self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FifoSelector, LifoSelector, StaticRanks};
    use crate::task::TaskKey;
    use std::collections::HashMap;

    fn task(i: i32) -> ReadyTask {
        ReadyTask {
            key: TaskKey::new(0, [i, 0, 0, 0]),
            inputs: Vec::new(),
        }
    }

    fn ranked(ranks: &[(i32, i64)]) -> Arc<dyn TaskSelector> {
        let table: HashMap<TaskKey, i64> = ranks
            .iter()
            .map(|&(i, r)| (TaskKey::new(0, [i, 0, 0, 0]), r))
            .collect();
        Arc::new(StaticRanks::new(table))
    }

    fn drain_ids(q: &mut ReadyQueue) -> Vec<i32> {
        let mut out = Vec::new();
        while let Some(t) = q.pop() {
            out.push(t.key.params[0]);
        }
        out
    }

    #[test]
    fn fifo_order() {
        let mut q = ReadyQueue::new(Arc::new(FifoSelector));
        for i in 0..4 {
            q.push(task(i));
        }
        assert_eq!(q.len(), 4);
        assert_eq!(drain_ids(&mut q), vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn lifo_order() {
        let mut q = ReadyQueue::new(Arc::new(LifoSelector));
        for i in 0..4 {
            q.push(task(i));
        }
        assert_eq!(drain_ids(&mut q), vec![3, 2, 1, 0]);
    }

    #[test]
    fn rank_order_with_fifo_ties() {
        let mut q = ReadyQueue::new(ranked(&[(0, 0), (1, 5), (2, 0), (3, 5), (4, -1)]));
        for i in 0..5 {
            q.push(task(i));
        }
        assert_eq!(drain_ids(&mut q), vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn unranked_tasks_default_to_zero() {
        let mut q = ReadyQueue::new(ranked(&[(1, 1)]));
        q.push(task(0)); // not in the table -> rank 0
        q.push(task(1));
        assert_eq!(drain_ids(&mut q), vec![1, 0]);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = ReadyQueue::new(ranked(&[]));
        assert!(q.pop().is_none());
    }
}
