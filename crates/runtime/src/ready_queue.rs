//! The node-local ready queue, parameterized by scheduling policy.
//!
//! PaRSEC's schedulers differ in which ready task a worker picks; the
//! policies here are the ones the experiments ablate: FIFO (breadth-first,
//! fair), LIFO (depth-first, cache-friendly), and priority order (e.g.
//! boundary tiles first, so their strips reach the communication thread
//! as early as possible — a standard PaRSEC trick for hiding latency).

use crate::pending::ReadyTask;
use crate::sim_exec::SchedulerPolicy;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

struct Entry {
    priority: i32,
    seq: u64,
    task: ReadyTask,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap: higher priority first, FIFO (lower seq) within a level
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A policy-aware ready queue.
pub struct ReadyQueue {
    policy: SchedulerPolicy,
    deque: VecDeque<ReadyTask>,
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl ReadyQueue {
    /// Empty queue with the given policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        ReadyQueue {
            policy,
            deque: VecDeque::new(),
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Enqueue a ready task with its priority (ignored by FIFO/LIFO).
    pub fn push(&mut self, task: ReadyTask, priority: i32) {
        match self.policy {
            SchedulerPolicy::Fifo | SchedulerPolicy::Lifo => self.deque.push_back(task),
            SchedulerPolicy::Priority => {
                let seq = self.seq;
                self.seq += 1;
                self.heap.push(Entry {
                    priority,
                    seq,
                    task,
                });
            }
        }
    }

    /// Take the next task per the policy.
    pub fn pop(&mut self) -> Option<ReadyTask> {
        match self.policy {
            SchedulerPolicy::Fifo => self.deque.pop_front(),
            SchedulerPolicy::Lifo => self.deque.pop_back(),
            SchedulerPolicy::Priority => self.heap.pop().map(|e| e.task),
        }
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty() && self.heap.is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.deque.len() + self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKey;

    fn task(i: i32) -> ReadyTask {
        ReadyTask {
            key: TaskKey::new(0, [i, 0, 0, 0]),
            inputs: Vec::new(),
        }
    }

    fn drain_ids(q: &mut ReadyQueue) -> Vec<i32> {
        let mut out = Vec::new();
        while let Some(t) = q.pop() {
            out.push(t.key.params[0]);
        }
        out
    }

    #[test]
    fn fifo_order() {
        let mut q = ReadyQueue::new(SchedulerPolicy::Fifo);
        for i in 0..4 {
            q.push(task(i), 0);
        }
        assert_eq!(q.len(), 4);
        assert_eq!(drain_ids(&mut q), vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn lifo_order() {
        let mut q = ReadyQueue::new(SchedulerPolicy::Lifo);
        for i in 0..4 {
            q.push(task(i), 0);
        }
        assert_eq!(drain_ids(&mut q), vec![3, 2, 1, 0]);
    }

    #[test]
    fn priority_order_with_fifo_ties() {
        let mut q = ReadyQueue::new(SchedulerPolicy::Priority);
        q.push(task(0), 0);
        q.push(task(1), 5);
        q.push(task(2), 0);
        q.push(task(3), 5);
        q.push(task(4), -1);
        assert_eq!(drain_ids(&mut q), vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn empty_pop_is_none() {
        let mut q = ReadyQueue::new(SchedulerPolicy::Priority);
        assert!(q.pop().is_none());
    }
}
