//! Whole-graph consistency checking.
//!
//! The PTG style keeps producer→consumer edges in the producer's
//! `outputs()` and the expected in-degree in the consumer's
//! `activation_count()`; nothing forces the two to agree. For production
//! runs the runtime trusts the class (as PaRSEC trusts a JDF), but tests
//! and examples call [`validate_program`] to enumerate the whole unfolded
//! DAG from the roots and cross-check every declaration.

use crate::task::{Program, TaskKey};
use std::collections::{HashMap, HashSet, VecDeque};

/// A violated graph invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A task's declared activation count differs from the number of flows
    /// actually targeting it.
    IndegreeMismatch {
        /// The inconsistent task.
        task: String,
        /// What `activation_count` declares.
        declared: usize,
        /// How many producer flows target the task.
        actual: usize,
    },
    /// Two producers (or one producer twice) feed the same input slot.
    SlotCollision {
        /// The consuming task.
        task: String,
        /// The contended slot.
        slot: usize,
    },
    /// An `OutputDep` names a slot outside the consumer's declared range.
    SlotOutOfRange {
        /// The consuming task.
        task: String,
        /// The referenced slot.
        slot: usize,
        /// The consumer's `num_input_slots`.
        slots: usize,
    },
    /// An `OutputDep` names a flow index outside the producer's declared
    /// `num_output_flows`.
    FlowOutOfRange {
        /// The producing task.
        task: String,
        /// The referenced flow.
        flow: usize,
        /// The producer's `num_output_flows`.
        flows: usize,
    },
    /// The number of reachable tasks differs from `Program::total_tasks`.
    TotalMismatch {
        /// What the program declares.
        declared: u64,
        /// How many tasks are reachable from the roots.
        reachable: u64,
    },
    /// A task is reachable but can never fire (declared in-degree exceeds
    /// incoming flows — subsumed by `IndegreeMismatch`, kept for clarity
    /// when the mismatch would deadlock the run).
    Unfireable {
        /// The doomed task.
        task: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::IndegreeMismatch {
                task,
                declared,
                actual,
            } => write!(
                f,
                "{task}: declares {declared} inputs but {actual} flows target it"
            ),
            GraphError::SlotCollision { task, slot } => {
                write!(f, "{task}: input slot {slot} fed by multiple flows")
            }
            GraphError::SlotOutOfRange { task, slot, slots } => {
                write!(f, "{task}: slot {slot} out of range (has {slots})")
            }
            GraphError::FlowOutOfRange { task, flow, flows } => {
                write!(f, "{task}: flow {flow} out of range (has {flows})")
            }
            GraphError::TotalMismatch {
                declared,
                reachable,
            } => write!(
                f,
                "program declares {declared} tasks but {reachable} are reachable"
            ),
            GraphError::Unfireable { task } => {
                write!(f, "{task}: will never receive all declared inputs")
            }
        }
    }
}

/// Enumerate the full DAG from the roots and verify every invariant.
/// Returns all violations found (empty = consistent).
///
/// Cost is proportional to the full task count — use on test-sized
/// programs, not production problem sizes.
pub fn validate_program(program: &Program) -> Vec<GraphError> {
    let graph = &program.graph;
    let mut errors = Vec::new();
    let mut seen: HashSet<TaskKey> = HashSet::new();
    let mut incoming: HashMap<TaskKey, HashMap<usize, usize>> = HashMap::new(); // task -> slot -> count
    let mut queue: VecDeque<TaskKey> = VecDeque::new();

    for &root in &program.roots {
        if seen.insert(root) {
            queue.push_back(root);
        }
    }

    while let Some(key) = queue.pop_front() {
        let class = graph.class(key.class);
        let flows = class.num_output_flows(key.params);
        for dep in class.outputs(key.params) {
            if dep.flow >= flows {
                errors.push(GraphError::FlowOutOfRange {
                    task: format!("{key:?}"),
                    flow: dep.flow,
                    flows,
                });
            }
            let cclass = graph.class(dep.consumer.class);
            let slots = cclass.num_input_slots(dep.consumer.params);
            if dep.slot >= slots {
                errors.push(GraphError::SlotOutOfRange {
                    task: format!("{:?}", dep.consumer),
                    slot: dep.slot,
                    slots,
                });
            }
            *incoming
                .entry(dep.consumer)
                .or_default()
                .entry(dep.slot)
                .or_default() += 1;
            if seen.insert(dep.consumer) {
                queue.push_back(dep.consumer);
            }
        }
    }

    for &key in &seen {
        let class = graph.class(key.class);
        let declared = class.activation_count(key.params);
        let slots = incoming.get(&key);
        let actual: usize = slots.map_or(0, |m| m.values().sum());
        if declared != actual {
            errors.push(GraphError::IndegreeMismatch {
                task: format!("{key:?}"),
                declared,
                actual,
            });
            if declared > actual {
                errors.push(GraphError::Unfireable {
                    task: format!("{key:?}"),
                });
            }
        }
        if let Some(m) = slots {
            for (&slot, &count) in m {
                if count > 1 {
                    errors.push(GraphError::SlotCollision {
                        task: format!("{key:?}"),
                        slot,
                    });
                }
            }
        }
    }

    let reachable = seen.len() as u64;
    if reachable != program.total_tasks {
        errors.push(GraphError::TotalMismatch {
            declared: program.total_tasks,
            reachable,
        });
    }

    errors
}

/// Panic with a readable report if the program is inconsistent; tests and
/// examples call this before running.
pub fn assert_valid(program: &Program) {
    let errors = validate_program(program);
    if !errors.is_empty() {
        let report: Vec<String> = errors.iter().take(20).map(|e| e.to_string()).collect();
        panic!(
            "task graph is inconsistent ({} errors):\n  {}",
            errors.len(),
            report.join("\n  ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::testutil::ExplicitDag;
    use crate::task::{TaskGraph, TaskKey};
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn program(
        edges: &[(i32, i32, usize)],
        indeg: &[(i32, usize)],
        roots: &[i32],
        total: u64,
    ) -> Program {
        let mut edge_map: Map<i32, Vec<(i32, usize)>> = Map::new();
        for &(from, to, slot) in edges {
            edge_map.entry(from).or_default().push((to, slot));
        }
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges: edge_map,
            indeg: indeg.iter().copied().collect(),
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        Program {
            graph: Arc::new(g),
            roots: roots
                .iter()
                .map(|&i| TaskKey::new(0, [i, 0, 0, 0]))
                .collect(),
            total_tasks: total,
        }
    }

    #[test]
    fn consistent_diamond_validates() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let p = program(
            &[(0, 1, 0), (0, 2, 0), (1, 3, 0), (2, 3, 1)],
            &[(1, 1), (2, 1), (3, 2)],
            &[0],
            4,
        );
        assert!(validate_program(&p).is_empty());
        assert_valid(&p);
    }

    #[test]
    fn detects_indegree_mismatch() {
        let p = program(&[(0, 1, 0)], &[(1, 2)], &[0], 2);
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            GraphError::IndegreeMismatch {
                declared: 2,
                actual: 1,
                ..
            }
        )));
        assert!(errs
            .iter()
            .any(|e| matches!(e, GraphError::Unfireable { .. })));
    }

    #[test]
    fn detects_slot_collision() {
        // both edges from 0 land in slot 0 of task 1
        let p = program(&[(0, 1, 0), (0, 1, 0)], &[(1, 2)], &[0], 2);
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, GraphError::SlotCollision { slot: 0, .. })));
    }

    #[test]
    fn detects_slot_out_of_range() {
        // task 1 declares indegree 1 => 1 slot, edge targets slot 3
        let p = program(&[(0, 1, 3)], &[(1, 1)], &[0], 2);
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            GraphError::SlotOutOfRange {
                slot: 3,
                slots: 1,
                ..
            }
        )));
    }

    #[test]
    fn detects_total_mismatch() {
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[0], 5);
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            GraphError::TotalMismatch {
                declared: 5,
                reachable: 2
            }
        )));
    }

    #[test]
    #[should_panic(expected = "task graph is inconsistent")]
    fn assert_valid_panics_on_bad_graph() {
        let p = program(&[(0, 1, 0)], &[(1, 3)], &[0], 2);
        assert_valid(&p);
    }
}
