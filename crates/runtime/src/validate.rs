//! Whole-graph consistency checking — **deprecated shim**.
//!
//! The checks this module performed now live in [`crate::unfold`] (which
//! also exposes the enumerated DAG itself) and are subsumed by the
//! `analyze` crate's `analyze_program`/`assert_clean`, which add cycle,
//! write-race, communication-volume and critical-path passes on top.
//! Mirroring the executor `run_*` shims of the unified `run()` API, the
//! old entry points remain as thin deprecated wrappers so existing
//! callers keep compiling unchanged.

use crate::task::Program;
use crate::unfold::{StructuralFault, UnfoldedDag};

/// A violated graph invariant (legacy shape; [`StructuralFault`] is the
/// current form, with `TaskKey` witnesses instead of strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A task's declared activation count differs from the number of flows
    /// actually targeting it.
    IndegreeMismatch {
        /// The inconsistent task.
        task: String,
        /// What `activation_count` declares.
        declared: usize,
        /// How many producer flows target the task.
        actual: usize,
    },
    /// Two producers (or one producer twice) feed the same input slot.
    SlotCollision {
        /// The consuming task.
        task: String,
        /// The contended slot.
        slot: usize,
    },
    /// An `OutputDep` names a slot outside the consumer's declared range.
    SlotOutOfRange {
        /// The consuming task.
        task: String,
        /// The referenced slot.
        slot: usize,
        /// The consumer's `num_input_slots`.
        slots: usize,
    },
    /// An `OutputDep` names a flow index outside the producer's declared
    /// `num_output_flows`.
    FlowOutOfRange {
        /// The producing task.
        task: String,
        /// The referenced flow.
        flow: usize,
        /// The producer's `num_output_flows`.
        flows: usize,
    },
    /// The number of reachable tasks differs from `Program::total_tasks`.
    TotalMismatch {
        /// What the program declares.
        declared: u64,
        /// How many tasks are reachable from the roots.
        reachable: u64,
    },
    /// A task is reachable but can never fire (declared in-degree exceeds
    /// incoming flows — subsumed by `IndegreeMismatch`, kept for clarity
    /// when the mismatch would deadlock the run).
    Unfireable {
        /// The doomed task.
        task: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::IndegreeMismatch {
                task,
                declared,
                actual,
            } => write!(
                f,
                "{task}: declares {declared} inputs but {actual} flows target it"
            ),
            GraphError::SlotCollision { task, slot } => {
                write!(f, "{task}: input slot {slot} fed by multiple flows")
            }
            GraphError::SlotOutOfRange { task, slot, slots } => {
                write!(f, "{task}: slot {slot} out of range (has {slots})")
            }
            GraphError::FlowOutOfRange { task, flow, flows } => {
                write!(f, "{task}: flow {flow} out of range (has {flows})")
            }
            GraphError::TotalMismatch {
                declared,
                reachable,
            } => write!(
                f,
                "program declares {declared} tasks but {reachable} are reachable"
            ),
            GraphError::Unfireable { task } => {
                write!(f, "{task}: will never receive all declared inputs")
            }
        }
    }
}

/// Enumerate the full DAG from the roots and verify every invariant.
/// Returns all violations found (empty = consistent).
#[deprecated(note = "use analyze::analyze_program, or runtime::unfold::UnfoldedDag directly")]
pub fn validate_program(program: &Program) -> Vec<GraphError> {
    let dag = UnfoldedDag::enumerate(program);
    let mut errors = Vec::new();
    for fault in &dag.faults {
        match *fault {
            StructuralFault::FlowOutOfRange { task, flow, flows } => {
                errors.push(GraphError::FlowOutOfRange {
                    task: format!("{task:?}"),
                    flow,
                    flows,
                });
            }
            StructuralFault::SlotOutOfRange { task, slot, slots } => {
                errors.push(GraphError::SlotOutOfRange {
                    task: format!("{task:?}"),
                    slot,
                    slots,
                });
            }
            StructuralFault::SlotCollision { task, slot } => {
                errors.push(GraphError::SlotCollision {
                    task: format!("{task:?}"),
                    slot,
                });
            }
            StructuralFault::IndegreeMismatch {
                task,
                declared,
                actual,
            } => {
                errors.push(GraphError::IndegreeMismatch {
                    task: format!("{task:?}"),
                    declared,
                    actual,
                });
                if declared > actual {
                    errors.push(GraphError::Unfireable {
                        task: format!("{task:?}"),
                    });
                }
            }
            StructuralFault::TotalMismatch {
                declared,
                reachable,
            } => {
                errors.push(GraphError::TotalMismatch {
                    declared,
                    reachable,
                });
            }
            // the legacy enum has no truncation variant; report it as a
            // total mismatch against what was enumerated
            StructuralFault::Truncated { .. } => {
                errors.push(GraphError::TotalMismatch {
                    declared: program.total_tasks,
                    reachable: dag.len() as u64,
                });
            }
        }
    }
    errors
}

/// Panic with a readable report if the program is inconsistent.
#[deprecated(note = "use analyze::assert_clean, or runtime::unfold::assert_consistent")]
pub fn assert_valid(program: &Program) {
    #[allow(deprecated)]
    let errors = validate_program(program);
    if !errors.is_empty() {
        let report: Vec<String> = errors.iter().take(20).map(|e| e.to_string()).collect();
        panic!(
            "task graph is inconsistent ({} errors):\n  {}",
            errors.len(),
            report.join("\n  ")
        );
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::task::testutil::ExplicitDag;
    use crate::task::{TaskGraph, TaskKey};
    use std::collections::HashMap as Map;
    use std::sync::Arc;

    fn program(
        edges: &[(i32, i32, usize)],
        indeg: &[(i32, usize)],
        roots: &[i32],
        total: u64,
    ) -> Program {
        let mut edge_map: Map<i32, Vec<(i32, usize)>> = Map::new();
        for &(from, to, slot) in edges {
            edge_map.entry(from).or_default().push((to, slot));
        }
        let mut g = TaskGraph::new();
        g.add_class(Arc::new(ExplicitDag {
            name: "t".into(),
            edges: edge_map,
            indeg: indeg.iter().copied().collect(),
            node: Map::new(),
            cost: 0.0,
            bytes: 8,
        }));
        Program {
            graph: Arc::new(g),
            roots: roots
                .iter()
                .map(|&i| TaskKey::new(0, [i, 0, 0, 0]))
                .collect(),
            total_tasks: total,
        }
    }

    #[test]
    fn consistent_diamond_validates() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let p = program(
            &[(0, 1, 0), (0, 2, 0), (1, 3, 0), (2, 3, 1)],
            &[(1, 1), (2, 1), (3, 2)],
            &[0],
            4,
        );
        assert!(validate_program(&p).is_empty());
        assert_valid(&p);
    }

    #[test]
    fn detects_indegree_mismatch() {
        let p = program(&[(0, 1, 0)], &[(1, 2)], &[0], 2);
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            GraphError::IndegreeMismatch {
                declared: 2,
                actual: 1,
                ..
            }
        )));
        assert!(errs
            .iter()
            .any(|e| matches!(e, GraphError::Unfireable { .. })));
    }

    #[test]
    fn detects_slot_collision() {
        // both edges from 0 land in slot 0 of task 1
        let p = program(&[(0, 1, 0), (0, 1, 0)], &[(1, 2)], &[0], 2);
        let errs = validate_program(&p);
        assert!(errs
            .iter()
            .any(|e| matches!(e, GraphError::SlotCollision { slot: 0, .. })));
    }

    #[test]
    fn detects_slot_out_of_range() {
        // task 1 declares indegree 1 => 1 slot, edge targets slot 3
        let p = program(&[(0, 1, 3)], &[(1, 1)], &[0], 2);
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            GraphError::SlotOutOfRange {
                slot: 3,
                slots: 1,
                ..
            }
        )));
    }

    #[test]
    fn detects_total_mismatch() {
        let p = program(&[(0, 1, 0)], &[(1, 1)], &[0], 5);
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            GraphError::TotalMismatch {
                declared: 5,
                reachable: 2
            }
        )));
    }

    #[test]
    #[should_panic(expected = "task graph is inconsistent")]
    fn assert_valid_panics_on_bad_graph() {
        let p = program(&[(0, 1, 0)], &[(1, 3)], &[0], 2);
        assert_valid(&p);
    }
}
