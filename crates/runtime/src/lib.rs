//! # runtime — a PaRSEC-like dataflow task runtime
//!
//! The paper delegates inter-node communication of a 2D stencil to the
//! PaRSEC runtime; this crate is a from-scratch Rust reimplementation of
//! the parts that carry the paper's argument:
//!
//! * [`task`] — the Parameterized Task Graph model: task classes indexed
//!   by integer parameters, declaring placement, dataflow inputs and
//!   consumers as pure functions ([`TaskClass`], [`TaskGraph`],
//!   [`Program`]);
//! * [`pending`] — dynamic DAG unfolding by activation counting
//!   ([`PendingTable`]);
//! * [`validate`] — whole-graph consistency checking for tests
//!   ([`validate::assert_valid`]);
//! * [`real_exec`] — a shared-memory executor with real threads and real
//!   task bodies (the paper's single-node runs, Figure 6);
//! * [`mp_exec`] — a multi-process-semantics executor: a thread pool per
//!   node plus a per-node communication thread, real channel-borne
//!   messages (stress-tests the distributed logic under true races);
//! * [`sim_exec`] — a virtual-time executor over [`desim`]/[`netsim`]: a
//!   whole cluster per run, one comm thread per node, optional real body
//!   execution, trace capture (Figures 7–10);
//! * [`profiling`] — Figure 10-style occupancy/Gantt analysis;
//! * [`dtd`] — the Dynamic Task Discovery insertion API (PaRSEC's second
//!   DSL) as an alternative front-end;
//! * [`halo`] — the paper's future-work feature: a generic
//!   communication-avoiding halo-exchange framework where the runtime
//!   generates and schedules the redundant tasks transparently.

pub mod dtd;
pub mod halo;
pub mod mp_exec;
pub mod pending;
pub mod profiling;
pub mod ready_queue;
pub mod real_exec;
pub mod sim_exec;
pub mod task;
pub mod validate;

pub use dtd::{DtdBuilder, DtdTaskId};
pub use halo::{build_halo_program, HaloSpec};
pub use mp_exec::{run_multiprocess, MpRunReport};
pub use pending::{PendingTable, ReadyTask};
pub use real_exec::{run_shared_memory, RealRunReport};
pub use sim_exec::{run_simulated, SchedulerPolicy, SimConfig, SimRunReport, KIND_COMM};
pub use task::{ClassId, FlowData, OutputDep, Params, Program, TaskClass, TaskGraph, TaskKey};
pub use validate::{assert_valid, validate_program, GraphError};
