//! # runtime — a PaRSEC-like dataflow task runtime
//!
//! The paper delegates inter-node communication of a 2D stencil to the
//! PaRSEC runtime; this crate is a from-scratch Rust reimplementation of
//! the parts that carry the paper's argument:
//!
//! * [`task`] — the Parameterized Task Graph model: task classes indexed
//!   by integer parameters, declaring placement, dataflow inputs and
//!   consumers as pure functions ([`TaskClass`], [`TaskGraph`],
//!   [`Program`]);
//! * [`pending`] — dynamic DAG unfolding by activation counting
//!   ([`PendingTable`]; the real engines use the lock-sharded
//!   [`ShardedPending`] with batched per-shard delivery);
//! * [`deque`] — the bounded Chase–Lev work-stealing deque
//!   ([`StealDeque`]) each real-engine worker owns; the dispatch loop
//!   built on it (local pop → injector → seeded steal sweep) is shared
//!   by both real engines and documented in `docs/EXECUTOR.md`;
//! * [`unfold`] — static enumeration of the whole DAG as data
//!   ([`UnfoldedDag`]), the substrate of the `analyze` crate's passes and
//!   the graph the `insight` crate joins dynamic spans against;
//! * [`exec`] — **the single entry point**: [`run`] dispatches a
//!   [`Program`] to any engine selected by a builder-style [`RunConfig`]
//!   ([`ExecMode::SharedMemory`], [`ExecMode::MultiProcess`],
//!   [`ExecMode::Simulated`]) and returns one uniform [`RunReport`]
//!   carrying occupancy, an `obs` metric snapshot, and optionally the
//!   full span trace;
//! * [`real_exec`] — the shared-memory engine: real threads and real
//!   task bodies (the paper's single-node runs, Figure 6);
//! * [`mp_exec`] — the multi-process-semantics engine: a thread pool per
//!   node plus a per-node communication thread, real channel-borne
//!   messages (stress-tests the distributed logic under true races);
//! * [`sim_exec`] — the virtual-time engine over [`desim`]/[`netsim`]: a
//!   whole cluster per run, one comm thread per node, optional real body
//!   execution, trace capture (Figures 7–10);
//! * [`profiling`] — Figure 10-style occupancy/Gantt analysis (a thin
//!   consumer of `obs::fig10`);
//! * [`scheduler`] — the pluggable scheduling surface: the [`Scheduler`]
//!   /[`TaskSelector`] traits every engine consults for task selection
//!   and placement, the [`SchedulerPolicy`] compatibility shim, and a
//!   portfolio of static list schedulers (HEFT, PEFT, DLS, lookahead)
//!   ranking over the statically unfolded DAG;
//! * [`dtd`] — the Dynamic Task Discovery insertion API (PaRSEC's second
//!   DSL) as an alternative front-end;
//! * [`halo`] — the paper's future-work feature: a generic
//!   communication-avoiding halo-exchange framework where the runtime
//!   generates and schedules the redundant tasks transparently.
//!
//! Configuration follows the workspace-wide builder convention (shared
//! with `ca_stencil::StencilConfig`): a constructor fixes the required
//! dimensions — [`RunConfig::shared_memory`], [`RunConfig::multi_process`],
//! [`RunConfig::simulated`] — and chainable `with_*` methods set
//! everything optional (`with_profile`, `with_scheduler`, `with_bodies`,
//! `with_trace`, `with_comm_engines`, `with_kind_names`).

#![deny(missing_docs)]

pub mod deque;
mod dispatch;
pub mod dtd;
pub mod exec;
pub mod halo;
#[cfg(all(test, loom))]
mod loom_model;
pub mod mp_exec;
pub mod pending;
pub mod profiling;
pub mod ready_queue;
pub mod real_exec;
pub mod scheduler;
pub mod sim_exec;
pub mod task;
pub mod unfold;

pub use deque::{Steal, StealDeque};
pub use dtd::{DtdBuilder, DtdRegions, DtdTaskId};
pub use exec::{
    run, ExecMode, Executor, ModeExt, MultiProcessExecutor, RunConfig, RunReport,
    SharedMemoryExecutor, SimulatedExecutor,
};
pub use halo::{build_halo_program, HaloSpec};
pub use pending::{Delivery, PendingTable, ReadyTask, ShardedPending};
pub use scheduler::{
    DlsScheduler, FifoSelector, HeftScheduler, LifoSelector, LookaheadScheduler, PeftScheduler,
    SchedContext, Scheduler, SchedulerHandle, SchedulerPolicy, SelectMode, StaticRanks,
    TaskSelector,
};
pub use sim_exec::{SimConfig, KIND_COMM};
pub use task::{
    ClassId, FlowData, OutputDep, Params, Program, ReadRegion, Rect, TaskClass, TaskGraph, TaskKey,
    WriteRegion,
};
pub use unfold::{assert_consistent, EdgeRef, StructuralFault, UnfoldedDag};
