//! Microbenchmarks of the computational kernels: the tiled Jacobi update,
//! ghost strip/corner copies, and the CSR SpMV — the building blocks whose
//! relative speed the paper's arguments rest on.

use ca_stencil::{Extents, Problem, Side, TileBuf, Weights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmv::{initial_vector, stencil_matrix};

fn bench_jacobi_tile(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_tile");
    for tile in [64usize, 128, 256, 512] {
        group.throughput(Throughput::Elements((tile * tile) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, &tile| {
            let mut buf = TileBuf::new(tile, 1);
            buf.fill_both(|r, c| (r * 31 + c) as f64 * 1e-3);
            let w = Weights::skewed();
            b.iter(|| buf.jacobi_step(&w, Extents::ZERO));
        });
    }
    group.finish();
}

fn bench_jacobi_extended_halo(c: &mut Criterion) {
    // the CA scheme's redundant-halo update at various depths
    let mut group = c.benchmark_group("jacobi_extended_halo");
    let tile = 256usize;
    for ext in [0usize, 4, 8, 14] {
        group.bench_with_input(BenchmarkId::from_parameter(ext), &ext, |b, &ext| {
            let mut buf = TileBuf::new(tile, ext + 1);
            buf.fill_both(|r, c| (r + c) as f64 * 1e-3);
            let w = Weights::laplace_jacobi();
            b.iter(|| buf.jacobi_step(&w, Extents::uniform(ext)));
        });
    }
    group.finish();
}

fn bench_strip_copies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghost_strips");
    let tile = 288usize;
    for depth in [1usize, 15] {
        group.throughput(Throughput::Bytes((depth * tile * 8) as u64));
        group.bench_with_input(
            BenchmarkId::new("extract+write", depth),
            &depth,
            |b, &depth| {
                let mut src = TileBuf::new(tile, depth);
                src.fill_both(|r, c| (r ^ c) as f64);
                let mut dst = TileBuf::new(tile, depth);
                dst.fill_both(|_, _| 0.0);
                b.iter(|| {
                    let s = src.extract_strip(Side::South, depth);
                    dst.write_strip(Side::North, depth, &s);
                });
            },
        );
    }
    group.finish();
}

fn bench_csr_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_spmv");
    for n in [128usize, 256] {
        let p = Problem::laplace(n);
        let (a, bvec) = stencil_matrix(&p);
        let x = initial_vector(&p);
        let mut y = vec![0.0; x.len()];
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| a.spmv_add(&x, &bvec, &mut y));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_jacobi_tile,
    bench_jacobi_extended_halo,
    bench_strip_copies,
    bench_csr_spmv
);
criterion_main!(benches);
