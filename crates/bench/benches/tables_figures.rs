//! Criterion wrappers around reduced-size versions of the paper's
//! experiments: `cargo bench` exercises every figure's code path quickly.
//! The full-scale regenerators are the `fig*`/`table1` binaries.

use bench::{exp_fig5, exp_fig6};
use ca_stencil::{build_base, build_ca, Problem, StencilConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machine::MachineProfile;
use netsim::ProcessGrid;
use runtime::{run, RunConfig};

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_netpipe_sweep", |b| b.iter(exp_fig5::run));
}

fn bench_fig6_model(c: &mut Criterion) {
    c.bench_function("fig6_model_sweep", |b| b.iter(exp_fig6::run_model));
}

fn small_cfg(ratio: f64, steps: usize) -> StencilConfig {
    StencilConfig::new(Problem::laplace(2880), 288, 10, ProcessGrid::new(2, 2))
        .with_steps(steps)
        .with_ratio(ratio)
        .with_profile(MachineProfile::nacl())
}

type Builder = fn(&StencilConfig, bool) -> ca_stencil::StencilBuild;

fn bench_versions(c: &mut Criterion, group_name: &str, ratio: f64) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    let versions: [(&str, Builder); 2] = [("base", build_base), ("ca", build_ca)];
    for (name, build) in versions {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            let cfg = small_cfg(ratio, 5);
            b.iter(|| {
                run(
                    &build(&cfg, false).program,
                    &RunConfig::simulated(MachineProfile::nacl(), 4),
                )
            });
        });
    }
    group.finish();
}

fn bench_fig7_like(c: &mut Criterion) {
    bench_versions(c, "fig7_small", 1.0);
}

fn bench_fig8_like(c: &mut Criterion) {
    bench_versions(c, "fig8_small_ratio0.2", 0.2);
}

criterion_group!(
    benches,
    bench_fig5,
    bench_fig6_model,
    bench_fig7_like,
    bench_fig8_like
);
criterion_main!(benches);
