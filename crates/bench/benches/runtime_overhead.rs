//! Runtime-substrate microbenchmarks: task throughput of the shared-memory
//! executor, activation-table delivery, and event rate of the simulated
//! executor — the per-task and per-message costs the cost model charges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use machine::MachineProfile;
use runtime::{run, DtdBuilder, RunConfig};

fn chain_program(len: usize) -> runtime::Program {
    let mut b = DtdBuilder::new();
    let mut prev = b.insert(0, 0.0, &[]);
    for _ in 1..len {
        prev = b.insert(0, 0.0, &[prev]);
    }
    b.build()
}

fn wide_program(width: usize) -> runtime::Program {
    let mut b = DtdBuilder::new();
    let root = b.insert(0, 0.0, &[]);
    for _ in 0..width {
        let _ = b.insert(0, 0.0, &[root]);
    }
    b.build()
}

fn bench_real_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_executor");
    for &tasks in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(
            BenchmarkId::new("wide/4threads", tasks),
            &tasks,
            |b, &tasks| {
                b.iter(|| {
                    let p = wide_program(tasks);
                    run(&p, &RunConfig::shared_memory(4))
                });
            },
        );
    }
    group.finish();
}

fn bench_sim_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_executor");
    for &tasks in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(BenchmarkId::new("chain", tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let p = chain_program(tasks);
                run(&p, &RunConfig::simulated(MachineProfile::nacl(), 1))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_real_executor, bench_sim_executor);
criterion_main!(benches);
