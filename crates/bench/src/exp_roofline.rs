//! The paper's Section VI-A analysis, reproduced as a table: arithmetic
//! intensity of the generalized 5-point update, the roofline windows the
//! paper derives from the achieved STREAM bandwidths ("we expect the
//! effective peak performance between 14.5 to 21.9 GFLOP/s and 63.8 to
//! 96.6 GFLOP/s"), and how the measured single-node plateaus (Figure 6)
//! sit inside them.

use machine::roofline::{stencil_intensity_range, stencil_window};
use machine::{MachineProfile, StencilCostModel};
use serde::Serialize;

/// One machine's roofline analysis row.
#[derive(Debug, Clone, Serialize)]
pub struct RooflineRow {
    /// System name.
    pub system: String,
    /// Achieved memory bandwidth, GB/s (STREAM COPY).
    pub mem_bw_gb: f64,
    /// Expected window low end, GFLOP/s (paper Section VI-A).
    pub window_low: f64,
    /// Expected window high end, GFLOP/s.
    pub window_high: f64,
    /// Single-node plateau from the calibrated kernel model, GFLOP/s.
    pub plateau: f64,
    /// Plateau as a fraction of the window's high end.
    pub efficiency: f64,
}

/// Run the analysis for both paper machines.
pub fn run() -> Vec<RooflineRow> {
    [
        (MachineProfile::nacl(), 20_000usize, 288usize),
        (MachineProfile::stampede2(), 27_000, 864),
    ]
    .into_iter()
    .map(|(p, n, tile)| {
        let w = stencil_window(&p);
        let plateau = StencilCostModel::for_profile(&p).node_gflops_single(n, tile);
        RooflineRow {
            system: p.name.clone(),
            mem_bw_gb: p.mem_bw_node / 1e9,
            window_low: w.low_gflops,
            window_high: w.high_gflops,
            plateau,
            efficiency: plateau / w.high_gflops,
        }
    })
    .collect()
}

/// Print the analysis.
pub fn print(rows: &[RooflineRow]) {
    let (lo, hi) = stencil_intensity_range();
    println!("ROOFLINE (paper Section VI-A)");
    println!(
        "stencil arithmetic intensity: {lo:.3}-{hi:.4} flop/byte (9 flops, 24-16 bytes per point)"
    );
    println!(
        "{:<12} {:>10} {:>22} {:>12} {:>12}",
        "system", "BW GB/s", "expected GFLOP/s", "plateau", "of roofline"
    );
    for r in rows {
        println!(
            "{:<12} {:>10.1} {:>10.1} - {:>8.1} {:>12.1} {:>11.0}%",
            r.system,
            r.mem_bw_gb,
            r.window_low,
            r.window_high,
            r.plateau,
            100.0 * r.efficiency
        );
    }
    println!("(the paper: \"the obtained result is acceptable ... but is still not");
    println!(" close to the peak memory bandwidth level\" — the unoptimized kernel)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateaus_sit_inside_the_windows() {
        for r in run() {
            assert!(
                r.plateau < r.window_high,
                "{}: plateau {} above roofline {}",
                r.system,
                r.plateau,
                r.window_high
            );
            assert!(
                r.efficiency > 0.3,
                "{}: implausibly low efficiency {}",
                r.system,
                r.efficiency
            );
        }
    }

    #[test]
    fn windows_match_paper_numbers() {
        let rows = run();
        assert!((rows[0].window_low - 14.5).abs() / 14.5 < 0.05);
        assert!((rows[0].window_high - 21.9).abs() / 21.9 < 0.05);
        assert!((rows[1].window_low - 63.8).abs() / 63.8 < 0.05);
        assert!((rows[1].window_high - 96.6).abs() / 96.6 < 0.05);
    }
}
