//! Static-analyzer columns printed alongside measured figures.
//!
//! Figures 8 and 9 report simulated GFLOP/s; next to each point the
//! harness prints what the [`analyze`] crate predicts *without running
//! anything*: the cross-node message count, the redundant flops the CA
//! scheme pays for its ghost recomputation, and the critical-path
//! makespan lower bound. The race pass is skipped at bench scale (it is
//! the analyzer's only super-linear pass); the integration suite covers
//! it at test scale.

use analyze::{analyze_dag, AnalyzeConfig};
use runtime::{Program, UnfoldedDag};
use serde::Serialize;

/// Statically predicted columns for one program.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StaticCols {
    /// Cross-node messages any run of the program must send.
    pub messages: u64,
    /// Redundant flops the task classes declare (CA halo recomputation).
    pub redundant_flops: u64,
    /// Longest cost-weighted dependence chain, seconds.
    pub critical_path: f64,
    /// `max(critical_path, busiest node work / lanes)` — no schedule on
    /// this machine shape finishes faster.
    pub makespan_bound: f64,
}

/// Analyze `program` with `lanes` worker lanes per node (match the
/// machine profile's compute threads) and extract the figure columns.
pub fn predict(program: &Program, lanes: u32) -> StaticCols {
    let cfg = AnalyzeConfig::new().with_lanes(lanes).without_races();
    predict_dag(&analyze::unfold(program, &cfg), lanes)
}

/// [`predict`] over an already-unfolded DAG, so harnesses that also feed
/// the DAG to [`insight::diagnose`] enumerate the graph once.
pub fn predict_dag(dag: &UnfoldedDag, lanes: u32) -> StaticCols {
    let a = analyze_dag(dag, &AnalyzeConfig::new().with_lanes(lanes).without_races());
    let (critical_path, makespan_bound) = a
        .path
        .as_ref()
        .map(|p| (p.critical_path, p.makespan_lower_bound))
        .unwrap_or((f64::NAN, f64::NAN));
    StaticCols {
        messages: a.comm.cross_messages,
        redundant_flops: a.flops.redundant,
        critical_path,
        makespan_bound,
    }
}
